"""Paper §4.4 — MRD's storage and computation overhead claims.

"The largest MRD_Table, measured in KBs contained less than 300
references.  In terms of computations, only a small sorting is
necessary among the few references."  We measure the peak MRD_Table
size for every SparkBench workload and the per-stage bookkeeping cost.
"""

from repro.core.policy import MrdScheme
from repro.experiments.harness import build_workload_dag, cache_mb_for, format_table
from repro.simulator.config import MAIN_CLUSTER
from repro.simulator.engine import simulate
from repro.workloads.registry import workload_names


def run():
    results = {}
    for name in workload_names("sparkbench"):
        dag = build_workload_dag(name, partitions=16)
        config = MAIN_CLUSTER.with_cache(cache_mb_for(dag, 0.5, MAIN_CLUSTER))
        scheme = MrdScheme()
        simulate(dag, config, scheme)
        results[name] = {
            "max_refs": scheme.manager.max_table_size,
            "tracked_rdds": len(scheme.manager.table.tracked_rdd_ids()),
        }
    return results


def render(results):
    rows = [
        (name, r["max_refs"], r["tracked_rdds"],
         # Each reference is (seq, job) ints plus dict overhead: ~100 B
         # in CPython, so express the table in KB like the paper does.
         round(r["max_refs"] * 100 / 1024, 1))
        for name, r in results.items()
    ]
    return format_table(
        ["Workload", "Max references", "Tracked RDDs", "~KB"],
        rows,
        title="MRD_Table overhead (paper: largest table < 300 references, KBs)",
    )


def test_mrd_table_overhead(run_experiment):
    results = run_experiment(run, render=render)
    largest = max(r["max_refs"] for r in results.values())
    # The same order of magnitude as the paper's measurement: a few
    # hundred references even for the most iterative workloads.
    assert largest < 1000
    assert all(r["max_refs"] > 0 for r in results.values())
