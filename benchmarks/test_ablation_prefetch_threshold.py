"""Ablation — prefetch memory threshold (paper future work: dynamic).

The paper fixes the threshold at 25 % of cache experimentally and lists
making it dynamic as future work; this bench sweeps it to show the
sensitivity the fixed choice hides.
"""

from repro.core.policy import MrdScheme
from repro.experiments.harness import build_workload_dag, cache_mb_for, format_table
from repro.simulator.config import MAIN_CLUSTER
from repro.simulator.engine import simulate

THRESHOLDS = (0.0, 0.1, 0.25, 0.5, 1.0)
WORKLOADS = ("CC", "PO", "SVD++")
CACHE_FRACTION = 0.5


def run():
    results = {}
    for name in WORKLOADS:
        dag = build_workload_dag(name)
        config = MAIN_CLUSTER.with_cache(cache_mb_for(dag, CACHE_FRACTION, MAIN_CLUSTER))
        results[name] = {
            thr: simulate(dag, config, MrdScheme(prefetch_threshold=thr))
            for thr in THRESHOLDS
        }
    return results


def render(results):
    rows = []
    for name, by_thr in results.items():
        base = by_thr[0.25]
        rows.append(
            [name] + [round(by_thr[t].jct / base.jct, 3) for t in THRESHOLDS]
        )
    return format_table(
        ["Workload"] + [f"thr={t}" for t in THRESHOLDS],
        rows,
        title="Ablation: prefetch threshold (JCT relative to the paper's 0.25)",
    )


def test_ablation_prefetch_threshold(run_experiment):
    results = run_experiment(run, render=render)
    for name, by_thr in results.items():
        jcts = [by_thr[t].jct for t in THRESHOLDS]
        # The knob matters but no setting catastrophically regresses.
        assert max(jcts) / min(jcts) < 2.0
        # All settings still beat or match disabling prefetch entirely
        # would be a separate variant; here we just require validity.
        assert all(m.hit_ratio <= 1.0 for m in by_thr.values())
