"""Extension bench — policy robustness across random DAG families.

The paper evaluates fourteen hand-picked workloads; this bench checks
that the headline ordering (MRD ≤ LRU, MRD-evict ≡ stage-MIN, DAG-aware
beats oblivious on average) is not an artifact of those shapes by
sampling applications from the synthetic envelope.
"""

from repro.core.policy import MrdScheme
from repro.dag.analysis import peak_live_cached_mb
from repro.dag.dag_builder import build_dag
from repro.experiments.harness import format_table
from repro.policies.scheme import BeladyScheme, LrcScheme, LruScheme
from repro.simulator.config import TEST_CLUSTER
from repro.simulator.engine import simulate
from repro.workloads.synthetic import SyntheticConfig, generate_application

SEEDS = range(12)
CONFIG = SyntheticConfig(num_jobs=10, stages_per_job=(1, 4), partitions=16)
CACHE_FRACTION = 0.4


def run():
    results = []
    for seed in SEEDS:
        dag = build_dag(generate_application(seed, CONFIG))
        peak = peak_live_cached_mb(dag)
        if peak <= 0:  # a draw with no caching: nothing to compare
            continue
        cache = max(peak * CACHE_FRACTION / TEST_CLUSTER.num_nodes, 8.0)
        cluster = TEST_CLUSTER.with_cache(cache)
        runs = {
            "LRU": simulate(dag, cluster, LruScheme()),
            "LRC": simulate(dag, cluster, LrcScheme()),
            "Belady": simulate(dag, cluster, BeladyScheme()),
            "MRD-evict": simulate(dag, cluster, MrdScheme(prefetch=False)),
            "MRD": simulate(dag, cluster, MrdScheme()),
        }
        results.append((seed, runs))
    return results


def render(results):
    rows = []
    for seed, runs in results:
        lru = runs["LRU"].jct
        rows.append(
            (seed,
             round(runs["LRC"].jct / lru, 3),
             round(runs["MRD-evict"].jct / lru, 3),
             round(runs["MRD"].jct / lru, 3),
             f"{runs['LRU'].hit_ratio * 100:.0f}%",
             f"{runs['MRD'].hit_ratio * 100:.0f}%")
        )
    avg = sum(r[3] for r in rows) / len(rows)
    rows.append(("avg", "", "", round(avg, 3), "", ""))
    return format_table(
        ["Seed", "LRC/LRU", "MRD-evict/LRU", "MRD/LRU", "LRU hit", "MRD hit"],
        rows,
        title="Robustness: normalized JCT across random DAGs (lower is better)",
    )


def test_robustness_across_random_dags(run_experiment):
    results = run_experiment(run, render=render)
    assert len(results) >= 8  # most seeds produce cached workloads
    worst = 0.0
    total = 0.0
    for seed, runs in results:
        lru = runs["LRU"].jct
        ratio = runs["MRD"].jct / lru
        worst = max(worst, ratio)
        total += ratio
        # MRD's eviction matches the stage-granular oracle on every draw.
        assert runs["MRD-evict"].stats.hits == runs["Belady"].stats.hits, seed
    # MRD never catastrophically loses and wins on average.
    assert worst <= 1.15
    assert total / len(results) < 1.0
