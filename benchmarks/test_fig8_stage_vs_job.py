"""Figure 8 — stage-distance vs job-distance metric (LP vs KM)."""

from repro.experiments import fig8


def test_fig8_stage_vs_job_distance(run_experiment):
    rows = run_experiment(fig8.run, render=fig8.render)
    by_name = {r.workload: r for r in rows}
    lp, km = by_name["LP"], by_name["KM"]
    # LP has many active stages per job → the job metric degrades it;
    # KM has ≈1 stage per job → nearly no difference (paper §5.7).
    assert lp.active_stages_per_job > km.active_stages_per_job
    lp_loss = lp.job_metric_jct / lp.stage_metric_jct
    km_loss = km.job_metric_jct / km.stage_metric_jct
    assert lp_loss > 1.03, "job metric should visibly degrade LP"
    assert km_loss <= 1.02, "job metric should not affect KM (~1 stage/job)"
    assert lp_loss > km_loss
