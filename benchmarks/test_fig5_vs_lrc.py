"""Figure 5 — MRD vs LRC on the emulated 20-node EC2 cluster."""

from repro.experiments import fig5


def test_fig5_comparison_to_lrc(run_experiment):
    rows = run_experiment(fig5.run, render=fig5.render)
    # MRD at least matches LRC everywhere and wins on average
    # (paper: up to 45 %, average 30 %).
    assert all(r.mrd_vs_lrc <= 1.05 for r in rows)
    avg_gain = sum(r.improvement_pct for r in rows) / len(rows)
    assert avg_gain > 5.0
    best = max(rows, key=lambda r: r.improvement_pct)
    assert best.improvement_pct > 15.0
