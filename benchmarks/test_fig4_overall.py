"""Figure 4 — overall MRD performance vs LRU on the main cluster.

The headline experiment: all fourteen SparkBench workloads, cache-size
sweep, three MRD variants.  Shape targets from the paper: full MRD
average ≈ 0.53 of LRU (we accept ≤ 0.75), I/O-intensive workloads gain
the most, DT/CPU-bound workloads the least, and eviction provides the
bulk of the improvement.
"""

from repro.experiments import fig4


def test_fig4_overall_performance(run_experiment):
    rows = run_experiment(fig4.run, render=fig4.render)
    by_name = {r.workload: r for r in rows}
    avg = fig4.averages(rows)

    # Average improvement in the paper's direction and magnitude band.
    assert avg["full"] < 0.75, "full MRD should average well below LRU"
    assert avg["full"] <= avg["evict_only"] + 0.02
    # Hit ratio rises across the board (paper: all workloads increase).
    assert avg["mrd_hit"] > avg["lru_hit"]
    # I/O-intensive beat CPU-intensive (paper §5.10).
    io_avg = sum(by_name[w].full for w in ("PR", "LP", "SVD++", "CC", "PO")) / 5
    cpu_avg = sum(by_name[w].full for w in ("LinR", "LogR", "DT")) / 3
    assert io_avg < cpu_avg
    # Every workload individually improves or stays flat.
    assert all(r.full <= 1.02 for r in rows)
