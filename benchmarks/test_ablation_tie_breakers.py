"""Extension bench — tie prioritization among equal-distance blocks.

Paper §3.3: "data blocks with the same reference distance might not all
fit the cache, a methodology to prioritize which data block is cached
in case of such ties are left for future work."  This bench compares
three stable tie-breaking rules (fixed partition subset, largest-block-
first, youngest-RDD-first) on the workloads where ties are most common.
"""

from repro.core.policy import MrdScheme
from repro.experiments.harness import build_workload_dag, cache_mb_for, format_table
from repro.simulator.config import MAIN_CLUSTER
from repro.simulator.engine import simulate

WORKLOADS = ("PR", "CC", "LP", "KM")
RULES = ("partition", "size", "creation")
CACHE_FRACTION = 0.4


def run():
    results = {}
    for name in WORKLOADS:
        dag = build_workload_dag(name)
        config = MAIN_CLUSTER.with_cache(cache_mb_for(dag, CACHE_FRACTION, MAIN_CLUSTER))
        results[name] = {
            rule: simulate(dag, config, MrdScheme(tie_breaker=rule))
            for rule in RULES
        }
    return results


def render(results):
    rows = []
    for name, by_rule in results.items():
        base = by_rule["partition"].jct
        rows.append(
            [name]
            + [round(by_rule[r].jct / base, 3) for r in RULES]
            + [f"{by_rule[r].hit_ratio * 100:.0f}%" for r in RULES]
        )
    return format_table(
        ["Workload"] + [f"JCT {r}" for r in RULES] + [f"hit {r}" for r in RULES],
        rows,
        title="Ablation: tie-breaking rule (JCT relative to 'partition')",
    )


def test_ablation_tie_breakers(run_experiment):
    results = run_experiment(run, render=render)
    for name, by_rule in results.items():
        # "partition" and "creation" are near-equivalent subset rules.
        ratio = by_rule["creation"].jct / by_rule["partition"].jct
        assert 0.85 < ratio < 1.15, name
        # "largest-first" can backfire badly (it preferentially evicts
        # the big, hot training/edge blocks) — the finding this ablation
        # documents — but it must stay a bounded regression, not thrash.
        assert by_rule["size"].jct / by_rule["partition"].jct < 2.2, name
        for rule in RULES:
            assert 0.0 <= by_rule[rule].hit_ratio <= 1.0
