"""Extension bench — dynamic prefetch threshold (paper §6 future work).

The paper's conclusion lists "modifying the prefetching memory
threshold to be dynamic and automated" as future work.  This bench runs
the AIMD-style controller against the fixed 25 % setting.
"""

from repro.core.policy import MrdScheme
from repro.experiments.harness import build_workload_dag, cache_mb_for, format_table
from repro.simulator.config import MAIN_CLUSTER
from repro.simulator.engine import simulate

WORKLOADS = ("PR", "CC", "LP", "SVD++", "KM")
CACHE_FRACTION = 0.4


def run():
    results = {}
    for name in WORKLOADS:
        dag = build_workload_dag(name)
        config = MAIN_CLUSTER.with_cache(cache_mb_for(dag, CACHE_FRACTION, MAIN_CLUSTER))
        fixed = MrdScheme()
        adaptive = MrdScheme(adaptive_threshold=True)
        results[name] = {
            "fixed": simulate(dag, config, fixed),
            "adaptive": simulate(dag, config, adaptive),
            "final_threshold": adaptive.manager.threshold_controller.value,
        }
    return results


def render(results):
    rows = []
    for name, r in results.items():
        f, a = r["fixed"], r["adaptive"]
        rows.append(
            (
                name, round(f.jct, 2), round(a.jct, 2),
                round(a.jct / f.jct, 3),
                f"{f.stats.prefetches_used}/{f.stats.prefetches_issued}",
                f"{a.stats.prefetches_used}/{a.stats.prefetches_issued}",
                round(r["final_threshold"], 3),
            )
        )
    return format_table(
        ["Workload", "fixed JCT", "adaptive JCT", "ratio",
         "used/issued (fixed)", "used/issued (adaptive)", "final thr"],
        rows,
        title="Ablation: fixed 25% vs adaptive prefetch threshold",
    )


def test_ablation_adaptive_threshold(run_experiment):
    results = run_experiment(run, render=render)
    for name, r in results.items():
        f, a = r["fixed"], r["adaptive"]
        # The controller stays within its bounds and never blows up a run.
        assert 0.02 <= r["final_threshold"] <= 0.9
        assert a.jct <= f.jct * 1.2
