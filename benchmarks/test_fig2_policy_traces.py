"""Figure 2 — per-stage policy metrics for ConnectedComponents."""

import math

from repro.experiments import fig2


def test_fig2_policy_traces(run_experiment):
    def render_all(trace):
        return "\n\n".join(fig2.render(trace, p) for p in ("lru", "lrc", "mrd"))

    trace = run_experiment(lambda: fig2.run("CC"), render=render_all)
    assert trace.rdd_ids
    # The paper's qualitative claims: at a reference point MRD gives the
    # block top priority (distance 0) while a single-reference RDD that
    # is done gets infinite distance (first to evict).
    for rid in trace.rdd_ids:
        prof = trace.dag.profiles[rid]
        if prof.read_seqs:
            seq = prof.read_seqs[0]
            assert trace.mrd[rid][seq] == 0.0
        assert math.isinf(trace.mrd[rid][-1]) or trace.dag.profiles[rid].read_seqs
