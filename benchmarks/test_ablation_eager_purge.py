"""Ablation — eager all-out purge of dead RDDs (Algorithm 1, lines 13-17).

The paper purges infinite-distance RDDs cluster-wide "instead of
waiting for memory pressure"; this bench measures what that eagerness
buys over pressure-driven eviction alone.
"""

from repro.core.policy import MrdScheme
from repro.experiments.harness import build_workload_dag, cache_mb_for, format_table
from repro.simulator.config import MAIN_CLUSTER
from repro.simulator.engine import simulate

WORKLOADS = ("PR", "CC", "LP", "KM")
CACHE_FRACTION = 0.4


def run():
    results = {}
    for name in WORKLOADS:
        dag = build_workload_dag(name)
        config = MAIN_CLUSTER.with_cache(cache_mb_for(dag, CACHE_FRACTION, MAIN_CLUSTER))
        results[name] = {
            "eager": simulate(dag, config, MrdScheme(eager_purge=True)),
            "lazy": simulate(dag, config, MrdScheme(eager_purge=False)),
        }
    return results


def render(results):
    rows = []
    for name, r in results.items():
        rows.append(
            (
                name,
                round(r["eager"].jct, 2), round(r["lazy"].jct, 2),
                round(r["eager"].jct / r["lazy"].jct, 3),
                r["eager"].stats.purged, r["lazy"].stats.purged,
            )
        )
    return format_table(
        ["Workload", "eager JCT", "lazy JCT", "ratio", "purges(eager)", "purges(lazy)"],
        rows,
        title="Ablation: eager dead-RDD purge vs pressure-driven eviction only",
    )


def test_ablation_eager_purge(run_experiment):
    results = run_experiment(run, render=render)
    for name, r in results.items():
        # Eager purging issues purge orders and never hurts materially.
        assert r["eager"].stats.purged >= r["lazy"].stats.purged
        assert r["eager"].jct <= r["lazy"].jct * 1.1
