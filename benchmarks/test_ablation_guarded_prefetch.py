"""Ablation — guarded prefetching (the paper's declared future work).

§4.4: "Improvements where the soon to be pre-fetched data block
reference distance is checked against the currently cached blocks are
left for future work."  This bench implements and measures that check
for the above-threshold (unguarded in the paper) prefetch path.
"""

from repro.core.policy import MrdScheme
from repro.experiments.harness import build_workload_dag, cache_mb_for, format_table
from repro.simulator.config import MAIN_CLUSTER
from repro.simulator.engine import simulate

WORKLOADS = ("PR", "CC", "SVD++", "LP")
CACHE_FRACTION = 0.4


def run():
    results = {}
    for name in WORKLOADS:
        dag = build_workload_dag(name)
        config = MAIN_CLUSTER.with_cache(cache_mb_for(dag, CACHE_FRACTION, MAIN_CLUSTER))
        results[name] = {
            "paper": simulate(dag, config, MrdScheme(guarded_prefetch=False)),
            "guarded": simulate(dag, config, MrdScheme(guarded_prefetch=True)),
        }
    return results


def render(results):
    rows = []
    for name, r in results.items():
        p, g = r["paper"], r["guarded"]
        rows.append(
            (
                name,
                round(p.jct, 2), round(g.jct, 2), round(g.jct / p.jct, 3),
                f"{p.stats.prefetches_used}/{p.stats.prefetches_issued}",
                f"{g.stats.prefetches_used}/{g.stats.prefetches_issued}",
            )
        )
    return format_table(
        ["Workload", "paper JCT", "guarded JCT", "ratio",
         "used/issued (paper)", "used/issued (guarded)"],
        rows,
        title="Ablation: guarded prefetch (distance check before forced eviction)",
    )


def test_ablation_guarded_prefetch(run_experiment):
    results = run_experiment(run, render=render)
    for name, r in results.items():
        p, g = r["paper"], r["guarded"]
        # Guarding can only reduce prefetch volume, never break runs.
        assert g.stats.prefetches_issued <= p.stats.prefetches_issued
        assert g.jct <= p.jct * 1.15
