"""Figure 10 — effect of tripling workload iterations."""

from repro.experiments import fig10


def test_fig10_iteration_scaling(run_experiment):
    rows = run_experiment(fig10.run, render=fig10.render)
    by_name = {r.workload: r for r in rows}
    # Jobs and stages grow for every iterable workload; DT is unchanged.
    for r in rows:
        if r.workload == "DT":
            assert r.jobs_3x == r.jobs_1x and r.stages_3x == r.stages_1x
        else:
            assert r.jobs_3x > r.jobs_1x
            assert r.stages_3x > r.stages_1x
    # On average the normalized JCT improves (paper: 62 % → 54 %).
    iterable = [r for r in rows if r.workload != "DT"]
    avg_1x = sum(r.mrd_jct_1x for r in iterable) / len(iterable)
    avg_3x = sum(r.mrd_jct_3x for r in iterable) / len(iterable)
    assert avg_3x <= avg_1x + 0.03
