"""Extension bench — MRD against the offline optimum.

Not a paper figure, but it substantiates the paper's §3.1 claim that
DAG-aware policies "approximate Belady's MIN": we measure how close
MRD-eviction gets to the stage-granular MIN it is designed around and
to the true block-level MIN recovered from the recorded access trace,
and how full MRD (with prefetching) compares against both pure-eviction
oracles.
"""

from repro.core.policy import MrdScheme
from repro.experiments.harness import build_workload_dag, cache_mb_for, format_table
from repro.policies.scheme import BeladyScheme, LruScheme
from repro.policies.trace_min import true_min_metrics
from repro.simulator.config import MAIN_CLUSTER
from repro.simulator.engine import simulate

WORKLOADS = ("PR", "CC", "SVD++", "KM")
CACHE_FRACTION = 0.5


def run():
    results = {}
    for name in WORKLOADS:
        dag = build_workload_dag(name)
        config = MAIN_CLUSTER.with_cache(cache_mb_for(dag, CACHE_FRACTION, MAIN_CLUSTER))
        results[name] = {
            "LRU": simulate(dag, config, LruScheme()),
            "MRD-evict": simulate(dag, config, MrdScheme(prefetch=False)),
            "Belady-MIN": simulate(dag, config, BeladyScheme()),
            "True-MIN": true_min_metrics(dag, config),
            "MRD": simulate(dag, config, MrdScheme()),
        }
    return results


def render(results):
    rows = []
    for name, runs in results.items():
        lru = runs["LRU"].jct
        rows.append(
            [name]
            + [round(runs[s].jct / lru, 3) for s in
               ("MRD-evict", "Belady-MIN", "True-MIN", "MRD")]
            + [f"{runs['MRD-evict'].hit_ratio * 100:.0f}%",
               f"{runs['True-MIN'].hit_ratio * 100:.0f}%"]
        )
    return format_table(
        ["Workload", "MRD-evict", "Belady-MIN", "True-MIN", "Full-MRD",
         "MRD-evict hit", "True-MIN hit"],
        rows,
        title="Oracle comparison: JCT normalized to LRU (lower is better)",
    )


def test_oracle_comparison(run_experiment):
    results = run_experiment(run, render=render)
    for name, runs in results.items():
        # MRD's eviction ranking matches the stage-granular oracle.
        assert runs["MRD-evict"].stats.hits == runs["Belady-MIN"].stats.hits
        # The block-level oracle can only match or beat it on hits
        # (small slack for remote-access trace staleness).
        assert runs["True-MIN"].stats.hits >= runs["Belady-MIN"].stats.hits - 5
        # Prefetching pushes full MRD past every pure-eviction policy.
        assert runs["MRD"].jct <= runs["True-MIN"].jct * 1.05
