"""Figures 11-12 — JCT reduction vs stage distance / refs per stage."""

from repro.experiments import fig4, fig11_12


def test_fig11_12_correlations(run_experiment):
    def run():
        rows = fig4.run()
        return fig11_12.run(rows)

    result = run_experiment(run, render=fig11_12.render)
    # Positive trend: more stage distance / more refs per stage → more
    # JCT reduction (paper's Figs. 11-12 trendlines slope upward).
    assert result.slope_stage_distance > 0
    assert result.slope_refs_per_stage > 0
    # Explanatory power in the paper's direction (paper: R²=0.46 and
    # 0.71), and the paper's headline ordering: references per stage is
    # the stronger predictor of MRD's benefit than stage distance.
    assert result.r2_stage_distance > 0.03
    assert result.r2_refs_per_stage > 0.4
    assert result.r2_refs_per_stage > result.r2_stage_distance
