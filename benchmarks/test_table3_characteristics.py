"""Table 3 — SparkBench workload characteristics."""

from repro.experiments import table3


def test_table3_characteristics(run_experiment):
    rows = run_experiment(table3.run, render=table3.render)
    assert len(rows) == 14
    measured = {r.measured.workload: r.measured for r in rows}
    # Exact job counts match the paper for most workloads.
    for name, jobs in [("KM", 17), ("SVM", 10), ("MF", 8), ("PR", 7),
                       ("TC", 2), ("SP", 3), ("LP", 23), ("SVD++", 14),
                       ("CC", 6), ("SCC", 26), ("PO", 17), ("DT", 10)]:
        assert measured[name].num_jobs == jobs, name
