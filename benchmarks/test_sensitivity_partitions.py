"""Extension bench — sensitivity to partition count (block granularity).

The paper uses HDFS's 128 MB blocks; our workloads default to 64
partitions.  Partition count sets the cache's decision granularity:
fewer, larger blocks make admission all-or-nothing while many small
blocks let the stable-subset behaviour shine.  This bench verifies the
MRD-vs-LRU ordering holds across granularities.
"""

from repro.core.policy import MrdScheme
from repro.experiments.harness import build_workload_dag, cache_mb_for, format_table
from repro.policies.scheme import LruScheme
from repro.simulator.config import MAIN_CLUSTER
from repro.simulator.engine import simulate

PARTITION_COUNTS = (25, 50, 100, 200)
WORKLOAD = "PR"
CACHE_FRACTION = 0.5


def run():
    results = {}
    for parts in PARTITION_COUNTS:
        dag = build_workload_dag(WORKLOAD, partitions=parts)
        cluster = MAIN_CLUSTER.with_cache(
            cache_mb_for(dag, CACHE_FRACTION, MAIN_CLUSTER)
        )
        results[parts] = {
            "LRU": simulate(dag, cluster, LruScheme()),
            "MRD": simulate(dag, cluster, MrdScheme()),
        }
    return results


def render(results):
    rows = []
    for parts, runs in results.items():
        lru, mrd = runs["LRU"], runs["MRD"]
        rows.append(
            (parts, round(lru.jct, 2), round(mrd.jct, 2),
             round(mrd.jct / lru.jct, 3),
             f"{lru.hit_ratio * 100:.0f}%", f"{mrd.hit_ratio * 100:.0f}%")
        )
    return format_table(
        ["Partitions", "LRU JCT", "MRD JCT", "ratio", "LRU hit", "MRD hit"],
        rows,
        title=f"Sensitivity: partition count ({WORKLOAD}, cache fraction {CACHE_FRACTION})",
    )


def test_sensitivity_partitions(run_experiment):
    results = run_experiment(run, render=render)
    for parts, runs in results.items():
        assert runs["MRD"].jct <= runs["LRU"].jct * 1.05, parts
        assert runs["MRD"].hit_ratio >= runs["LRU"].hit_ratio - 0.02, parts
