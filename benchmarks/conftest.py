"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the rendered result (so ``pytest benchmarks/ --benchmark-only -s``
reproduces the evaluation section on stdout).  Experiment drivers are
deterministic whole-simulation runs, so each is measured with a single
round — the interesting output is the table, not the nanoseconds.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment driver once under pytest-benchmark and print it."""

    def _run(fn, render=None):
        result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
        if render is not None:
            with capsys.disabled():
                print()
                print(render(result))
        return result

    return _run
