"""Figure 9 — ad-hoc vs recurring DAG availability (KM vs TC)."""

from repro.experiments import fig9


def test_fig9_adhoc_vs_recurring(run_experiment):
    rows = run_experiment(fig9.run, render=fig9.render)
    by_name = {r.workload: r for r in rows}
    km, tc = by_name["KM"], by_name["TC"]
    # KM (17 jobs, heavy cross-job reuse) suffers without the full DAG;
    # TC (2 jobs, 0.5 refs/RDD) is indifferent (paper §5.8).
    km_penalty = km.adhoc_jct / km.recurring_jct
    tc_penalty = tc.adhoc_jct / tc.recurring_jct
    assert km_penalty > 1.05
    assert tc_penalty <= km_penalty
    assert km.adhoc_hit <= km.recurring_hit
