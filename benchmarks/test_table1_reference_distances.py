"""Table 1 — reference-distance characteristics of all 20 workloads."""

from repro.experiments import table1


def test_table1_reference_distances(run_experiment):
    rows = run_experiment(table1.run, render=table1.render)
    assert len(rows) == 20
    measured = {r.measured.workload: r.measured for r in rows}
    # Headline shape: LP and SCC dominate stage distances; HiBench ~0.
    assert measured["LP"].avg_stage_distance > 10
    assert measured["SCC"].avg_stage_distance > 10
    assert measured["Sort"].avg_stage_distance == 0.0
