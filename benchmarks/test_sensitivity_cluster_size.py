"""Extension bench — sensitivity to cluster size.

The paper evaluates three fixed clusters (Table 4).  This bench sweeps
node counts with total cache held constant, checking that MRD's
advantage is not an artifact of the 25-node main-cluster shape and
measuring how the serialized per-node disk channel scales.
"""

from dataclasses import replace

from repro.core.policy import MrdScheme
from repro.dag.analysis import peak_live_cached_mb
from repro.experiments.harness import build_workload_dag, format_table
from repro.policies.scheme import LruScheme
from repro.simulator.config import MAIN_CLUSTER
from repro.simulator.engine import simulate

NODE_COUNTS = (5, 10, 25, 50)
WORKLOAD = "CC"
CACHE_FRACTION = 0.4


def run():
    dag = build_workload_dag(WORKLOAD)
    total_cache = peak_live_cached_mb(dag) * CACHE_FRACTION
    results = {}
    for nodes in NODE_COUNTS:
        cluster = replace(
            MAIN_CLUSTER, num_nodes=nodes,
            cache_mb_per_node=max(total_cache / nodes, 8.0),
        )
        results[nodes] = {
            "LRU": simulate(dag, cluster, LruScheme()),
            "MRD": simulate(dag, cluster, MrdScheme()),
        }
    return results


def render(results):
    rows = []
    for nodes, runs in results.items():
        lru, mrd = runs["LRU"], runs["MRD"]
        rows.append(
            (nodes, round(lru.jct, 2), round(mrd.jct, 2),
             round(mrd.jct / lru.jct, 3),
             f"{lru.hit_ratio * 100:.0f}%", f"{mrd.hit_ratio * 100:.0f}%")
        )
    return format_table(
        ["Nodes", "LRU JCT", "MRD JCT", "ratio", "LRU hit", "MRD hit"],
        rows,
        title=f"Sensitivity: cluster size ({WORKLOAD}, total cache held constant)",
    )


def test_sensitivity_cluster_size(run_experiment):
    results = run_experiment(run, render=render)
    for nodes, runs in results.items():
        ratio = runs["MRD"].jct / runs["LRU"].jct
        assert ratio <= 1.05, f"MRD loses at {nodes} nodes"
    # More nodes → more parallel slots and disk channels → faster runs.
    lru_jcts = [results[n]["LRU"].jct for n in NODE_COUNTS]
    assert lru_jcts[0] > lru_jcts[-1]
