"""Figure 6 — MRD vs MemTune on the emulated 6-node System G cluster."""

from repro.experiments import fig6


def test_fig6_comparison_to_memtune(run_experiment):
    rows = run_experiment(fig6.run, render=fig6.render)
    by_name = {r.workload: r for r in rows}
    # MRD wins on average (paper: up to 68 %, average 33 %); the paper's
    # one regression (LogR, low reference distances) stays small.
    avg_gain = sum(r.improvement_pct for r in rows) / len(rows)
    assert avg_gain > 5.0
    assert by_name["PR"].improvement_pct > 10.0
    assert by_name["LogR"].mrd_vs_memtune <= 1.15
