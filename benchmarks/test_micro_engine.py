"""Microbenchmarks — simulator throughput and policy-decision costs.

Not a paper figure: guards against performance regressions in the
engine (tasks simulated per second) and in victim selection, which is
the hot path of every policy (the paper's §4.4 claims MRD's overhead is
"a small sorting ... undetectable differences" — this keeps us honest
about our own overhead).
"""

from repro.cluster.block import Block, BlockId
from repro.cluster.memory_store import MemoryStore
from repro.core.app_profiler import AppProfiler
from repro.core.cache_monitor import CacheMonitor
from repro.core.manager import MrdManager
from repro.core.policy import MrdScheme
from repro.experiments.harness import build_workload_dag, cache_mb_for
from repro.policies.lru import LruPolicy
from repro.policies.scheme import LruScheme
from repro.simulator.config import MAIN_CLUSTER
from repro.simulator.engine import simulate


def test_engine_throughput_lru(benchmark):
    dag = build_workload_dag("PO", partitions=32)
    config = MAIN_CLUSTER.with_cache(cache_mb_for(dag, 0.4, MAIN_CLUSTER))
    metrics = benchmark.pedantic(
        lambda: simulate(dag, config, LruScheme()), rounds=3, iterations=1
    )
    total_tasks = sum(r.num_tasks for r in metrics.stage_records)
    assert total_tasks > 1000  # meaningful workload size


def test_engine_throughput_mrd(benchmark):
    dag = build_workload_dag("PO", partitions=32)
    config = MAIN_CLUSTER.with_cache(cache_mb_for(dag, 0.4, MAIN_CLUSTER))
    benchmark.pedantic(
        lambda: simulate(dag, config, MrdScheme()), rounds=3, iterations=1
    )


def test_engine_throughput_mrd_recorded(benchmark):
    """Same MRD run with trace recording on — compare against the
    benchmark above to see the recording overhead (the recorder's
    design target is <5%; disabled recording costs only a branch)."""
    from repro.trace.recorder import TraceRecorder

    dag = build_workload_dag("PO", partitions=32)
    config = MAIN_CLUSTER.with_cache(cache_mb_for(dag, 0.4, MAIN_CLUSTER))
    recorders = []

    def run_recorded():
        recorder = TraceRecorder()
        recorders.append(recorder)
        return simulate(dag, config, MrdScheme(), recorder=recorder)

    benchmark.pedantic(run_recorded, rounds=3, iterations=1)
    assert len(recorders[-1]) > 1000  # the trace actually captured the run


def _filled_store(policy, blocks=256):
    store = MemoryStore(float(blocks), policy)
    for i in range(blocks):
        store.put(Block(id=BlockId(i % 8, i), size_mb=1.0))
    return store


def test_lru_victim_selection(benchmark):
    store = _filled_store(LruPolicy())
    result = benchmark(lambda: store.policy.select_victims(store, 8.0))
    assert result is not None and len(result) == 8


def test_mrd_victim_selection(benchmark):
    dag = build_workload_dag("CC", partitions=16)
    manager = MrdManager(dag, AppProfiler(dag, mode="recurring"))
    store = _filled_store(CacheMonitor(0, manager))
    result = benchmark(lambda: store.policy.select_victims(store, 8.0))
    assert result is not None and len(result) == 8


def test_mrd_table_advance(benchmark):
    """The per-stage bookkeeping the paper calls 'a small sorting'."""
    dag = build_workload_dag("SCC", partitions=16)
    tables = []

    def fresh_table():
        scheme = MrdScheme()
        scheme.prepare(dag)
        tables.append(scheme.manager.table)
        return (), {}

    def advance_all():
        table = tables[-1]
        for seq in range(dag.num_active_stages):
            table.advance(seq, dag.job_of_seq(seq))

    benchmark.pedantic(advance_all, setup=fresh_table, rounds=5)
    assert tables[-1].size() == 0  # everything consumed by the end
