"""Figure 7 — cache-size sweep (hit ratio + runtime) for SVD++."""

from repro.experiments import fig7


def test_fig7_cache_size_effects(run_experiment):
    result = run_experiment(fig7.run, render=fig7.render)
    # Smaller cache → lower hit ratio, longer runtime (paper's headline).
    mrd_hits = result.hit["MRD"]
    assert mrd_hits[0] <= mrd_hits[-1]
    assert result.jct["MRD"][0] >= result.jct["MRD"][-1] * 0.95
    # MRD dominates LRU at every cache size.
    for lru_jct, mrd_jct in zip(result.jct["LRU"], result.jct["MRD"]):
        assert mrd_jct <= lru_jct * 1.02
    # Cache-space savings at the target hit ratio (paper: 63 %).
    savings = fig7.cache_savings_pct(result)
    assert savings is not None and savings > 0
