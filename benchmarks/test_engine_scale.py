"""Scale benchmark — the event-queue scheduler at 5000+ tasks, 16 nodes.

Wraps :mod:`repro.bench.engine_bench` (the harness behind ``repro
bench`` and ``BENCH_engine.json``) so the scheduler-core comparison
runs under pytest-benchmark alongside the other microbenchmarks:

    pytest benchmarks/test_engine_scale.py --benchmark-only -s

Also asserts the harness's core invariant — both scheduling cores
produce identical RunMetrics — at full benchmark scale.
"""

import pytest

from repro.bench.engine_bench import (
    BENCH_SCHEMES,
    BenchConfig,
    _metrics_fingerprint,
    build_bench_dag,
    total_tasks,
)
from repro.simulator.engine import SparkSimulator

CONFIG = BenchConfig(repeats=1)


def _run(dag, scheme_name, scheduler):
    sim = SparkSimulator(
        dag, CONFIG.cluster(), BENCH_SCHEMES[scheme_name](), scheduler=scheduler
    )
    return sim.run()


@pytest.mark.parametrize("scheme_name", sorted(BENCH_SCHEMES))
@pytest.mark.parametrize("scheduler", ["event", "reference"])
def test_engine_scale_sched_profile(benchmark, scheme_name, scheduler):
    """Scheduling-bound profile: isolates the scheduler cores."""
    dag = build_bench_dag(CONFIG, "sched")
    assert total_tasks(dag) >= CONFIG.min_tasks
    benchmark.pedantic(
        lambda: _run(dag, scheme_name, scheduler), rounds=3, iterations=1
    )


@pytest.mark.parametrize("scheme_name", sorted(BENCH_SCHEMES))
def test_engine_scale_metrics_identical(scheme_name):
    """Both cores simulate the same execution at benchmark scale."""
    for profile in ("sched", "cache"):
        dag = build_bench_dag(CONFIG, profile)
        event = _metrics_fingerprint(_run(dag, scheme_name, "event"))
        reference = _metrics_fingerprint(_run(dag, scheme_name, "reference"))
        assert event == reference, f"cores diverged on {profile}/{scheme_name}"
