#!/usr/bin/env python3
"""Cache-policy study on PageRank — the paper's flagship I/O-intensive
workload (up to 68 % improvement over MemTune in Fig. 6).

Sweeps cache sizes on the main 25-node cluster and prints, for every
policy in the standard line-up (LRU, LRC, MemTune, MRD variants,
Belady's MIN), the normalized JCT and hit ratio — a miniature version
of the Figure 4 + Figure 7 analysis for one workload.

Run:  python examples/pagerank_cache_study.py [workload]
"""

import sys

from repro.experiments import STANDARD_SCHEMES, format_table, sweep_workload
from repro.simulator import MAIN_CLUSTER

CACHE_FRACTIONS = (0.2, 0.35, 0.5, 0.7)


def main(workload: str = "PR") -> None:
    sweep = sweep_workload(
        workload,
        schemes=STANDARD_SCHEMES,
        cluster=MAIN_CLUSTER,
        cache_fractions=CACHE_FRACTIONS,
    )
    print(f"workload {workload}: peak live cached set = {sweep.peak_live_mb:.0f} MB "
          f"on {MAIN_CLUSTER.num_nodes} nodes\n")

    rows = []
    for fraction in sweep.fractions():
        for scheme in sweep.schemes():
            run = sweep.get(scheme, fraction)
            rows.append(
                (
                    fraction,
                    round(run.cache_mb_per_node, 1),
                    scheme,
                    round(run.jct, 2),
                    round(sweep.normalized_jct(scheme, fraction), 3),
                    f"{run.hit_ratio * 100:.0f}%",
                    run.metrics.stats.evictions,
                    run.metrics.stats.prefetches_used,
                )
            )
    print(
        format_table(
            ["CacheFrac", "MB/node", "Policy", "JCT(s)", "vs LRU", "Hit", "Evict", "PrefUsed"],
            rows,
            title=f"Cache-policy comparison for {workload} (lower 'vs LRU' is better)",
        )
    )

    best = sweep.best_fraction("MRD")
    print(
        f"\nbest MRD point: cache fraction {best} → "
        f"{sweep.normalized_jct('MRD', best):.2f}x LRU "
        f"(hit {sweep.get('MRD', best).hit_ratio * 100:.0f}% vs "
        f"{sweep.get('LRU', best).hit_ratio * 100:.0f}%)"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "PR")
