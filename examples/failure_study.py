#!/usr/bin/env python3
"""Failure study — cache loss mid-run and MRD's recovery (paper §4.4).

Injects worker failures at stage boundaries: an *executor restart*
(memory lost, spilled disk copies survive) and a *machine loss* (disk
lost too, partitions rebuilt through lineage recovery).  The paper's
fault-tolerance claim is that the MRDmanager simply re-issues the
MRD_Table to replacements — here that means MRD keeps its advantage
over LRU through the failure.

Run:  python examples/failure_study.py
"""

from repro.core import MrdScheme
from repro.dag import build_dag
from repro.dag.analysis import peak_live_cached_mb
from repro.experiments import format_table
from repro.policies import LruScheme
from repro.simulator import MAIN_CLUSTER, FailurePlan, simulate
from repro.workloads import build_workload


def main() -> None:
    dag = build_dag(build_workload("PR"))
    mid = dag.num_active_stages // 2
    cache = peak_live_cached_mb(dag) * 0.5 / MAIN_CLUSTER.num_nodes
    cluster = MAIN_CLUSTER.with_cache(cache)

    scenarios = {
        "healthy": None,
        "executor restart (node 0)": FailurePlan().add(at_seq=mid, node_id=0),
        "three executors restart": (
            FailurePlan().add(mid, 0).add(mid, 1).add(mid, 2)
        ),
        "machine loss (disk too)": FailurePlan().add(mid, 0, lose_disk=True),
    }

    rows = []
    for label, plan in scenarios.items():
        for scheme_factory in (LruScheme, MrdScheme):
            metrics = simulate(dag, cluster, scheme_factory(), failure_plan=plan)
            rows.append(
                (
                    label,
                    metrics.scheme,
                    round(metrics.jct, 2),
                    f"{metrics.hit_ratio * 100:.0f}%",
                    metrics.failure_lost_blocks,
                )
            )
    print(format_table(
        ["Scenario", "Policy", "JCT(s)", "Hit", "Blocks lost"],
        rows,
        title=f"PageRank with failures injected before stage {mid}",
    ))

    healthy_gap = rows[1][2] / rows[0][2]
    failed_gap = rows[3][2] / rows[2][2]
    print(f"\nMRD/LRU ratio — healthy: {healthy_gap:.2f}, "
          f"after executor restart: {failed_gap:.2f} "
          f"(the advantage survives the failure)")


if __name__ == "__main__":
    main()
