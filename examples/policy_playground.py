#!/usr/bin/env python3
"""Policy playground — the Figure 2 view of eviction priorities.

Prints, for ConnectedComponents (or any workload), how each policy's
metric evolves per cached RDD per stage:

* LRU   — stages since the last touch (largest = next evicted);
* LRC   — remaining reference count (smallest = next evicted);
* MRD   — stage distance to the next reference (largest/∞ = next evicted).

This is the paper's motivating example: watch RDDs with *distant* future
references keep a high LRC count (so LRC retains them too eagerly)
while MRD ranks them for eviction, and watch single-reference RDDs go
infinite under MRD the moment they are consumed.

Run:  python examples/policy_playground.py [workload]
"""

import sys

from repro.experiments import fig2


def main(workload: str = "CC") -> None:
    trace = fig2.run(workload, max_rdds=10)
    print(f"{workload}: {trace.dag.num_active_stages} active stages, "
          f"{len(trace.dag.profiles)} cached RDDs "
          f"(showing the {len(trace.rdd_ids)} most referenced)\n")
    for policy in ("lru", "lrc", "mrd"):
        print(fig2.render(trace, policy))
        print()
    print("reading guide: '.' = not yet created, '∞' = never referenced again")
    print("LRU evicts the LARGEST value, LRC the SMALLEST, MRD the LARGEST/∞.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "CC")
