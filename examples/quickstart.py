#!/usr/bin/env python3
"""Quickstart: build a Spark-like application, inspect its DAG, and
compare cache policies on it.

This walks the full public API surface in ~60 lines:

1. write an RDD program against :class:`repro.dag.SparkContext`;
2. compile it into jobs/stages with :func:`repro.dag.build_dag`;
3. run it on a simulated cluster under LRU (Spark's default) and under
   the paper's MRD policy, and compare job completion time and cache
   hit ratio.

Run:  python examples/quickstart.py
"""

from repro.core import MrdScheme
from repro.dag import SparkApplication, SparkContext, build_dag, distance_stats
from repro.policies import LruScheme
from repro.simulator import MAIN_CLUSTER, simulate


def build_application() -> SparkApplication:
    """A small iterative program: cached dataset re-read by every job."""
    ctx = SparkContext("quickstart")

    # Load and cache a dataset (sizes are in MB; nothing is actually
    # materialized — the simulator only needs the DAG shape and costs).
    data = ctx.text_file("events", size_mb=2000.0, num_partitions=50)
    parsed = data.map(size_factor=0.8, name="parsed").cache()

    # An aggregation job (wide transformation → separate stage).
    daily = parsed.reduce_by_key(size_factor=0.1, name="daily-totals")
    daily.collect(name="report-1")

    # Three more analysis passes over the same cached dataset.
    for day in range(3):
        window = parsed.filter(selectivity=0.3, name=f"window-{day}")
        window.reduce_by_key(size_factor=0.2, name=f"stats-{day}").collect()

    return SparkApplication(ctx)


def main() -> None:
    app = build_application()
    dag = build_dag(app)

    print(f"application: {dag}")
    print(f"reference distances: {distance_stats(dag)}")
    print()
    print("stages:")
    for stage in dag.active_stages:
        reads = ", ".join(r.name for r in stage.cache_reads) or "-"
        print(f"  seq {stage.seq:2d} (job {stage.job_id}) {stage.rdd.name:>15s}"
              f"   cache reads: {reads}")
    print()

    # Squeeze the cache so policy decisions matter: the cached working
    # set is 1600 MB, give the 25-node cluster roughly half of that.
    cluster = MAIN_CLUSTER.with_cache(32.0)
    for scheme in (LruScheme(), MrdScheme()):
        metrics = simulate(dag, cluster, scheme)
        print(metrics.summary())


if __name__ == "__main__":
    main()
