#!/usr/bin/env python3
"""Defining your own workload and comparing every policy on it.

Shows the full extension path a downstream user follows:

1. write an RDD program (here: a two-phase ETL + training pipeline
   whose feature table is re-read with a long gap — the access pattern
   MRD handles and LRU/LRC do not);
2. wrap it in a :class:`WorkloadSpec` so it composes with the sweep
   harness exactly like the built-in SparkBench workloads;
3. sweep cache sizes across the standard policy line-up and export the
   results to CSV/JSON with :mod:`repro.simulator.reporting`.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro.dag import SparkContext, build_dag
from repro.experiments import STANDARD_SCHEMES, format_table, sweep_workload
from repro.simulator import MAIN_CLUSTER
from repro.simulator.reporting import save_comparison_csv
from repro.workloads import WorkloadParams, WorkloadSpec
from repro.workloads.base import iterations_or_default, scaled


def build_etl_train(ctx: SparkContext, params: WorkloadParams) -> None:
    """ETL phase builds cached tables; training re-reads them much later."""
    size = scaled(params, 1200.0)
    parts = params.partitions
    epochs = iterations_or_default(params, 6)

    raw = ctx.text_file("clickstream", size_mb=size, num_partitions=parts)
    cleaned = raw.filter(selectivity=0.7, name="cleaned").cache()
    # ETL: several aggregation jobs over the cleaned data.
    sessions = cleaned.reduce_by_key(size_factor=0.4, name="sessions").cache()
    sessions.count(name="etl-sessionize")
    features = sessions.join(
        cleaned.map(size_factor=0.2, name="user-attrs"),
        size_factor=0.3, name="features",
    ).cache()
    features.count(name="etl-featurize")
    # A reporting job that never touches the feature table: it creates
    # the long reference gap that distinguishes the policies.
    report = cleaned.reduce_by_key(size_factor=0.05, name="daily-report")
    report.collect(name="reporting")
    # Training: epochs over the cached feature table.
    for epoch in range(epochs):
        grads = features.map_partitions(
            size_factor=0.02, cpu_per_mb=0.01, name=f"epoch-{epoch}"
        )
        grads.collect(name=f"train-{epoch}")
    # Final evaluation re-reads both cached tables.
    features.zip_partitions(
        sessions, size_factor=0.01, name="eval"
    ).collect(name="evaluate")


SPEC = WorkloadSpec(
    name="ETL-Train",
    full_name="ETL + training pipeline",
    suite="custom",
    category="Example",
    job_type="Mixed",
    input_mb=1200.0,
    default_iterations=6,
    builder=build_etl_train,
)


def main() -> None:
    app = SPEC.build()
    sweep = sweep_workload(
        "ETL-Train",
        schemes=STANDARD_SCHEMES,
        cluster=MAIN_CLUSTER,
        cache_fractions=(0.25, 0.5),
        dag=build_dag(app),
    )
    rows = []
    for fraction in sweep.fractions():
        for scheme in sweep.schemes():
            run = sweep.get(scheme, fraction)
            rows.append(
                (fraction, scheme, round(run.jct, 2),
                 round(sweep.normalized_jct(scheme, fraction), 3),
                 f"{run.hit_ratio * 100:.0f}%")
            )
    print(format_table(
        ["Fraction", "Policy", "JCT(s)", "vs LRU", "Hit"],
        rows, title=f"Custom workload: {SPEC.full_name}",
    ))

    with tempfile.TemporaryDirectory() as tmp:
        path = save_comparison_csv(
            [sweep.get(s, 0.5).metrics for s in sweep.schemes()],
            Path(tmp) / "etl_train.csv",
        )
        print(f"\nexported per-policy results to {path} (CSV; see "
              f"repro.simulator.reporting for JSON and per-stage timelines)")


if __name__ == "__main__":
    main()
