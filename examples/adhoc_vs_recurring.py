#!/usr/bin/env python3
"""Ad-hoc vs recurring applications — profile reuse across runs (§5.8).

Simulates the paper's deployment story end to end with a file-backed
profile store:

* run 1 (ad-hoc): the AppProfiler sees each job's DAG only at submission
  — cross-job references are invisible, so MRD purges/evicts data that
  later jobs need.  The profiler records the full reference profile as
  it goes and persists it.
* run 2 (recurring): the stored profile gives MRD the whole application
  DAG up front — the K-Means penalty disappears.

Run:  python examples/adhoc_vs_recurring.py
"""

import tempfile
from pathlib import Path

from repro.core import MrdScheme, ProfileStore
from repro.dag import build_dag
from repro.dag.analysis import peak_live_cached_mb
from repro.simulator import MAIN_CLUSTER, simulate
from repro.workloads import build_workload


def run_workload(name: str, store: ProfileStore, cache_fraction: float = 0.5):
    dag = build_dag(build_workload(name))
    cache = max(peak_live_cached_mb(dag) * cache_fraction / MAIN_CLUSTER.num_nodes, 8.0)
    cluster = MAIN_CLUSTER.with_cache(cache)
    # mode="recurring" degrades to ad-hoc automatically until the store
    # holds a complete profile for this application signature.
    first = simulate(dag, cluster, MrdScheme(mode="adhoc", profile_store=store))
    second = simulate(dag, cluster, MrdScheme(mode="recurring", profile_store=store))
    return first, second


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "profiles.json"
        for name in ("KM", "TC"):
            store = ProfileStore(store_path)
            first, second = run_workload(name, store)
            penalty = first.jct / second.jct
            print(f"{name}: ad-hoc first run  JCT={first.jct:8.2f}s "
                  f"hit={first.hit_ratio * 100:5.1f}%")
            print(f"{name}: recurring re-run  JCT={second.jct:8.2f}s "
                  f"hit={second.hit_ratio * 100:5.1f}%")
            print(f"{name}: ad-hoc penalty = {penalty:.2f}x "
                  f"({'significant' if penalty > 1.05 else 'negligible'} — "
                  f"{'matches' if (name == 'KM') == (penalty > 1.05) else 'differs from'} "
                  f"the paper's Fig. 9)\n")
        print(f"profile store persisted at {store_path} (deleted with tempdir)")


if __name__ == "__main__":
    main()
