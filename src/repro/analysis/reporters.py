"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json

from repro.analysis.runner import LintResult

REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-oriented report: one ``path:line:col: RULE message`` per line."""
    lines = [finding.render() for finding in result.findings]
    for finding in result.grandfathered:
        lines.append(f"{finding.render()} (baseline)")
    noun = "file" if result.files_checked == 1 else "files"
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} {noun}"
    )
    if result.grandfathered:
        summary += f" ({len(result.grandfathered)} grandfathered by baseline)"
    lines.append(summary)
    return "\n".join(lines)


def _annotation_escape(value: str) -> str:
    """GitHub workflow-command data escaping (%, CR, LF)."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def render_github(result: LintResult) -> str:
    """GitHub Actions error annotations: findings land on the PR diff.

    One ``::error`` workflow command per gating finding; grandfathered
    findings surface as ``::notice`` so they stay visible without
    failing the job.  The trailing summary line is plain text.
    """
    lines = []
    for finding in result.findings:
        lines.append(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col},title=repro-lint {finding.rule}::"
            f"{_annotation_escape(finding.message)}"
        )
    for finding in result.grandfathered:
        lines.append(
            f"::notice file={finding.path},line={finding.line},"
            f"col={finding.col},title=repro-lint {finding.rule} (baseline)::"
            f"{_annotation_escape(finding.message)}"
        )
    noun = "file" if result.files_checked == 1 else "files"
    lines.append(
        f"{len(result.findings)} finding(s) in {result.files_checked} {noun}"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-oriented report (stable key order, one JSON object)."""
    payload = {
        "version": REPORT_VERSION,
        "ok": result.ok,
        "files_checked": result.files_checked,
        "findings": [finding.to_json() for finding in result.findings],
        "grandfathered": [
            finding.to_json() for finding in result.grandfathered
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
