"""Finding: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """A single lint finding, ordered by location for stable reports."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def key(self) -> str:
        """Baseline identity: location-free, so line drift never un-grandfathers.

        Two findings with the same file, rule and message share a key;
        the baseline stores a per-key count (see
        :class:`repro.analysis.baseline.Baseline`).
        """
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        """``path:line:col: RULE message`` (the text-reporter line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
