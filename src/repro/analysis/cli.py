"""The ``repro lint`` subcommand (also ``python -m repro.analysis``).

Kept free of any import outside :mod:`repro.analysis` and the standard
library, so the CI lint job and the pre-commit hook can run it without
installing the simulator's numeric dependencies.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.base import all_rules
from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.changed import resolve_changed_paths
from repro.analysis.reporters import render_github, render_json, render_text
from repro.analysis.runner import LintConfig, lint_paths


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags (shared by ``repro lint`` and ``-m repro.analysis``)."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="report format (default: text; 'github' emits workflow "
             "error annotations)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only the git diff's import closure (merge-base aware; "
             "falls back to the full tree when git is unavailable)",
    )
    parser.add_argument(
        "--changed-base", default=None, metavar="REF",
        help="comparison ref for --changed (default: the branch upstream, "
             "then origin/main)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file of grandfathered findings; only findings "
             "beyond it fail (a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--no-scope", dest="scoped", action="store_false",
        help="ignore per-rule path scoping (lint every rule everywhere)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def _split_rules(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        for rule in all_rules():
            scope = (
                ", ".join(rule.applies_to) if rule.applies_to else "everywhere"
            )
            print(f"{rule.id}  {rule.title}  [{scope}]")
        return 0

    if args.write_baseline and not args.baseline:
        raise SystemExit("--write-baseline requires --baseline PATH")
    try:
        baseline = Baseline.load(args.baseline) if args.baseline else Baseline()
    except BaselineError as exc:
        raise SystemExit(f"lint failed: {exc}") from exc

    paths: list = list(args.paths)
    if getattr(args, "changed", False):
        resolved = resolve_changed_paths(
            paths, base=getattr(args, "changed_base", None)
        )
        if resolved is not None:
            paths = resolved

    config = LintConfig(
        select=_split_rules(args.select),
        ignore=_split_rules(args.ignore) or (),
        scoped=args.scoped,
        baseline=Baseline() if args.write_baseline else baseline,
    )
    try:
        result = lint_paths(paths, config)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(f"lint failed: {exc}") from exc

    if args.write_baseline:
        Baseline.from_findings(result.findings, result.content_hashes).save(
            args.baseline
        )
        print(
            f"baseline written to {args.baseline} "
            f"({len(result.findings)} finding(s) grandfathered)"
        )
        return 0

    render = {
        "json": render_json, "github": render_github
    }.get(args.format, render_text)
    print(render(result))
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism-contract static analyzer (see docs/static-analysis.md)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
