"""The shipped rule set: the determinism contract, as AST checks.

Every rule here encodes one way a change can silently break the
reproduction's determinism invariants (sweep bit-identity, rpc-at-zero
equivalence, draw-for-draw RNG discipline):

* **DET001** — draws on the process-global ``random`` module.  Policy
  and workload randomness must come from an injected, seed-threaded
  ``random.Random`` so every draw is attributable and replayable.
* **DET002** — wall-clock reads inside the simulated world
  (``simulator/``, ``core/``, ``policies/``, ``control/``).  Simulated
  time is the only clock there; ``time.time()`` output depends on the
  host.
* **DET003** — iteration over unordered collections (``set(...)``,
  dict views) feeding ordering-sensitive constructs: heap pushes,
  candidate lists, comprehensions that build ordered results.  Set
  iteration order is hash-salted per process; wrap in ``sorted(...)``.
* **DET004** — unsorted directory listings (``os.listdir``,
  ``glob.glob``, ``Path.glob``/``iterdir``).  On-disk order is
  filesystem-dependent; resumable stores must not let it leak into
  behaviour.
* **MUT001** — mutable default arguments, the classic shared-state
  bug (a ``list``/``dict``/``set`` default is created once per process
  and mutates across calls).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import ModuleContext, Rule, register_rule
from repro.analysis.findings import Finding

#: Packages whose code runs "inside" the simulation and therefore must
#: be deterministic given (dag, cluster, scheme, seeds).
SIMULATED_WORLD = (
    "repro/simulator",
    "repro/core",
    "repro/policies",
    "repro/control",
)

#: random-module functions that draw from (or reseed) the global RNG.
RANDOM_DRAW_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "seed", "getrandbits", "randbytes", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "betavariate",
    "gammavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "binomialvariate",
})

#: time-module functions that read host clocks.
WALL_CLOCK_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock_gettime",
    "clock_gettime_ns",
})

#: Consumers whose result does not depend on input order: feeding an
#: unordered iterable straight into these is fine.
ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "sum", "len", "min", "max", "any", "all",
})


@register_rule
class GlobalRandomRule(Rule):
    """DET001: draws on the shared module-level ``random`` RNG."""

    id = "DET001"
    title = "global random.* draw; inject a seeded random.Random instead"
    #: Benchmarks time things, they do not define simulated behaviour.
    exempt = ("repro/bench", "tests", "benchmarks")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        random_names = module.names_for_module("random")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                drawn = sorted(
                    alias.name for alias in node.names
                    if alias.name in RANDOM_DRAW_FNS
                )
                if drawn:
                    yield self.finding(
                        module, node,
                        f"importing {', '.join(drawn)} from random binds the "
                        "process-global RNG; draw from an injected "
                        "random.Random instance",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in random_names
                    and func.attr in RANDOM_DRAW_FNS
                ):
                    yield self.finding(
                        module, node,
                        f"random.{func.attr}() draws from the process-global "
                        "RNG; draw from an injected random.Random instance",
                    )


@register_rule
class WallClockRule(Rule):
    """DET002: host-clock reads inside the simulated world."""

    id = "DET002"
    title = "wall-clock read inside the simulator; use simulated time"
    applies_to = SIMULATED_WORLD

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            for fn in WALL_CLOCK_FNS:
                if module.resolves_to(func, "time", fn):
                    yield self.finding(
                        module, node,
                        f"time.{fn}() reads a host clock; simulated components "
                        "must take time from the engine",
                    )
                    break
            else:
                yield from self._check_datetime(module, node)

    def _check_datetime(self, module: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in ("now", "utcnow", "today")):
            return
        base = func.value
        # datetime.now() / date.today() via `from datetime import datetime`.
        from_datetime = (
            isinstance(base, ast.Name)
            and module.from_imports.get(base.id, ("", ""))[0] == "datetime"
        )
        # datetime.datetime.now() via `import datetime`.
        qualified = (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and module.module_aliases.get(base.value.id) == "datetime"
            and base.attr in ("datetime", "date")
        )
        if from_datetime or qualified:
            yield self.finding(
                module, node,
                f"datetime .{func.attr}() reads the host clock; simulated "
                "components must take time from the engine",
            )


def _is_set_shaped(node: ast.AST) -> bool:
    """Syntactically a set: literal, comprehension or set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_dict_view(node: ast.AST) -> bool:
    """A ``.keys()`` / ``.values()`` / ``.items()`` call result."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and not node.args
        and not node.keywords
    )


def _is_heap_push(node: ast.AST, module: ModuleContext) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name) and func.id in ("heappush", "heappushpop"):
        return True
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in module.names_for_module("heapq")
        and func.attr in ("heappush", "heappushpop", "heapify")
    )


def _body_has_ordering_sink(body: list[ast.stmt], module: ModuleContext,
                            heap_only: bool = False) -> bool:
    """Does a loop body push to a heap (or, unless ``heap_only``, append)?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if _is_heap_push(node, module):
                return True
            if heap_only:
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "appendleft", "extend")
            ):
                return True
    return False


@register_rule
class UnorderedIterationRule(Rule):
    """DET003: unordered iteration feeding ordering-sensitive constructs."""

    id = "DET003"
    title = "unordered set/dict-view iteration feeds an ordered construct"
    applies_to = SIMULATED_WORLD + ("repro/cluster",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                yield from self._check_comprehension(module, node)
            elif isinstance(node, ast.For):
                yield from self._check_for(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_materialize(module, node)

    # ------------------------------------------------------------------
    def _sanitized(self, module: ModuleContext, node: ast.AST) -> bool:
        """Is the value consumed by an order-insensitive function?"""
        for call in module.ancestor_calls(node):
            if (
                isinstance(call.func, ast.Name)
                and call.func.id in ORDER_INSENSITIVE_CONSUMERS
            ):
                return True
        return False

    def _check_comprehension(
        self, module: ModuleContext, node: ast.ListComp | ast.GeneratorExp
    ) -> Iterator[Finding]:
        for generator in node.generators:
            if _is_set_shaped(generator.iter) and not self._sanitized(module, node):
                yield self.finding(
                    module, generator.iter,
                    "comprehension over a set builds an ordered result from "
                    "hash-salted iteration; wrap the iterable in sorted(...)",
                )

    def _check_for(self, module: ModuleContext, node: ast.For) -> Iterator[Finding]:
        if _is_set_shaped(node.iter):
            if _body_has_ordering_sink(node.body, module):
                yield self.finding(
                    module, node.iter,
                    "loop over a set feeds an ordering-sensitive construct "
                    "(append/heappush); wrap the iterable in sorted(...)",
                )
        elif _is_dict_view(node.iter):
            if _body_has_ordering_sink(node.body, module, heap_only=True):
                yield self.finding(
                    module, node.iter,
                    "loop over a dict view feeds a heap; make the order "
                    "explicit with sorted(...)",
                )

    def _check_materialize(self, module: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        if not (isinstance(node.func, ast.Name) and node.func.id in ("list", "tuple")):
            return
        if len(node.args) == 1 and _is_set_shaped(node.args[0]):
            if not self._sanitized(module, node):
                yield self.finding(
                    module, node,
                    f"{node.func.id}() over a set captures hash-salted order; "
                    "use sorted(...) instead",
                )


@register_rule
class UnsortedListingRule(Rule):
    """DET004: directory listings whose order leaks into behaviour."""

    id = "DET004"
    title = "unsorted os.listdir/glob result; wrap in sorted(...)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._listing_label(module, node)
            if label is None:
                continue
            if self._sorted_ancestor(module, node):
                continue
            yield self.finding(
                module, node,
                f"{label} order is filesystem-dependent; wrap the result "
                "in sorted(...)",
            )

    def _listing_label(self, module: ModuleContext, node: ast.Call) -> str | None:
        func = node.func
        for mod, fn in (
            ("os", "listdir"), ("os", "scandir"),
            ("glob", "glob"), ("glob", "iglob"),
        ):
            if module.resolves_to(func, mod, fn):
                return f"{mod}.{fn}()"
        if isinstance(func, ast.Attribute) and func.attr in ("glob", "rglob", "iterdir"):
            # Heuristic: .glob/.rglob/.iterdir is pathlib in this codebase.
            return f"Path.{func.attr}()"
        return None

    def _sorted_ancestor(self, module: ModuleContext, node: ast.AST) -> bool:
        current: ast.AST | None = node
        while current is not None and not isinstance(current, ast.stmt):
            if (
                isinstance(current, ast.Call)
                and isinstance(current.func, ast.Name)
                and current.func.id == "sorted"
            ):
                return True
            current = module.parents.get(current)
        return False


@register_rule
class MutableDefaultRule(Rule):
    """MUT001: mutable default argument values."""

    id = "MUT001"
    title = "mutable default argument; default to None and build inside"

    MUTABLE_CALLS = frozenset({
        "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
        "Counter", "deque",
    })

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for default in [*node.args.defaults, *node.args.kw_defaults]:
                if default is not None and self._is_mutable(default):
                    yield self.finding(
                        module, default,
                        f"mutable default argument in {node.name}(); use None "
                        "and create the value inside the function",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            return name in self.MUTABLE_CALLS
        return False
