"""Determinism-contract static analysis (``repro lint``).

The reproduction's headline guarantees are determinism invariants:
parallel sweeps are bit-identical to serial runs, an rpc control plane
at zero latency is equivalent to the instant one, and every RNG draw is
accounted for.  Nothing in the type system stops a future change from
breaking them with a global ``random.random()`` call, a wall-clock read
inside the simulator, or an unordered ``set`` iteration feeding a heap
push — those bugs only surface (sometimes) as flaky equivalence-suite
failures.

This package encodes the contract as an AST-based lint pass:

* :mod:`repro.analysis.base` — the rule framework (:class:`Rule`,
  registry, :class:`ModuleContext` with parent/import maps);
* :mod:`repro.analysis.determinism` — the shipped rule set
  (DET001–DET004, MUT001);
* :mod:`repro.analysis.suppressions` — ``# repro: noqa[RULE]`` line and
  ``# repro: noqa-file[RULE]`` file suppressions;
* :mod:`repro.analysis.baseline` — grandfathered-finding baselines so
  the gate can be adopted incrementally;
* :mod:`repro.analysis.runner` / :mod:`repro.analysis.reporters` — file
  collection, rule execution and text/JSON output;
* :mod:`repro.analysis.cli` — the ``repro lint`` subcommand, also
  runnable dependency-free as ``python -m repro.analysis``.

See ``docs/static-analysis.md`` for the rule catalog and workflow.
"""

from __future__ import annotations

from repro.analysis.base import Rule, all_rules, get_rule, register_rule
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.runner import LintConfig, LintResult, lint_paths

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "register_rule",
]
