"""Whole-program contract static analysis (``repro lint``).

The reproduction's headline guarantees are determinism and
crash-consistency invariants: parallel sweeps are bit-identical to
serial runs, an rpc control plane at zero latency is equivalent to the
instant one, distributed workers settle results atomically over a
shared store, and every RNG draw is accounted for.  Nothing in the type
system stops a future change from breaking them with a global
``random.random()`` call, a wall-clock read inside the simulator, a
manifest rewritten without its lock, or an event kind nobody's pivot
table handles — those bugs only surface (sometimes) as flaky
equivalence-suite failures.

This package encodes the contracts as a two-pass AST lint: a per-module
pass, then a *whole-program* pass over a
:class:`~repro.analysis.project.ProjectContext` (symbol tables, import
graph, conservative call graph, class hierarchy) that cross-module
rules consume:

* :mod:`repro.analysis.base` — the rule framework (:class:`Rule`,
  :class:`ProjectRule`, registry, :class:`ModuleContext`);
* :mod:`repro.analysis.project` — the first pass: whole-program context
  construction and the ``--changed`` import-closure computation;
* :mod:`repro.analysis.determinism` — per-module rules
  (DET001–DET004, MUT001);
* :mod:`repro.analysis.rng_rules` — RNG provenance (RNG101–RNG103);
* :mod:`repro.analysis.io_rules` — crash-consistent IO over the shared
  store (IO201–IO203);
* :mod:`repro.analysis.event_rules` — trace-event schema drift (EVT301);
* :mod:`repro.analysis.suppressions` — ``# repro: noqa[RULE]`` line and
  ``# repro: noqa-file[RULE]`` file suppressions;
* :mod:`repro.analysis.baseline` — grandfathered-finding baselines
  (path- and content-hash-keyed) so the gate can be adopted
  incrementally;
* :mod:`repro.analysis.changed` — git-diff-scoped runs for pre-commit;
* :mod:`repro.analysis.runner` / :mod:`repro.analysis.reporters` — file
  collection, rule execution and text/JSON/GitHub-annotation output;
* :mod:`repro.analysis.cli` — the ``repro lint`` subcommand, also
  runnable dependency-free as ``python -m repro.analysis``.

See ``docs/static-analysis.md`` for the rule catalog and workflow.
"""

from __future__ import annotations

from repro.analysis.base import (
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register_rule,
)
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.runner import LintConfig, LintResult, lint_paths

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "register_rule",
]
