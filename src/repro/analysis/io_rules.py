"""Crash-consistent IO rules for the shared sweep store and trace files.

The distributed sweep service (``repro.sweep.service``) coordinates
workers on different machines through one shared directory tree — over
NFS in the deployments the docs describe.  Its correctness story has
exactly three load-bearing idioms:

* final files appear **atomically** via ``tempfile.mkstemp`` in the
  destination directory followed by ``os.replace`` (readers see the old
  bytes or the new bytes, never a torn file);
* a lease is **claimed** with ``os.open(path, O_CREAT | O_EXCL)`` (at
  most one winner fleet-wide);
* a **read-modify-write** of a shared file happens under a mutual-
  exclusion guard — an ``os.mkdir`` lock directory or an ``O_EXCL``
  claim — so concurrent merges cannot lose updates.

The rules here enforce those idioms statically, with an intra-function
taint pass over *store-path producers* (``store.root``, ``cell_path()``,
``leases_dir`` and friends) plus one level of cross-module delegation
through the project call graph (so a helper like ``_atomic_write_json``
is recognized as an atomic writer at its call sites):

* **IO201** — a truncating write (``open(p, "w")``, ``write_text``,
  ``json.dump`` into such a handle) lands directly on a final
  store/registry path instead of tmp + ``os.replace``.
* **IO202** — a claim-style write to a *lease* path without
  ``O_CREAT | O_EXCL`` semantics (plain ``"w"`` mode clobbers a
  concurrent claimant's lease instead of losing the race).
* **IO203** — one function both reads and (even atomically) rewrites a
  shared store file with no lease/mkdir guard in itself or any callee:
  two racing processes each read, merge, replace — last writer silently
  drops the other's update.

Dataflow is name-based and scoped with
:func:`~repro.analysis.project.walk_own`, so a nested helper's writes
are not conflated with its enclosing function's reads.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.base import ModuleContext, ProjectRule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectContext,
    walk_own,
)

#: Packages the IO discipline applies to (shared-store writers).
IO_SCOPE = ("repro/sweep", "repro/trace")

#: Attribute/function name suffixes that *produce* shared-store paths.
_PATH_SUFFIXES = ("_path", "_dir", "_file")

#: Path-returning ``pathlib`` methods that keep taint flowing.
_PATH_CHAIN_METHODS = frozenset({
    "joinpath", "with_suffix", "with_name", "with_stem",
    "resolve", "absolute", "expanduser",
})


def _label_for_name(name: str) -> str:
    """Taint label from a producer name: lease paths get their own lane."""
    return "lease" if "lease" in name.lower() else "store"


def _is_producer_name(name: str) -> bool:
    return name == "root" or name.endswith(_PATH_SUFFIXES)


def expr_label(
    expr: ast.expr, taint: dict[str, str]
) -> str | None:
    """Taint label of ``expr`` (``"store"``/``"lease"``/seeded), or ``None``."""
    if isinstance(expr, ast.Name):
        return taint.get(expr.id)
    if isinstance(expr, ast.Attribute):
        if _is_producer_name(expr.attr):
            return _label_for_name(expr.attr)
        return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
        return expr_label(expr.left, taint) or expr_label(expr.right, taint)
    if isinstance(expr, ast.IfExp):
        return expr_label(expr.body, taint) or expr_label(expr.orelse, taint)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            if _is_producer_name(func.id):
                return _label_for_name(func.id)
            if func.id == "Path" and expr.args:
                return expr_label(expr.args[0], taint)
        elif isinstance(func, ast.Attribute):
            if _is_producer_name(func.attr):
                return _label_for_name(func.attr)
            if func.attr in _PATH_CHAIN_METHODS:
                return expr_label(func.value, taint)
    return None


def function_taint(
    func_node: ast.AST, seed: dict[str, str] | None = None
) -> dict[str, str]:
    """Name → label fixpoint over own-scope assignments in ``func_node``."""
    taint: dict[str, str] = dict(seed or {})
    changed = True
    while changed:
        changed = False
        for node in walk_own(func_node):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            label = expr_label(value, taint)
            if label is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and taint.get(target.id) != label:
                    taint[target.id] = label
                    changed = True
    return taint


# ----------------------------------------------------------------------
# sink classification
# ----------------------------------------------------------------------
#: Sink kinds: how a call touches a tainted path.
READ, CLOBBER, ATOMIC, EXCLUSIVE = "read", "clobber", "atomic", "exclusive"


def _mode_kind(mode: str) -> str:
    if mode.startswith("x"):
        return EXCLUSIVE
    if mode.startswith("r") and "+" not in mode:
        return READ
    return CLOBBER


def _literal_mode(call: ast.Call, position: int) -> str:
    args = call.args
    expr: ast.expr | None = args[position] if len(args) > position else None
    for kw in call.keywords:
        if kw.arg == "mode":
            expr = kw.value
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return "r" if expr is None else "?"


def _flags_have_excl(expr: ast.expr) -> bool:
    return any(
        (isinstance(node, ast.Attribute) and node.attr == "O_EXCL")
        or (isinstance(node, ast.Name) and node.id == "O_EXCL")
        for node in ast.walk(expr)
    )


def iter_sinks(
    ctx: ModuleContext, call: ast.Call, taint: dict[str, str]
) -> Iterator[tuple[str, str]]:
    """``(kind, label)`` pairs for tainted paths this call touches."""
    func = call.func
    # open(p, "w") / open(p).
    if isinstance(func, ast.Name) and func.id == "open" and call.args:
        label = expr_label(call.args[0], taint)
        if label is not None:
            mode = _literal_mode(call, 1)
            if mode != "?":
                yield _mode_kind(mode), label
        return
    if not isinstance(func, ast.Attribute):
        return
    # p.open("w") / p.open().
    if func.attr == "open":
        label = expr_label(func.value, taint)
        if label is not None:
            mode = _literal_mode(call, 0)
            if mode != "?":
                yield _mode_kind(mode), label
        return
    if func.attr in ("read_text", "read_bytes"):
        label = expr_label(func.value, taint)
        if label is not None:
            yield READ, label
        return
    if func.attr in ("write_text", "write_bytes"):
        label = expr_label(func.value, taint)
        if label is not None:
            yield CLOBBER, label
        return
    # os.open(p, flags): O_EXCL is a claim, anything else writable clobbers.
    if ctx.resolves_to(func, "os", "open") and len(call.args) >= 2:
        label = expr_label(call.args[0], taint)
        if label is not None:
            yield (EXCLUSIVE if _flags_have_excl(call.args[1]) else CLOBBER), label
        return
    # os.replace/os.rename(src, dst): an atomic publish onto dst.
    if (
        (ctx.resolves_to(func, "os", "replace") or ctx.resolves_to(func, "os", "rename"))
        and len(call.args) >= 2
    ):
        label = expr_label(call.args[1], taint)
        if label is not None:
            yield ATOMIC, label


def _has_guard(func_node: ast.AST, ctx: ModuleContext) -> bool:
    """Mutual-exclusion guard in this body: os.mkdir or an O_EXCL open.

    ``mkdir(exist_ok=True)`` is an *ensure*, not a guard — only a mkdir
    that can raise ``FileExistsError`` serializes contenders.
    """
    for node in ast.walk(func_node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if ctx.resolves_to(func, "os", "mkdir"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "mkdir"
            and not any(
                kw.arg == "exist_ok"
                and not (isinstance(kw.value, ast.Constant) and kw.value.value is False)
                for kw in node.keywords
            )
        ):
            return True
        if (
            ctx.resolves_to(func, "os", "open")
            and len(node.args) >= 2
            and _flags_have_excl(node.args[1])
        ):
            return True
    return False


# ----------------------------------------------------------------------
# per-function classification (one delegation level)
# ----------------------------------------------------------------------
@dataclass
class FuncIO:
    """How one function touches shared paths, seen from a call site."""

    #: Params it directly reads as paths / clobber-writes / atomically writes.
    read_params: set[str] = field(default_factory=set)
    clobber_params: set[str] = field(default_factory=set)
    write_params: set[str] = field(default_factory=set)
    #: Touches via its *own* producers (``self.cell_path()`` …): any call
    #: to the function is a shared read/write regardless of arguments.
    reads_shared: bool = False
    clobbers_shared: bool = False
    writes_shared: bool = False
    #: Body contains an os.mkdir / O_EXCL mutual-exclusion guard.
    has_guard: bool = False


def _classify(info: ModuleInfo, func: FunctionInfo) -> FuncIO:
    out = FuncIO()
    params = func.param_names()
    seed = {p: f"param:{p}" for p in params}
    taint = function_taint(func.node, seed)
    ctx = info.context
    for node in walk_own(func.node):
        if not isinstance(node, ast.Call):
            continue
        for kind, label in iter_sinks(ctx, node, taint):
            via_param = label.startswith("param:")
            param = label.removeprefix("param:")
            if kind == READ:
                if via_param:
                    out.read_params.add(param)
                else:
                    out.reads_shared = True
            elif kind == CLOBBER:
                if via_param:
                    out.clobber_params.add(param)
                    out.write_params.add(param)
                else:
                    out.clobbers_shared = True
                    out.writes_shared = True
            elif kind == ATOMIC:
                if via_param:
                    out.write_params.add(param)
                else:
                    out.writes_shared = True
    out.has_guard = _has_guard(func.node, ctx)
    return out


def _arg_labels(
    call: ast.Call, target: FunctionInfo, taint: dict[str, str]
) -> dict[str, str]:
    """Tainted-call-argument labels keyed by the *callee's* param name."""
    params = target.param_names()
    if target.cls is not None and params and params[0] in ("self", "cls"):
        params = params[1:]
    out: dict[str, str] = {}
    for index, arg in enumerate(call.args):
        label = expr_label(arg, taint)
        if label is not None and index < len(params):
            out[params[index]] = label
    for kw in call.keywords:
        if kw.arg is None:
            continue
        label = expr_label(kw.value, taint)
        if label is not None:
            out[kw.arg] = label
    return out


class _IoAnalysis:
    """Shared per-project analysis the three IO rules all read from."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.classified: dict[tuple[str, str], FuncIO] = {}
        for info in project.modules.values():
            for func in info.all_functions():
                self.classified[func.ref] = _classify(info, func)
        #: ``(rule_id, module, node, message)`` for every finding.
        self.raw: list[tuple[str, ModuleContext, ast.AST, str]] = []
        for name in sorted(project.modules):
            info = project.modules[name]
            for func in sorted(info.all_functions(), key=lambda f: f.qualname):
                self._check_function(info, func)

    # ------------------------------------------------------------------
    def _guarded(self, func: FunctionInfo) -> bool:
        if self.classified[func.ref].has_guard:
            return True
        return any(
            self.classified[callee.ref].has_guard
            for callee in self.project.transitive_callees(func)
        )

    def _check_function(self, info: ModuleInfo, func: FunctionInfo) -> None:
        ctx = info.context
        taint = function_taint(func.node)
        reads: list[ast.AST] = []
        writes: list[tuple[ast.AST, str]] = []
        for node in walk_own(func.node):
            if not isinstance(node, ast.Call):
                continue
            for kind, label in iter_sinks(ctx, node, taint):
                if kind == READ:
                    reads.append(node)
                elif kind == CLOBBER:
                    writes.append((node, label))
                    self._direct_clobber(ctx, node, label)
                elif kind == ATOMIC:
                    writes.append((node, label))
            for target in self.project.resolve_call(info, node, caller=func):
                io = self.classified.get(target.ref)
                if io is None:
                    continue
                labels = _arg_labels(node, target, taint)
                if io.reads_shared or (io.read_params & set(labels)):
                    reads.append(node)
                shared_write = io.writes_shared or (io.write_params & set(labels))
                clobbered = sorted(io.clobber_params & set(labels))
                if clobbered:
                    for param in clobbered:
                        self._direct_clobber(
                            ctx, node, labels[param],
                            via=f"{target.module}.{target.qualname}()",
                        )
                elif io.clobbers_shared:
                    shared_write = True
                if shared_write:
                    label = next(iter(labels.values()), "store")
                    writes.append((node, label))
        if reads and writes and not self._guarded(func):
            node, label = writes[0]
            self.raw.append((
                "IO203", ctx, node,
                f"{func.qualname}() reads and rewrites a shared {label} file "
                "with no lease/mkdir guard; concurrent writers lose updates — "
                "serialize the read-modify-write under an os.mkdir lock or an "
                "O_CREAT|O_EXCL claim",
            ))

    def _direct_clobber(
        self, ctx: ModuleContext, node: ast.AST, label: str, via: str = ""
    ) -> None:
        suffix = f" via {via}" if via else ""
        if label == "lease":
            self.raw.append((
                "IO202", ctx, node,
                "claim-style write to a lease path without O_CREAT|O_EXCL"
                f"{suffix}; a plain 'w' open clobbers a concurrent claimant — "
                "use os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)",
            ))
        else:
            self.raw.append((
                "IO201", ctx, node,
                "write lands directly on a final store path"
                f"{suffix}; readers can observe a torn file — write to a "
                "tempfile.mkstemp sibling and os.replace onto the destination",
            ))


_ANALYSES: dict[int, _IoAnalysis] = {}


def _analysis(project: ProjectContext) -> _IoAnalysis:
    key = id(project)
    cached = _ANALYSES.get(key)
    if cached is None or cached.project is not project:
        _ANALYSES.clear()
        cached = _ANALYSES[key] = _IoAnalysis(project)
    return cached


class _IoRule(ProjectRule):
    """Base: filter the shared analysis down to one rule id."""

    applies_to = IO_SCOPE

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for rule_id, ctx, node, message in _analysis(project).raw:
            if rule_id == self.id:
                yield self.finding(ctx, node, message)


@register_rule
class DirectFinalWriteRule(_IoRule):
    """IO201: truncating write directly onto a final store path."""

    id = "IO201"
    title = "direct write to a final store path (use tmp + os.replace)"


@register_rule
class NonExclusiveClaimRule(_IoRule):
    """IO202: lease claim without O_CREAT|O_EXCL semantics."""

    id = "IO202"
    title = "lease claim without O_CREAT|O_EXCL"


@register_rule
class UnguardedReadModifyWriteRule(_IoRule):
    """IO203: unguarded read-modify-write of a shared store file."""

    id = "IO203"
    title = "read-modify-write of a shared file outside a lease/mkdir guard"
