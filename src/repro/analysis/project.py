"""Whole-program analysis context: the analyzer's first pass.

:class:`ProjectContext` turns the flat list of parsed modules a lint
run collects into the structures cross-module rules need:

* **module naming** — every file gets a dotted module name derived from
  the package structure on disk (``src/repro/sweep/store.py`` →
  ``repro.sweep.store``), so imports resolve by name no matter which
  directory the lint was launched from;
* **symbol tables** — per-module top-level functions, classes, methods,
  module-level assignments, ``__all__`` and the import bindings that
  re-export names from other modules;
* **import graph** — project-internal edges only (imports of modules
  outside the analyzed set are ignored), plus the reverse map, used by
  ``repro lint --changed`` to compute the affected import closure;
* **conservative call graph** — :meth:`resolve_call` maps a call site
  to the project functions it *may* invoke: local functions, functions
  reached through ``from m import f`` chains (re-exports included),
  ``mod.f()`` through module aliases, ``self.m()`` through the class
  hierarchy, and ``obj.m()`` through the classes visible in the calling
  module.  Unresolvable calls resolve to nothing — the graph
  under-approximates, it never invents edges;
* **class hierarchy** — base-class references resolved through the
  same import bindings, so ``is_subclass_of`` can climb across modules.

The second pass — :class:`~repro.analysis.base.ProjectRule` subclasses
— consumes this context; see :mod:`repro.analysis.rng_rules`,
:mod:`repro.analysis.io_rules` and :mod:`repro.analysis.event_rules`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.base import ModuleContext


def module_name_for(path: Path) -> str:
    """Dotted module name from package structure (``__init__.py`` walk)."""
    path = Path(path).resolve()
    parts = [] if path.name == "__init__.py" else [path.stem]
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(parts) if parts else path.stem


def walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested def/class scopes.

    Name-based dataflow (the IO rules) must not conflate a nested
    function's bindings with its enclosing function's; reachability
    checks (the RNG rules) use the ordinary conservative ``ast.walk``.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))


@dataclass
class FunctionInfo:
    """One top-level function or method, addressable project-wide."""

    module: str
    #: ``"fn"`` for module functions, ``"Cls.fn"`` for methods.
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Enclosing class name for methods, ``None`` for module functions.
    cls: str | None = None

    @property
    def ref(self) -> tuple[str, str]:
        return (self.module, self.qualname)

    @property
    def name(self) -> str:
        return self.node.name

    def param_names(self) -> list[str]:
        args = self.node.args
        return [
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        ]


class ModuleInfo:
    """Symbol tables for one analyzed module."""

    def __init__(self, name: str, context: ModuleContext) -> None:
        self.name = name
        self.context = context
        self.is_package = context.path.name == "__init__.py"
        #: Top-level function name → info.
        self.functions: dict[str, FunctionInfo] = {}
        #: Top-level class name → node.
        self.classes: dict[str, ast.ClassDef] = {}
        #: Class name → method name → info.
        self.methods: dict[str, dict[str, FunctionInfo]] = {}
        #: Module-level simple-assignment name → value expression.
        self.globals: dict[str, ast.expr] = {}
        #: ``__all__`` entries (string constants only), or ``None``.
        self.all_names: list[str] | None = None
        #: Imported-name bindings: local name → (module, attr | None).
        #: ``attr`` is ``None`` for whole-module imports.
        self.bindings: dict[str, tuple[str, str | None]] = {}
        #: Modules star-imported (``from m import *``).
        self.star_imports: list[str] = []
        self._collect()

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        for stmt in self.context.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = FunctionInfo(
                    self.name, stmt.name, stmt
                )
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = stmt
                table: dict[str, FunctionInfo] = {}
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        table[member.name] = FunctionInfo(
                            self.name, f"{stmt.name}.{member.name}",
                            member, cls=stmt.name,
                        )
                self.methods[stmt.name] = table
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.globals[target.id] = stmt.value
                        if target.id == "__all__":
                            self._collect_all(stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                    self.globals[stmt.target.id] = stmt.value
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    bound = alias.name if alias.asname else alias.name.split(".")[0]
                    self.bindings[local] = (bound, None)
            elif isinstance(stmt, ast.ImportFrom):
                target = self._resolve_from(stmt)
                if target is None:
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        self.star_imports.append(target)
                    else:
                        self.bindings[alias.asname or alias.name] = (
                            target, alias.name
                        )

    def _collect_all(self, value: ast.expr) -> None:
        if isinstance(value, (ast.List, ast.Tuple)):
            names = [
                el.value for el in value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            ]
            self.all_names = names

    def _resolve_from(self, stmt: ast.ImportFrom) -> str | None:
        """Absolute dotted module a ``from ... import`` targets."""
        if stmt.level == 0:
            return stmt.module
        parts = self.name.split(".")
        # ``from . import x`` inside pkg/__init__.py targets pkg itself;
        # inside pkg/mod.py it targets pkg (drop the module segment).
        keep = len(parts) - stmt.level + (1 if self.is_package else 0)
        if keep < 0:
            return None
        base = parts[:keep]
        if stmt.module:
            base.append(stmt.module)
        return ".".join(base) if base else None

    # ------------------------------------------------------------------
    def all_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()
        for table in self.methods.values():
            yield from table.values()

    def public_names(self) -> set[str]:
        """Exported surface: ``__all__`` when present, else non-underscore defs."""
        if self.all_names is not None:
            return set(self.all_names)
        names = (
            set(self.functions) | set(self.classes) | set(self.globals)
            | set(self.bindings)
        )
        return {n for n in names if not n.startswith("_")}


#: A resolved project symbol: ("function" | "class" | "global" | "module", ...).
SymbolRef = tuple[str, "ModuleInfo", str]


class ProjectContext:
    """Cross-module lookup structures over one set of analyzed modules."""

    def __init__(self, contexts: Iterable[ModuleContext]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_relpath: dict[str, ModuleInfo] = {}
        for context in contexts:
            info = ModuleInfo(module_name_for(context.path), context)
            # First file wins on a (pathological) duplicate module name.
            self.modules.setdefault(info.name, info)
            self.by_relpath[context.relpath] = info
        self._edges_cache: dict[tuple[str, str], list[FunctionInfo]] = {}

    # ------------------------------------------------------------------
    # import graph
    # ------------------------------------------------------------------
    def _internal_module(self, dotted: str | None) -> str | None:
        """Longest analyzed-module prefix of ``dotted`` (or ``None``)."""
        if not dotted:
            return None
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    def imports_of(self, info: ModuleInfo) -> set[str]:
        """Project-internal modules ``info`` imports (direct edges)."""
        out: set[str] = set()
        for node in ast.walk(info.context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = self._internal_module(alias.name)
                    if target is not None:
                        out.add(target)
            elif isinstance(node, ast.ImportFrom):
                base = info._resolve_from(node)
                target = self._internal_module(base)
                if target is not None:
                    out.add(target)
                for alias in node.names:
                    if base and alias.name != "*":
                        sub = self._internal_module(f"{base}.{alias.name}")
                        if sub is not None:
                            out.add(sub)
        out.discard(info.name)
        return out

    def import_graph(self) -> dict[str, set[str]]:
        """Module → set of project-internal modules it imports."""
        return {name: self.imports_of(info) for name, info in self.modules.items()}

    def importer_graph(self) -> dict[str, set[str]]:
        """Module → set of project-internal modules importing it."""
        reverse: dict[str, set[str]] = {name: set() for name in self.modules}
        for name, targets in self.import_graph().items():
            for target in targets:
                reverse[target].add(name)
        return reverse

    # ------------------------------------------------------------------
    # symbol resolution (re-export chains)
    # ------------------------------------------------------------------
    def resolve_symbol(
        self, module: str, name: str, _seen: set[tuple[str, str]] | None = None
    ) -> SymbolRef | None:
        """Defining module of ``module.name``, following re-export chains."""
        seen = _seen if _seen is not None else set()
        if (module, name) in seen:
            return None  # import cycle
        seen.add((module, name))
        info = self.modules.get(module)
        if info is None:
            return None
        if name in info.functions:
            return ("function", info, name)
        if name in info.classes:
            return ("class", info, name)
        if name in info.globals:
            return ("global", info, name)
        binding = info.bindings.get(name)
        if binding is not None:
            target, attr = binding
            if attr is None:
                return ("module", info, target)
            if f"{target}.{attr}" in self.modules:
                return ("module", info, f"{target}.{attr}")
            if target in self.modules:
                return self.resolve_symbol(target, attr, seen)
            return None
        for starred in self.star_exports(info):
            resolved = self.resolve_symbol(starred, name, seen)
            if resolved is not None:
                return resolved
        return None

    def star_exports(self, info: ModuleInfo) -> list[str]:
        return [m for m in info.star_imports if m in self.modules]

    def resolve_function(self, module: str, name: str) -> FunctionInfo | None:
        resolved = self.resolve_symbol(module, name)
        if resolved is None:
            return None
        kind, info, local = resolved
        if kind == "function":
            return info.functions[local]
        if kind == "class":
            # Calling a class invokes its __init__ (when it defines one).
            return self.method_on(info, local, "__init__")
        return None

    def resolve_class(
        self, module: str, name: str
    ) -> tuple[ModuleInfo, ast.ClassDef] | None:
        resolved = self.resolve_symbol(module, name)
        if resolved is None or resolved[0] != "class":
            return None
        _, info, local = resolved
        return (info, info.classes[local])

    # ------------------------------------------------------------------
    # class hierarchy
    # ------------------------------------------------------------------
    def base_classes(
        self, info: ModuleInfo, cls: ast.ClassDef
    ) -> list[tuple[ModuleInfo, ast.ClassDef]]:
        """Direct bases of ``cls`` that resolve to project classes."""
        out = []
        for base in cls.bases:
            if isinstance(base, ast.Name):
                resolved = self.resolve_class(info.name, base.id)
            elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                mod = info.bindings.get(base.value.id)
                if mod is not None and mod[1] is None and mod[0] in self.modules:
                    resolved = self.resolve_class(mod[0], base.attr)
                else:
                    resolved = None
            else:
                resolved = None
            if resolved is not None:
                out.append(resolved)
        return out

    def ancestors(
        self, info: ModuleInfo, cls: ast.ClassDef
    ) -> list[tuple[ModuleInfo, ast.ClassDef]]:
        """All project-resolvable ancestors, nearest first (cycle-safe)."""
        out: list[tuple[ModuleInfo, ast.ClassDef]] = []
        seen: set[tuple[str, str]] = {(info.name, cls.name)}
        frontier = self.base_classes(info, cls)
        while frontier:
            base_info, base_cls = frontier.pop(0)
            key = (base_info.name, base_cls.name)
            if key in seen:
                continue
            seen.add(key)
            out.append((base_info, base_cls))
            frontier.extend(self.base_classes(base_info, base_cls))
        return out

    def is_subclass_of(
        self, info: ModuleInfo, cls: ast.ClassDef, base_name: str
    ) -> bool:
        """Does ``cls`` (transitively) extend a class named ``base_name``?

        Unresolvable bases still count by *name*, so a hierarchy rooted
        outside the analyzed set (e.g. a stdlib base) remains checkable.
        """
        for base in cls.bases:
            if isinstance(base, ast.Name) and base.id == base_name:
                return True
            if isinstance(base, ast.Attribute) and base.attr == base_name:
                return True
        return any(
            base_cls.name == base_name or self.is_subclass_of(base_info, base_cls, base_name)
            for base_info, base_cls in self.base_classes(info, cls)
        )

    def method_on(
        self, info: ModuleInfo, cls_name: str, method: str
    ) -> FunctionInfo | None:
        """Resolve ``cls_name.method`` climbing the hierarchy."""
        cls = info.classes.get(cls_name)
        if cls is None:
            return None
        own = info.methods.get(cls_name, {}).get(method)
        if own is not None:
            return own
        for base_info, base_cls in self.ancestors(info, cls):
            candidate = base_info.methods.get(base_cls.name, {}).get(method)
            if candidate is not None:
                return candidate
        return None

    # ------------------------------------------------------------------
    # conservative call graph
    # ------------------------------------------------------------------
    def visible_classes(
        self, info: ModuleInfo
    ) -> dict[str, tuple[ModuleInfo, ast.ClassDef]]:
        """Classes nameable in ``info``: local plus import-bound ones."""
        out: dict[str, tuple[ModuleInfo, ast.ClassDef]] = {
            name: (info, cls) for name, cls in info.classes.items()
        }
        for local, (target, attr) in info.bindings.items():
            if attr is None or target not in self.modules:
                continue
            resolved = self.resolve_class(target, attr)
            if resolved is not None:
                out.setdefault(local, resolved)
        return out

    def resolve_call(
        self, info: ModuleInfo, call: ast.Call, caller: FunctionInfo | None = None
    ) -> list[FunctionInfo]:
        """Project functions this call may invoke (possibly empty)."""
        func = call.func
        if isinstance(func, ast.Name):
            local = info.functions.get(func.id)
            if local is not None:
                return [local]
            if func.id in info.classes:
                ctor = self.method_on(info, func.id, "__init__")
                return [ctor] if ctor is not None else []
            resolved = self.resolve_function(info.name, func.id)
            return [resolved] if resolved is not None else []
        if not (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)):
            return []
        base, attr = func.value.id, func.attr
        # mod.f() through a module binding.
        binding = info.bindings.get(base)
        if binding is not None and binding[1] is None:
            target = self._internal_module(binding[0])
            if target is not None:
                resolved = self.resolve_function(target, attr)
                return [resolved] if resolved is not None else []
        # self.m() / cls.m() through the class hierarchy.
        if base in ("self", "cls") and caller is not None and caller.cls is not None:
            resolved = self.method_on(info, caller.cls, attr)
            return [resolved] if resolved is not None else []
        # Cls.m() on a visible class name.
        visible = self.visible_classes(info)
        if base in visible:
            cls_info, cls_node = visible[base]
            resolved = self.method_on(cls_info, cls_node.name, attr)
            return [resolved] if resolved is not None else []
        # obj.m(): candidates are visible classes defining the method.
        candidates = []
        for cls_info, cls_node in visible.values():
            resolved = self.method_on(cls_info, cls_node.name, attr)
            if resolved is not None:
                candidates.append(resolved)
        # De-duplicate by definition site.
        unique: dict[tuple[str, str], FunctionInfo] = {
            c.ref: c for c in candidates
        }
        return list(unique.values())

    def callees(self, func: FunctionInfo) -> list[FunctionInfo]:
        """Direct callees of ``func`` (cached; conservative resolution)."""
        cached = self._edges_cache.get(func.ref)
        if cached is not None:
            return cached
        info = self.modules[func.module]
        out: dict[tuple[str, str], FunctionInfo] = {}
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                for target in self.resolve_call(info, node, caller=func):
                    out[target.ref] = target
        edges = list(out.values())
        self._edges_cache[func.ref] = edges
        return edges

    def transitive_callees(self, func: FunctionInfo) -> list[FunctionInfo]:
        """Every project function reachable from ``func`` (excluding it)."""
        seen: set[tuple[str, str]] = {func.ref}
        order: list[FunctionInfo] = []
        frontier = [func]
        while frontier:
            current = frontier.pop(0)
            for callee in self.callees(current):
                if callee.ref in seen:
                    continue
                seen.add(callee.ref)
                order.append(callee)
                frontier.append(callee)
        return order

    # ------------------------------------------------------------------
    # import closures (``repro lint --changed``)
    # ------------------------------------------------------------------
    def import_closure(self, relpaths: Iterable[str]) -> set[str]:
        """Relpaths whose analysis a change to ``relpaths`` can affect.

        The closure is the changed modules, every transitive *importer*
        (their findings may depend on the changed code), and the
        transitive *imports* of that whole set (the context needed to
        analyze them).  Unknown relpaths pass through unchanged.
        """
        changed_modules = {
            self.by_relpath[rp].name for rp in relpaths if rp in self.by_relpath
        }
        importers = self.importer_graph()
        affected = set(changed_modules)
        frontier = list(changed_modules)
        while frontier:
            for importer in importers.get(frontier.pop(), ()):
                if importer not in affected:
                    affected.add(importer)
                    frontier.append(importer)
        imports = self.import_graph()
        closure = set(affected)
        frontier = list(affected)
        while frontier:
            for imported in imports.get(frontier.pop(), ()):
                if imported not in closure:
                    closure.add(imported)
                    frontier.append(imported)
        out = {rp for rp in relpaths if rp not in self.by_relpath}
        for name in closure:
            out.add(self.modules[name].context.relpath)
        return out
