"""RNG provenance rules: every random draw must trace back to a seed.

The reproduction's headline guarantees — ``--jobs N`` bit-identity,
distributed-worker digest equality, rpc-at-zero ≡ instant — all assume
that *every* random draw in the simulated world flows from an injected,
seed-threaded ``random.Random``.  DET001 (module pass) already bans
draws on the process-global ``random`` module; the rules here close the
cross-module holes DET001 cannot see:

* **RNG101** — an RNG constructed without a seed
  (``random.Random()``, ``numpy.random.default_rng()``,
  ``numpy.random.RandomState()``, or any of them seeded with a literal
  ``None``) is seeded from the OS and can never be replayed.
* **RNG102** — a function advertising an ``rng=`` parameter whose body
  — or any *transitive callee*, in any module — still draws from the
  global ``random`` module.  The parameter promises attributable
  randomness; the hidden global draw breaks the promise one call level
  down where the module pass cannot follow.
* **RNG103** — a worker entry point handed to a multiprocessing pool
  (``Pool.map``/``imap*``/``starmap*``/``apply*``, ``Process(target=)``,
  executor ``submit``/``map``) that reads a module-level RNG object
  without reseeding it.  Forked workers inherit the parent's RNG state:
  every worker replays the same stream, and spawn/fork divergence makes
  the sweep's cell results start-method-dependent.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import ModuleContext, ProjectRule, Rule, register_rule
from repro.analysis.determinism import RANDOM_DRAW_FNS
from repro.analysis.findings import Finding
from repro.analysis.project import FunctionInfo, ModuleInfo, ProjectContext

#: Paths whose randomness is not part of simulated behaviour.
RNG_EXEMPT = ("repro/bench", "tests", "benchmarks")

#: Pool/executor dispatch methods whose first argument is a worker entry.
POOL_DISPATCH = frozenset({
    "map", "imap", "imap_unordered", "map_async",
    "starmap", "starmap_async", "apply", "apply_async", "submit",
})


def _numpy_random_attr(ctx: ModuleContext, node: ast.AST, attr: str) -> bool:
    """Does ``node`` denote ``numpy.random.<attr>`` under this module's imports?"""
    # np.random.default_rng(...) via ``import numpy as np``.
    if (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "random"
        and isinstance(node.value.value, ast.Name)
        and ctx.module_aliases.get(node.value.value.id) == "numpy"
    ):
        return True
    # default_rng(...) via ``from numpy.random import default_rng``.
    if isinstance(node, ast.Name):
        return ctx.from_imports.get(node.id) == ("numpy.random", attr)
    # nprandom.default_rng(...) via ``import numpy.random as nprandom``.
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and ctx.module_aliases.get(node.value.id) == "numpy.random"
    )


def rng_constructor_label(ctx: ModuleContext, call: ast.Call) -> str | None:
    """``"random.Random"``-style label when ``call`` constructs an RNG."""
    func = call.func
    if ctx.resolves_to(func, "random", "Random"):
        return "random.Random"
    for attr in ("default_rng", "RandomState"):
        if _numpy_random_attr(ctx, func, attr):
            return f"numpy.random.{attr}"
    return None


def _is_seeded(call: ast.Call) -> bool:
    """A construction with any non-``None`` seed expression counts as seeded."""
    exprs = [*call.args, *[kw.value for kw in call.keywords]]
    if not exprs:
        return False
    return any(
        not (isinstance(e, ast.Constant) and e.value is None) for e in exprs
    )


def _global_draws(
    ctx: ModuleContext, root: ast.AST
) -> Iterator[tuple[ast.Call, str]]:
    """Draws on the process-global ``random`` module under ``root``."""
    random_names = ctx.names_for_module("random")
    for node in ast.walk(root):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in random_names
            and func.attr in RANDOM_DRAW_FNS
        ):
            yield node, f"random.{func.attr}()"
        elif (
            isinstance(func, ast.Name)
            and ctx.from_imports.get(func.id, ("", ""))[0] == "random"
            and ctx.from_imports[func.id][1] in RANDOM_DRAW_FNS
        ):
            yield node, f"random.{ctx.from_imports[func.id][1]}()"


@register_rule
class UnseededRngRule(Rule):
    """RNG101: RNG constructed without a seed expression."""

    id = "RNG101"
    title = "unseeded RNG construction; thread a seed from config/fingerprint"
    exempt = RNG_EXEMPT

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            label = rng_constructor_label(module, node)
            if label is None or _is_seeded(node):
                continue
            yield self.finding(
                module, node,
                f"{label}() constructed without a seed draws OS entropy and "
                "cannot be replayed; thread a seed derived from the "
                "config/fingerprint",
            )


@register_rule
class HiddenGlobalDrawRule(ProjectRule):
    """RNG102: ``rng=`` functions that (transitively) draw global random."""

    id = "RNG102"
    title = "rng= function draws from the global random module (possibly via callees)"
    exempt = RNG_EXEMPT

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        direct: dict[tuple[str, str], list[tuple[ast.Call, str]]] = {}
        for info in project.modules.values():
            for func in info.all_functions():
                draws = list(_global_draws(info.context, func.node))
                if draws:
                    direct[func.ref] = draws
        for info in sorted(project.modules.values(), key=lambda m: m.name):
            for func in sorted(info.all_functions(), key=lambda f: f.qualname):
                if "rng" not in func.param_names():
                    continue
                yield from self._check_function(project, info, func, direct)

    def _check_function(
        self,
        project: ProjectContext,
        info: ModuleInfo,
        func: FunctionInfo,
        direct: dict[tuple[str, str], list[tuple[ast.Call, str]]],
    ) -> Iterator[Finding]:
        own = direct.get(func.ref)
        if own:
            for node, label in own:
                yield self.finding(
                    info.context, node,
                    f"{func.qualname}() takes rng= but draws {label} from the "
                    "process-global RNG; draw from the injected rng instead",
                )
            return
        # Transitive: find the first-hop call that reaches a global draw.
        for call_node, callee in self._first_hops(project, info, func):
            reached = self._reaches_draw(project, callee, direct)
            if reached is not None:
                yield self.finding(
                    info.context, call_node,
                    f"{func.qualname}() takes rng= but its callee "
                    f"{callee.module}.{callee.qualname}() "
                    f"{'draws' if reached == callee.ref else 'transitively draws'} "
                    "from the process-global random module; thread the rng "
                    "through the call chain",
                )

    def _first_hops(
        self, project: ProjectContext, info: ModuleInfo, func: FunctionInfo
    ) -> list[tuple[ast.Call, FunctionInfo]]:
        hops: list[tuple[ast.Call, FunctionInfo]] = []
        seen: set[tuple[str, str]] = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                for target in project.resolve_call(info, node, caller=func):
                    if target.ref not in seen:
                        seen.add(target.ref)
                        hops.append((node, target))
        return hops

    def _reaches_draw(
        self,
        project: ProjectContext,
        start: FunctionInfo,
        direct: dict[tuple[str, str], list[tuple[ast.Call, str]]],
    ) -> tuple[str, str] | None:
        if start.ref in direct:
            return start.ref
        for callee in project.transitive_callees(start):
            if callee.ref in direct:
                return callee.ref
        return None


def _module_rng_globals(info: ModuleInfo) -> dict[str, str]:
    """Module-level names bound to an RNG construction → constructor label."""
    out: dict[str, str] = {}
    for name, value in info.globals.items():
        if isinstance(value, ast.Call):
            label = rng_constructor_label(info.context, value)
            if label is not None:
                out[name] = label
    return out


def _reads_without_reseed(
    func: FunctionInfo, rng_names: dict[str, str]
) -> list[tuple[str, str]]:
    """RNG globals ``func`` reads without ``.seed(...)``/rebinding them."""
    reseeded: set[str] = set()
    read: dict[str, str] = {}
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call):
            f = node.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr == "seed"
                and isinstance(f.value, ast.Name)
                and f.value.id in rng_names
            ):
                reseeded.add(f.value.id)
        elif isinstance(node, ast.Name) and node.id in rng_names:
            if isinstance(node.ctx, ast.Store):
                reseeded.add(node.id)  # local rebinding shadows the global
            else:
                read.setdefault(node.id, rng_names[node.id])
    return sorted((n, label) for n, label in read.items() if n not in reseeded)


@register_rule
class WorkerRngCaptureRule(ProjectRule):
    """RNG103: module-level RNGs captured into worker entry points."""

    id = "RNG103"
    title = "worker entry captures a module-level RNG without per-task reseeding"
    exempt = RNG_EXEMPT

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in sorted(project.modules.values(), key=lambda m: m.name):
            for node in ast.walk(info.context.tree):
                if isinstance(node, ast.Call):
                    yield from self._check_dispatch(project, info, node)

    def _entry_argument(self, call: ast.Call) -> ast.expr | None:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in POOL_DISPATCH:
            return call.args[0] if call.args else None
        # Process(target=f) / Thread(target=f).
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name in ("Process", "Thread"):
            for kw in call.keywords:
                if kw.arg == "target":
                    return kw.value
        return None

    def _check_dispatch(
        self, project: ProjectContext, info: ModuleInfo, call: ast.Call
    ) -> Iterator[Finding]:
        entry_expr = self._entry_argument(call)
        if entry_expr is None:
            return
        entry = self._resolve_entry(project, info, entry_expr)
        if entry is None:
            return
        seen: set[tuple[str, str]] = set()
        for func in [entry, *project.transitive_callees(entry)]:
            if func.ref in seen:
                continue
            seen.add(func.ref)
            func_info = project.modules[func.module]
            captured = _reads_without_reseed(
                func, _module_rng_globals(func_info)
            )
            for name, label in captured:
                where = (
                    "" if func.ref == entry.ref
                    else f" (via {func.module}.{func.qualname}())"
                )
                yield self.finding(
                    info.context, call,
                    f"worker entry {entry.qualname}() captures module-level "
                    f"{label} '{name}'{where} without per-task reseeding; "
                    "derive a fresh RNG from the task's seed instead",
                )

    def _resolve_entry(
        self, project: ProjectContext, info: ModuleInfo, expr: ast.expr
    ) -> FunctionInfo | None:
        if isinstance(expr, ast.Name):
            local = info.functions.get(expr.id)
            if local is not None:
                return local
            return project.resolve_function(info.name, expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            binding = info.bindings.get(expr.value.id)
            if binding is not None and binding[1] is None:
                target = project._internal_module(binding[0])
                if target is not None:
                    return project.resolve_function(target, expr.attr)
        return None
