"""Git-diff-scoped lint runs: the ``repro lint --changed`` resolver.

Pre-commit wants lint latency proportional to the diff, not the repo —
but a *cross-module* analyzer cannot lint changed files in isolation:
editing ``store.py`` can create (or fix) an IO203 finding in
``service.py``.  The correct unit is the changed files' **import
closure**: the changed modules, every transitive importer of them, and
the transitive imports of that whole set (context the project pass
needs), as computed by
:meth:`~repro.analysis.project.ProjectContext.import_closure`.

The changed set itself comes from git, merge-base aware: an explicit
``--changed-base REF`` wins, else the branch's upstream, else
``origin/<default>``, else ``HEAD`` (uncommitted work only).  Untracked
python files count as changed.  When git is unavailable — no binary, no
repository, a timeout — every resolver here returns ``None`` and the
caller falls back to the full tree: degrading to *more* linting is the
only safe direction.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

from repro.analysis.base import ModuleContext
from repro.analysis.project import ProjectContext
from repro.analysis.runner import _relpath, iter_python_files

#: Candidate merge-base refs, tried in order after ``@{upstream}``.
FALLBACK_REFS = ("origin/main", "origin/master", "main", "master")


def _git(args: list[str]) -> str | None:
    """stdout of ``git <args>`` or ``None`` on any failure."""
    try:
        proc = subprocess.run(
            ["git", *args],
            capture_output=True, text=True, check=False, timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def merge_base(base: str | None = None) -> str | None:
    """Ref to diff against: merge-base of HEAD and the comparison branch.

    ``base=None`` auto-detects: the branch upstream when set, then the
    conventional default branches.  Returns ``None`` when nothing
    resolves (fresh repo, detached orphan) — callers then diff against
    ``HEAD``.
    """
    candidates = [base] if base is not None else ["@{upstream}", *FALLBACK_REFS]
    for candidate in candidates:
        out = _git(["merge-base", "HEAD", candidate])
        if out is not None and out.strip():
            return out.strip()
    return None


def changed_files(base: str | None = None) -> list[str] | None:
    """Changed + untracked ``.py`` paths (cwd-relative, sorted).

    ``None`` means git is unavailable and the caller should lint the
    full tree.  Deleted files are excluded (nothing left to lint).
    """
    toplevel = _git(["rev-parse", "--show-toplevel"])
    if toplevel is None:
        return None
    root = Path(toplevel.strip())
    ref = merge_base(base)
    diff = _git(
        ["diff", "--name-only", "--diff-filter=d", ref or "HEAD"]
    )
    if diff is None:
        return None
    untracked = _git(["ls-files", "--others", "--exclude-standard"]) or ""
    out: set[str] = set()
    for line in [*diff.splitlines(), *untracked.splitlines()]:
        name = line.strip()
        if not name or not name.endswith(".py"):
            continue
        path = root / name
        if path.is_file():
            out.add(_relpath(path))
    return sorted(out)


def resolve_changed_paths(
    lint_roots: list[str], base: str | None = None
) -> list[Path] | None:
    """Files to lint for ``--changed``: the diff's import closure.

    The closure is computed over *all* files under ``lint_roots`` (one
    cheap parse pass; no rules run), then intersected back with those
    roots — a changed test file outside the linted tree does not drag
    the tree in.  ``None`` falls back to full-tree linting (no git);
    an empty list means the diff touches nothing the roots cover.
    """
    changed = changed_files(base)
    if changed is None:
        return None
    if not changed:
        return []
    candidates = iter_python_files(lint_roots)
    modules: list[ModuleContext] = []
    for path in candidates:
        try:
            modules.append(ModuleContext(path, _relpath(path), path.read_text()))
        except SyntaxError:
            continue  # still linted below if it is in the changed set
    closure = ProjectContext(modules).import_closure(changed)
    selected = [p for p in candidates if _relpath(p) in closure]
    # A changed-but-unparseable file inside the roots must surface its
    # PARSE finding even though it joined no module graph.
    by_relpath = {_relpath(p) for p in selected}
    for path in candidates:
        if _relpath(path) in set(changed) and _relpath(path) not in by_relpath:
            selected.append(path)
    return sorted(selected)
