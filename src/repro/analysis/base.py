"""Rule framework: module context, rule base class and the registry.

A rule is a small object with an ``id``, a human description and a
``check(module)`` generator over :class:`~repro.analysis.findings.Finding`.
Rules are *pure* — path scoping (which packages a rule patrols) is data
on the rule (:attr:`Rule.applies_to` / :attr:`Rule.exempt`) that the
runner enforces, so tests can point any rule at any fixture file
directly.

:class:`ModuleContext` wraps one parsed source file with the lazy
derived structures every rule wants: a child→parent node map and the
module's import alias tables.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from functools import cached_property
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.analysis.project import ProjectContext


class ModuleContext:
    """One parsed python module plus lazily-built lookup structures."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        #: Path as reported in findings (posix, relative to the lint cwd).
        self.relpath = relpath
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.lines = source.splitlines()

    @cached_property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child node → parent node, for context-sensitive checks."""
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return parents

    @cached_property
    def module_aliases(self) -> dict[str, str]:
        """Local name → imported module (``import random as rnd`` → rnd)."""
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        return aliases

    @cached_property
    def from_imports(self) -> dict[str, tuple[str, str]]:
        """Local name → (module, attr) for ``from module import attr``."""
        imports: dict[str, tuple[str, str]] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    imports[alias.asname or alias.name] = (node.module, alias.name)
        return imports

    # ------------------------------------------------------------------
    def names_for_module(self, module: str) -> set[str]:
        """All local names bound to ``module`` itself."""
        return {name for name, mod in self.module_aliases.items() if mod == module}

    def resolves_to(self, node: ast.AST, module: str, attr: str) -> bool:
        """True when ``node`` denotes ``module.attr`` under this module's imports."""
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            return (
                self.module_aliases.get(node.value.id) == module
                and node.attr == attr
            )
        if isinstance(node, ast.Name):
            return self.from_imports.get(node.id) == (module, attr)
        return False

    def enclosing_statement(self, node: ast.AST) -> ast.stmt:
        """The smallest statement containing ``node``."""
        current = node
        while not isinstance(current, ast.stmt):
            current = self.parents[current]
        return current

    def ancestor_calls(self, node: ast.AST) -> Iterator[ast.Call]:
        """Call nodes on the parent chain, innermost first (statement-bounded)."""
        current = self.parents.get(node)
        while current is not None and not isinstance(current, ast.stmt):
            if isinstance(current, ast.Call):
                yield current
            current = self.parents.get(current)


class Rule:
    """Base class for lint rules; subclass and :func:`register_rule`."""

    #: Short stable identifier, e.g. ``"DET001"``.
    id: str = ""
    #: One-line summary for ``repro lint --list-rules`` and the docs.
    title: str = ""
    #: Path fragments (posix, e.g. ``"repro/simulator"``) the rule patrols;
    #: ``None`` means every linted file.  Enforced by the runner.
    applies_to: tuple[str, ...] | None = None
    #: Path fragments exempt from the rule even when in scope.
    exempt: tuple[str, ...] = ()

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module (no path filtering here)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )

    def in_scope(self, relpath: str) -> bool:
        """Does this rule patrol ``relpath``? (Used by the runner.)"""
        probe = f"/{relpath}"
        if any(f"/{fragment}/" in probe or probe.endswith(f"/{fragment}")
               for fragment in self.exempt):
            return False
        if self.applies_to is None:
            return True
        return any(f"/{fragment}/" in probe for fragment in self.applies_to)


class ProjectRule(Rule):
    """A rule that needs the whole program, not one module.

    Subclasses implement :meth:`check_project` against a built
    :class:`~repro.analysis.project.ProjectContext`; the runner calls it
    once per lint run (after the per-module pass) and applies the same
    path scoping and suppression filtering to the findings it yields —
    scoping keys on each *finding's* path, so a cross-module rule sees
    every analyzed module as context but only reports inside its
    patrolled packages.
    """

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Project rules run in the project pass; the module pass skips them."""
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Yield findings over the whole analyzed module set."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def finding_at(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """Alias of :meth:`Rule.finding` (explicit name for project rules)."""
        return self.finding(module, node, message)


#: Registry: rule id → rule instance (populated by :func:`register_rule`).
_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def _load_shipped_rules() -> None:
    """Import every shipped rule module (registration side effect)."""
    import repro.analysis.determinism  # noqa: F401
    import repro.analysis.event_rules  # noqa: F401
    import repro.analysis.io_rules  # noqa: F401
    import repro.analysis.rng_rules  # noqa: F401


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    _load_shipped_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one registered rule (KeyError with the known ids otherwise)."""
    _load_shipped_rules()

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known rules: {sorted(_REGISTRY)}"
        ) from None
