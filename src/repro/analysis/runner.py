"""Lint runner: collect files, apply rules, filter suppressions/baseline.

:func:`lint_paths` is the single entry point the CLI, the pre-commit
hook and the tests all use.  It is deterministic by construction — the
file list is sorted (the analyzer practices what DET004 preaches) and
findings are reported in (path, line, col, rule) order.

Linting is two passes.  The *module pass* parses every file once and
runs the per-module rules against each
:class:`~repro.analysis.base.ModuleContext`.  The *project pass* then
builds one :class:`~repro.analysis.project.ProjectContext` over all the
parsed modules and runs every
:class:`~repro.analysis.base.ProjectRule` against it — path scoping for
those is applied to each finding's *own* path, so a cross-module rule
sees the whole analyzed set as context but only reports inside the
packages it patrols, and ``# repro: noqa`` suppressions keep working
because the runner kept each file's suppression table from the first
pass.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import ModuleContext, ProjectRule, Rule, all_rules
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.suppressions import Suppressions

#: Rule id used for files that do not parse.
PARSE_ERROR_RULE = "PARSE"

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass
class LintConfig:
    """What to check and how to filter it."""

    #: Rule ids to run (None = all registered rules).
    select: Sequence[str] | None = None
    #: Rule ids to skip.
    ignore: Sequence[str] = ()
    #: Honor each rule's ``applies_to``/``exempt`` path scoping.  Tests
    #: pointing a scoped rule at a fixture file turn this off.
    scoped: bool = True
    #: Baseline of grandfathered findings.
    baseline: Baseline = field(default_factory=Baseline)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: Findings that fail the gate (not suppressed, not grandfathered).
    findings: list[Finding]
    #: Findings matched by the baseline (reported, never failing).
    grandfathered: list[Finding]
    files_checked: int
    #: Reported-path → sha256 of the linted source (for baselines).
    content_hashes: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (set(p.parts) & SKIP_DIRS)
            )
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def _relpath(path: Path) -> str:
    """Path as reported in findings: cwd-relative posix when possible."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def content_hash(source: str) -> str:
    """Rename-stable identity of a linted file (baseline v2 keys)."""
    return hashlib.sha256(source.encode()).hexdigest()


def _select_rules(config: LintConfig) -> list[Rule]:
    rules = all_rules()
    known = {rule.id for rule in rules}
    for rule_id in [*(config.select or ()), *config.ignore]:
        if rule_id not in known:
            raise ValueError(
                f"unknown rule {rule_id!r}; known rules: {sorted(known)}"
            )
    if config.select is not None:
        rules = [rule for rule in rules if rule.id in set(config.select)]
    return [rule for rule in rules if rule.id not in set(config.ignore)]


def _parse(path: Path) -> tuple[ModuleContext | None, Finding | None, str]:
    """(module, parse-error finding, source) for one file."""
    relpath = _relpath(path)
    source = path.read_text()
    try:
        return ModuleContext(path, relpath, source), None, source
    except SyntaxError as exc:
        finding = Finding(
            path=relpath, line=exc.lineno or 1,
            col=(exc.offset or 0) + 1 if exc.offset else 1,
            rule=PARSE_ERROR_RULE, message=f"file does not parse: {exc.msg}",
        )
        return None, finding, source


def _module_pass(
    module: ModuleContext,
    suppressions: Suppressions,
    rules: Sequence[Rule],
    scoped: bool,
) -> list[Finding]:
    findings: list[Finding] = []
    for rule in rules:
        if scoped and not rule.in_scope(module.relpath):
            continue
        findings.extend(
            finding for finding in rule.check(module)
            if not suppressions.is_suppressed(finding)
        )
    return findings


def _project_pass(
    modules: Sequence[ModuleContext],
    suppressions: dict[str, Suppressions],
    rules: Sequence[ProjectRule],
    scoped: bool,
) -> list[Finding]:
    if not rules or not modules:
        return []
    project = ProjectContext(modules)
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check_project(project):
            if scoped and not rule.in_scope(finding.path):
                continue
            table = suppressions.get(finding.path)
            if table is not None and table.is_suppressed(finding):
                continue
            findings.append(finding)
    return findings


def lint_file(
    path: str | Path, rules: Sequence[Rule], scoped: bool = True
) -> list[Finding]:
    """All (unsuppressed) findings for one file, sorted by location.

    Project rules run against a single-module
    :class:`~repro.analysis.project.ProjectContext` — enough for tests
    to point one at a fixture file; cross-module behaviour needs
    :func:`lint_paths` over the whole fixture package.
    """
    module, parse_error, source = _parse(Path(path))
    if module is None:
        return [parse_error] if parse_error is not None else []
    suppressions = Suppressions(source)
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    findings = _module_pass(module, suppressions, module_rules, scoped)
    findings.extend(_project_pass(
        [module], {module.relpath: suppressions}, project_rules, scoped
    ))
    return sorted(findings)


def lint_paths(
    paths: Iterable[str | Path], config: LintConfig | None = None
) -> LintResult:
    """Lint files/directories (both passes) and apply the baseline split."""
    config = config or LintConfig()
    rules = _select_rules(config)
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    files = iter_python_files(paths)

    all_findings: list[Finding] = []
    modules: list[ModuleContext] = []
    suppressions: dict[str, Suppressions] = {}
    hashes: dict[str, str] = {}
    for path in files:
        module, parse_error, source = _parse(path)
        if module is None:
            if parse_error is not None:
                all_findings.append(parse_error)
                hashes[parse_error.path] = content_hash(source)
            continue
        hashes[module.relpath] = content_hash(source)
        table = Suppressions(source)
        suppressions[module.relpath] = table
        modules.append(module)
        all_findings.extend(_module_pass(module, table, module_rules, config.scoped))

    all_findings.extend(
        _project_pass(modules, suppressions, project_rules, config.scoped)
    )
    new, grandfathered = config.baseline.split(sorted(all_findings), hashes)
    return LintResult(
        findings=new, grandfathered=grandfathered,
        files_checked=len(files), content_hashes=hashes,
    )
