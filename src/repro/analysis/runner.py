"""Lint runner: collect files, apply rules, filter suppressions/baseline.

:func:`lint_paths` is the single entry point the CLI, the pre-commit
hook and the tests all use.  It is deterministic by construction — the
file list is sorted (the analyzer practices what DET004 preaches) and
findings are reported in (path, line, col, rule) order.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import ModuleContext, Rule, all_rules
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.suppressions import Suppressions

#: Rule id used for files that do not parse.
PARSE_ERROR_RULE = "PARSE"

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass
class LintConfig:
    """What to check and how to filter it."""

    #: Rule ids to run (None = all registered rules).
    select: Sequence[str] | None = None
    #: Rule ids to skip.
    ignore: Sequence[str] = ()
    #: Honor each rule's ``applies_to``/``exempt`` path scoping.  Tests
    #: pointing a scoped rule at a fixture file turn this off.
    scoped: bool = True
    #: Baseline of grandfathered findings.
    baseline: Baseline = field(default_factory=Baseline)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: Findings that fail the gate (not suppressed, not grandfathered).
    findings: list[Finding]
    #: Findings matched by the baseline (reported, never failing).
    grandfathered: list[Finding]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (set(p.parts) & SKIP_DIRS)
            )
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def _relpath(path: Path) -> str:
    """Path as reported in findings: cwd-relative posix when possible."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _select_rules(config: LintConfig) -> list[Rule]:
    rules = all_rules()
    known = {rule.id for rule in rules}
    for rule_id in [*(config.select or ()), *config.ignore]:
        if rule_id not in known:
            raise ValueError(
                f"unknown rule {rule_id!r}; known rules: {sorted(known)}"
            )
    if config.select is not None:
        rules = [rule for rule in rules if rule.id in set(config.select)]
    return [rule for rule in rules if rule.id not in set(config.ignore)]


def lint_file(
    path: str | Path, rules: Sequence[Rule], scoped: bool = True
) -> list[Finding]:
    """All (unsuppressed) findings for one file, sorted by location."""
    path = Path(path)
    relpath = _relpath(path)
    source = path.read_text()
    try:
        module = ModuleContext(path, relpath, source)
    except SyntaxError as exc:
        return [Finding(
            path=relpath, line=exc.lineno or 1, col=(exc.offset or 0) + 1 if exc.offset else 1,
            rule=PARSE_ERROR_RULE, message=f"file does not parse: {exc.msg}",
        )]
    suppressions = Suppressions(source)
    findings: list[Finding] = []
    for rule in rules:
        if scoped and not rule.in_scope(relpath):
            continue
        findings.extend(
            finding for finding in rule.check(module)
            if not suppressions.is_suppressed(finding)
        )
    return sorted(findings)


def lint_paths(
    paths: Iterable[str | Path], config: LintConfig | None = None
) -> LintResult:
    """Lint files/directories and apply the baseline split."""
    config = config or LintConfig()
    rules = _select_rules(config)
    all_findings: list[Finding] = []
    files = iter_python_files(paths)
    for path in files:
        all_findings.extend(lint_file(path, rules, scoped=config.scoped))
    new, grandfathered = config.baseline.split(sorted(all_findings))
    return LintResult(
        findings=new, grandfathered=grandfathered, files_checked=len(files)
    )
