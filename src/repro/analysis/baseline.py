"""Baseline files: grandfather existing findings, gate only new ones.

A baseline is a committed JSON file mapping finding keys
(``path::rule::message`` — deliberately line-free, so reformatting a
file never un-grandfathers its findings) to occurrence counts.  The
runner subtracts the baseline from the current findings: a key's first
``count`` occurrences are *grandfathered* (reported separately, never
failing), anything beyond is *new* and fails the gate.

Version 2 baselines additionally key every count by the file's
**content hash** (``sha256::rule::message``).  Path keys alone have a
rename hole: move ``store.py`` to ``result_store.py`` and every
grandfathered finding in it resurrects, failing the gate for a diff
that changed nothing — so :meth:`Baseline.split` falls back to the
content key when the path key misses.  The content fallback is bounded
by the same counts (a finding is consumed from whichever key matched),
so duplicating a file never doubles its grandfathered budget.
Version-1 files (no content map) still load.

Workflow::

    repro lint src/repro --baseline lint-baseline.json   # gate
    repro lint src/repro --baseline lint-baseline.json --write-baseline

The repo's committed ``lint-baseline.json`` is **empty** — every
finding in ``src/repro`` was fixed when the analyzer landed, and the
self-lint test (``tests/analysis/test_self_lint.py``) keeps it that
way.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 2


class BaselineError(ValueError):
    """Raised for unreadable or structurally invalid baseline files."""


def _content_key(finding: Finding, digest: str) -> str:
    return f"{digest}::{finding.rule}::{finding.message}"


def _valid_counts(value: object) -> bool:
    return isinstance(value, dict) and all(
        isinstance(v, int) and v >= 0 for v in value.values()
    )


class Baseline:
    """Grandfathered finding counts, keyed by :attr:`Finding.key`.

    ``content_counts`` carries the rename-stable secondary keys
    (``sha256-of-source::rule::message``); it is empty for version-1
    baselines and when the writer had no source hashes.
    """

    def __init__(
        self,
        counts: dict[str, int] | None = None,
        content_counts: dict[str, int] | None = None,
    ) -> None:
        self.counts: Counter[str] = Counter(counts or {})
        self.content_counts: Counter[str] = Counter(content_counts or {})

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        content_hashes: Mapping[str, str] | None = None,
    ) -> Baseline:
        """Baseline grandfathering exactly ``findings``.

        With ``content_hashes`` (reported path → sha256 of the source,
        as produced by the runner) the baseline also records the
        rename-stable content keys.
        """
        findings = list(findings)
        counts = Counter(finding.key for finding in findings)
        content: Counter[str] = Counter()
        for finding in findings:
            digest = (content_hashes or {}).get(finding.path)
            if digest is not None:
                content[_content_key(finding, digest)] += 1
        return cls(counts, content)

    @classmethod
    def load(cls, path: str | Path) -> Baseline:
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise BaselineError(
                f"baseline {path} is not a repro-lint baseline "
                "(expected an object with a 'findings' key)"
            )
        findings = payload["findings"]
        if not _valid_counts(findings):
            raise BaselineError(f"baseline {path} has malformed finding counts")
        content = payload.get("content_findings", {})
        if not _valid_counts(content):
            raise BaselineError(
                f"baseline {path} has malformed content-keyed counts"
            )
        return cls(findings, content)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": dict(sorted(self.counts.items())),
            "content_findings": dict(sorted(self.content_counts.items())),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    # ------------------------------------------------------------------
    def split(
        self,
        findings: Sequence[Finding],
        content_hashes: Mapping[str, str] | None = None,
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, grandfathered), preserving order.

        For each key, the first ``counts[key]`` occurrences (by report
        order, i.e. location) are grandfathered; the rest are new.  A
        finding whose path key misses is retried against its content
        key, so renaming a file keeps its grandfathered budget.
        """
        remaining = Counter(self.counts)
        remaining_content = Counter(self.content_counts)
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            if remaining[finding.key] > 0:
                remaining[finding.key] -= 1
                # Consume the paired content key so a path match and a
                # later content match cannot double-spend one count.
                digest = (content_hashes or {}).get(finding.path)
                if digest is not None:
                    content_key = _content_key(finding, digest)
                    if remaining_content[content_key] > 0:
                        remaining_content[content_key] -= 1
                grandfathered.append(finding)
                continue
            digest = (content_hashes or {}).get(finding.path)
            if digest is not None:
                content_key = _content_key(finding, digest)
                if remaining_content[content_key] > 0:
                    remaining_content[content_key] -= 1
                    grandfathered.append(finding)
                    continue
            new.append(finding)
        return new, grandfathered

    def __len__(self) -> int:
        return sum(self.counts.values())
