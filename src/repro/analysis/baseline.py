"""Baseline files: grandfather existing findings, gate only new ones.

A baseline is a committed JSON file mapping finding keys
(``path::rule::message`` — deliberately line-free, so reformatting a
file never un-grandfathers its findings) to occurrence counts.  The
runner subtracts the baseline from the current findings: a key's first
``count`` occurrences are *grandfathered* (reported separately, never
failing), anything beyond is *new* and fails the gate.

Workflow::

    repro lint src/repro --baseline lint-baseline.json   # gate
    repro lint src/repro --baseline lint-baseline.json --write-baseline

The repo's committed ``lint-baseline.json`` is **empty** — every
finding in ``src/repro`` was fixed when the analyzer landed, and the
self-lint test (``tests/analysis/test_self_lint.py``) keeps it that
way.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Raised for unreadable or structurally invalid baseline files."""


class Baseline:
    """Grandfathered finding counts, keyed by :attr:`Finding.key`."""

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self.counts: Counter[str] = Counter(counts or {})

    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> Baseline:
        return cls(Counter(finding.key for finding in findings))

    @classmethod
    def load(cls, path: str | Path) -> Baseline:
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise BaselineError(
                f"baseline {path} is not a repro-lint baseline "
                "(expected an object with a 'findings' key)"
            )
        findings = payload["findings"]
        if not isinstance(findings, dict) or not all(
            isinstance(v, int) and v >= 0 for v in findings.values()
        ):
            raise BaselineError(f"baseline {path} has malformed finding counts")
        return cls(findings)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": dict(sorted(self.counts.items())),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    # ------------------------------------------------------------------
    def split(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, grandfathered), preserving order.

        For each key, the first ``counts[key]`` occurrences (by report
        order, i.e. location) are grandfathered; the rest are new.
        """
        remaining = Counter(self.counts)
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            if remaining[finding.key] > 0:
                remaining[finding.key] -= 1
                grandfathered.append(finding)
            else:
                new.append(finding)
        return new, grandfathered

    def __len__(self) -> int:
        return sum(self.counts.values())
