"""Suppression comments: ``# repro: noqa[RULE]`` and file-wide variants.

Two forms, mirroring flake8's convention but namespaced so they never
collide with ruff/flake8 directives:

* **line** — ``# repro: noqa`` (all rules) or ``# repro: noqa[DET001]``
  / ``# repro: noqa[DET001,DET003]`` on the physical line a finding is
  reported at (a multi-line statement is suppressed at its first line);
* **file** — ``# repro: noqa-file`` or ``# repro: noqa-file[RULE,...]``
  on a line of its own, anywhere in the file (conventionally at the
  top), suppresses matching findings for the whole module.

An empty bracket list (``# repro: noqa[]``) suppresses nothing — it is
treated as malformed and ignored, so a typo cannot silently disable
every rule.
"""

from __future__ import annotations

import re

from repro.analysis.findings import Finding

_LINE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?\s*(?:#.*)?$")
_FILE = re.compile(r"^\s*#\s*repro:\s*noqa-file(?:\[([A-Za-z0-9_,\s]+)\])?\s*$")


def _rule_set(group: str | None) -> frozenset[str] | None:
    """Bracket contents → rule-id set; ``None`` means "all rules"."""
    if group is None:
        return None
    rules = frozenset(part.strip() for part in group.split(",") if part.strip())
    return rules or frozenset({"<malformed>"})


class Suppressions:
    """Per-file suppression state parsed from source comments."""

    def __init__(self, source: str) -> None:
        #: line number → suppressed rule ids (None = all rules).
        self.by_line: dict[int, frozenset[str] | None] = {}
        #: file-wide suppressed rule ids (None once a bare noqa-file seen).
        self.file_wide: frozenset[str] | None = frozenset()
        suppress_all_file = False
        for lineno, text in enumerate(source.splitlines(), start=1):
            file_match = _FILE.search(text)
            if file_match:
                rules = _rule_set(file_match.group(1))
                if rules is None:
                    suppress_all_file = True
                elif self.file_wide is not None:
                    self.file_wide = self.file_wide | rules
                continue
            line_match = _LINE.search(text)
            if line_match and "noqa-file" not in text:
                self.by_line[lineno] = _rule_set(line_match.group(1))
        if suppress_all_file:
            self.file_wide = None

    def is_suppressed(self, finding: Finding) -> bool:
        if self.file_wide is None or finding.rule in self.file_wide:
            return True
        if finding.line in self.by_line:
            rules = self.by_line[finding.line]
            return rules is None or finding.rule in rules
        return False
