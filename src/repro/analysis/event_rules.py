"""Trace-event schema drift: emitted kinds vs handler tables (EVT301).

The trace layer is a string-keyed schema split across modules: event
classes declare ``kind = "cache_hit"``-style tags in
``repro.trace.events``, while the consumers — the chrome-export
category map, the replay pivot groups, dashboard rollups — each keep a
dict literal keyed by those same strings.  Nothing ties them together
at runtime: add an event kind and forget one table, and the new events
silently fall out of that consumer's output (or a stale key in a table
handles a kind that no longer exists).

EVT301 cross-references them statically.  Pass one collects every
*kind family*: classes in one inheritance hierarchy carrying a
string-constant ``kind`` class attribute (trace events and control
messages form two separate families — they may even share a tag like
``"worker_register"`` without interfering).  Pass two finds *handler
tables*: dict literals whose string keys substantially overlap one
family (at least :data:`MIN_TABLE_KEYS` known kinds, covering at least
:data:`COVERAGE` of both the table and the family).  A matched table
missing a kind — or carrying a key no class defines — is schema drift.

The coverage threshold is what keeps intent legible: a dict that
handles three of sixteen kinds is a deliberate subset and is ignored;
a dict that handles fifteen of sixteen is a complete table with a hole
in it, which is exactly the bug this rule exists to catch.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.base import ProjectRule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, ProjectContext

#: A dict literal must contain at least this many known kinds to count
#: as a handler table (small mappings are never schema mirrors).
MIN_TABLE_KEYS = 3

#: …and known kinds must cover this fraction of the table's keys *and*
#: of the family, in both directions.
COVERAGE = 0.8


@dataclass
class KindFamily:
    """One inheritance hierarchy of kind-tagged classes."""

    #: Root class name (e.g. ``"TraceEvent"``) — names the family.
    root: str
    #: kind string → defining module.
    kinds: dict[str, str]


@dataclass
class HandlerTable:
    """One dict literal keyed (mostly) by event-kind strings."""

    info: ModuleInfo
    #: Assigned name when the dict binds one (``EVENT_GROUPS``), else a
    #: location-derived placeholder.
    name: str
    node: ast.Dict
    keys: set[str]


def _class_kind(cls: ast.ClassDef) -> str | None:
    """The class-body ``kind = "..."`` constant, when present."""
    for stmt in cls.body:
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "kind" for t in stmt.targets):
                value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "kind":
                value = stmt.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value
    return None


def _family_root(project: ProjectContext, info: ModuleInfo, cls: ast.ClassDef) -> str:
    """Topmost project-resolvable ancestor name (the family label)."""
    chain = project.ancestors(info, cls)
    if chain:
        return chain[-1][1].name
    for base in cls.bases:
        if isinstance(base, ast.Name):
            return base.id
        if isinstance(base, ast.Attribute):
            return base.attr
    return cls.name


def collect_families(project: ProjectContext) -> list[KindFamily]:
    """Kind-tagged class hierarchies across the analyzed modules.

    A family-root class's own ``kind`` (``TraceEvent.kind = "event"``)
    is an abstract placeholder every concrete subclass overrides, not an
    emitted kind — it is dropped whenever the family has other members.
    """
    by_root: dict[str, KindFamily] = {}
    root_kinds: dict[str, tuple[str, str]] = {}
    for name in sorted(project.modules):
        info = project.modules[name]
        for cls in info.classes.values():
            kind = _class_kind(cls)
            if kind is None:
                continue
            root = _family_root(project, info, cls)
            family = by_root.setdefault(root, KindFamily(root, {}))
            if cls.name == root:
                root_kinds.setdefault(root, (kind, info.name))
                continue
            family.kinds.setdefault(kind, info.name)
    for root, family in by_root.items():
        if not family.kinds and root in root_kinds:
            kind, module = root_kinds[root]
            family.kinds[kind] = module
    return [f for f in by_root.values() if len(f.kinds) >= MIN_TABLE_KEYS]


def _dict_string_keys(node: ast.Dict) -> set[str] | None:
    """All keys when every non-spread key is a string constant."""
    keys: set[str] = set()
    for key in node.keys:
        if key is None:  # **spread — contents unknowable, skip the table
            return None
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.add(key.value)
    return keys


def collect_tables(info: ModuleInfo) -> Iterator[HandlerTable]:
    """String-keyed dict literals anywhere in the module (named if bound)."""
    for node in ast.walk(info.context.tree):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Dict):
            continue
        keys = _dict_string_keys(value)
        if not keys:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        names += [t.attr for t in targets if isinstance(t, ast.Attribute)]
        name = names[0] if names else f"<dict at line {value.lineno}>"
        yield HandlerTable(info, name, value, keys)


def _match(table: HandlerTable, family: KindFamily) -> int | None:
    """Intersection size when ``table`` mirrors ``family``, else ``None``."""
    known = table.keys & set(family.kinds)
    if len(known) < MIN_TABLE_KEYS:
        return None
    if len(known) < COVERAGE * len(table.keys):
        return None
    if len(known) < COVERAGE * len(family.kinds):
        return None
    return len(known)


@register_rule
class EventTableDriftRule(ProjectRule):
    """EVT301: handler table out of sync with its kind family."""

    id = "EVT301"
    title = "event handler table misses (or invents) a declared event kind"
    exempt = ("tests", "benchmarks")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        families = collect_families(project)
        if not families:
            return
        for name in sorted(project.modules):
            info = project.modules[name]
            for table in collect_tables(info):
                family = self._best_family(table, families)
                if family is None:
                    continue
                yield from self._drift(table, family)

    def _best_family(
        self, table: HandlerTable, families: list[KindFamily]
    ) -> KindFamily | None:
        best: KindFamily | None = None
        best_score = -1
        for family in families:
            score = _match(table, family)
            if score is not None and score > best_score:
                best, best_score = family, score
        return best

    def _drift(self, table: HandlerTable, family: KindFamily) -> Iterator[Finding]:
        for kind in sorted(set(family.kinds) - table.keys):
            yield self.finding(
                table.info.context, table.node,
                f"table '{table.name}' handles {family.root} kinds but misses "
                f"'{kind}' (declared in {family.kinds[kind]}); events of that "
                "kind silently fall out of this consumer",
            )
        for key in sorted(table.keys - set(family.kinds)):
            yield self.finding(
                table.info.context, table.node,
                f"table '{table.name}' handles kind '{key}' that no "
                f"{family.root} class declares; the entry is dead (or the "
                "kind was renamed without updating this table)",
            )
