"""Content-addressed, resumable on-disk store for sweep results.

Layout under one root directory::

    <root>/
      cells/<fingerprint>.json     one CellResult per completed cell
      profiles/<fingerprint>/      per-cell ProfileStore directory

Every completed cell — success *or* failure — is written atomically
(temp file + ``os.replace``) the moment it finishes, so a sweep killed
mid-flight leaves only whole result files behind and the next run
resumes from them.  A cell's file name is its config fingerprint
(:meth:`repro.sweep.spec.CellSpec.fingerprint`): re-running a sweep
recomputes exactly the cells whose configuration changed and serves the
rest from disk.  Unreadable result files are treated as absent (the
cell recomputes), mirroring :class:`~repro.core.app_profiler.ProfileStore`'s
log-and-ignore contract.

Profile directories are per-fingerprint on purpose: MRD's recurring
mode trusts whatever :class:`ProfileStore` serves for an application
signature, and workload signatures do not encode scale/iterations — so
two configurations sharing one store path silently contaminate each
other (the regression test in ``tests/sweep/test_profile_isolation.py``
demonstrates it).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import shutil
import tempfile
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.simulator.metrics import RunMetrics
from repro.simulator.reporting import metrics_from_dict

logger = logging.getLogger(__name__)

#: CellResult completion states.
STATUS_OK = "ok"
STATUS_ERROR = "error"


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Publish ``text`` to ``path`` whole-file-or-nothing.

    The store's one write idiom, shared by every producer of files under
    a (possibly NFS-shared) store root: write a ``mkstemp`` sibling in
    the destination directory, then ``os.replace`` onto the final name —
    readers observe the old bytes or the new bytes, never a torn file
    (IO201).  The temp file is unlinked on any failure.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return path


@dataclass
class CellResult:
    """Outcome of one sweep cell: metrics on success, error otherwise."""

    fingerprint: str
    spec: dict
    status: str
    #: ``metrics_to_dict`` payload when ``status == "ok"``.
    metrics: dict | None = None
    #: ``{"type", "message", "traceback"}`` when ``status == "error"``.
    error: dict | None = None
    #: Wall-clock compute time (informational; excluded from identity).
    elapsed_s: float = 0.0
    #: True when this result was served from the store, not computed.
    #: Runtime-only — not persisted.
    cached: bool = field(default=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def run_metrics(self) -> RunMetrics:
        """Full :class:`RunMetrics` object (successful cells only)."""
        if not self.ok or self.metrics is None:
            raise ValueError(
                f"cell {self.fingerprint} has no metrics (status={self.status})"
            )
        return metrics_from_dict(self.metrics)

    def describe_error(self) -> str:
        """One-line error summary (``-`` for successful cells)."""
        if self.error is None:
            return "-"
        return f"{self.error.get('type', 'Error')}: {self.error.get('message', '')}"

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "spec": self.spec,
            "status": self.status,
            "metrics": self.metrics,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_json(cls, data: dict) -> CellResult:
        return cls(
            fingerprint=data["fingerprint"],
            spec=data["spec"],
            status=data["status"],
            metrics=data.get("metrics"),
            error=data.get("error"),
            elapsed_s=data.get("elapsed_s", 0.0),
        )


class ResultStore:
    """Fingerprint-keyed result files plus per-cell profile directories."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.cells_dir = self.root / "cells"
        self.profiles_dir = self.root / "profiles"

    # ------------------------------------------------------------------
    def cell_path(self, fingerprint: str) -> Path:
        return self.cells_dir / f"{fingerprint}.json"

    def profile_path(self, fingerprint: str) -> Path:
        """Isolated ProfileStore file for one cell (directory created)."""
        cell_dir = self.profiles_dir / fingerprint
        cell_dir.mkdir(parents=True, exist_ok=True)
        return cell_dir / "profiles.json"

    # ------------------------------------------------------------------
    def reset_profiles(self, fingerprint: str) -> bool:
        """Purge a cell's ``profiles/<fingerprint>/`` directory.

        Called whenever a cell is about to *recompute* (``--no-resume``,
        a stored error retrying, a reclaimed lease): a cell result must
        be a pure function of its spec, but MRD's recurring mode reads
        whatever profile the per-cell store already holds — so a profile
        left behind by an earlier run of the same fingerprint would leak
        into the fresh run and change its metrics.  Returns ``True``
        when something was removed.
        """
        cell_dir = self.profiles_dir / fingerprint
        if not cell_dir.exists():
            return False
        shutil.rmtree(cell_dir, ignore_errors=True)
        return True

    def reset_cell(self, fingerprint: str) -> None:
        """Forget one cell entirely: its result file and its profiles."""
        with contextlib.suppress(FileNotFoundError):
            self.cell_path(fingerprint).unlink()
        self.reset_profiles(fingerprint)

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> CellResult | None:
        """Stored result, or ``None`` when absent/unreadable."""
        path = self.cell_path(fingerprint)
        try:
            data = json.loads(path.read_text())
            result = CellResult.from_json(data)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            logger.warning(
                "ignoring unreadable sweep result %s (%s: %s); "
                "the cell will be recomputed",
                path, type(exc).__name__, exc,
            )
            return None
        if result.fingerprint != fingerprint:
            logger.warning(
                "sweep result %s holds fingerprint %s; recomputing",
                path, result.fingerprint,
            )
            return None
        return result

    def put(self, result: CellResult) -> Path:
        """Atomically persist one result (whole file or nothing)."""
        return atomic_write_text(
            self.cell_path(result.fingerprint),
            json.dumps(result.to_json(), sort_keys=True),
        )

    # ------------------------------------------------------------------
    def fingerprints(self) -> list[str]:
        """Fingerprints with a stored result file, in sorted order.

        Sorted explicitly (DET004): ``Path.glob`` yields directory order,
        which depends on the filesystem and on cell completion order —
        resume behaviour must not.
        """
        if not self.cells_dir.is_dir():
            return []
        return sorted(p.stem for p in self.cells_dir.glob("*.json"))

    def content_digest(self) -> str:
        """SHA-256 over every stored result's *identity-bearing* content.

        Two stores holding the same results have the same digest no
        matter which machines computed the cells, in what order, or how
        long each took: ``elapsed_s`` is wall-clock and explicitly
        excluded from identity (see :class:`CellResult`).  This is the
        equality the distributed-sweep guardrail asserts — N workers
        over a shared store must digest identically to ``--jobs 1``.
        """
        h = hashlib.sha256()
        for result in self:
            payload = result.to_json()
            payload.pop("elapsed_s", None)
            h.update(result.fingerprint.encode())
            h.update(json.dumps(payload, sort_keys=True).encode())
        return h.hexdigest()

    def __len__(self) -> int:
        return len(self.fingerprints())

    def __iter__(self) -> Iterator[CellResult]:
        for fingerprint in self.fingerprints():
            result = self.get(fingerprint)
            if result is not None:
                yield result
