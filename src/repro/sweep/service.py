"""Distributed sweep service: lease-based cell claiming over a shared store.

One :class:`~repro.sweep.store.ResultStore` directory — local disk or a
network filesystem — becomes a work queue that any number of worker
processes on any number of machines drain concurrently:

* **Manifest** (``grid.json``) — the cell list, published atomically by
  whichever coordinator or worker knows the grid, so late-joining
  workers and the dashboard need no CLI flags beyond ``--store``.
* **Leases** (``leases/<fingerprint>.json``) — a worker claims a cell
  by creating its lease file with ``O_CREAT | O_EXCL`` (atomic on POSIX
  filesystems, including NFS for *create*), heartbeats it by refreshing
  the file's mtime while the cell runs, and releases it after
  committing the result.  A lease whose mtime is older than the TTL is
  *stale* — its worker crashed or lost the filesystem — and any worker
  may reclaim it: rename the stale file to a private name (only one
  renamer can win; rename of a vanished source fails), delete it, and
  claim fresh.
* **Settlement** — the store's atomic ``cells/<fingerprint>.json``
  commit remains the single settlement point.  Workers re-check the
  store *after* acquiring a lease and never recompute a settled cell,
  so a reclaim that raced an about-to-commit worker costs at most one
  redundant execution of a deterministic cell — identical bytes, never
  a conflicting result.
* **Worker registry** (``workers/<worker-id>.json``) — per-worker
  heartbeat files carrying progress counters; their mtime age is the
  liveness signal the dashboard (:mod:`repro.sweep.dashboard`) shows.

:func:`run_worker` is the lease-loop behind ``repro sweep --worker``;
``run_cells(..., external=True)`` is the matching coordinator half.
The guardrail (``tests/sweep/test_service.py``): N concurrent workers
over one shared store produce a ResultStore whose
:meth:`~repro.sweep.store.ResultStore.content_digest` is identical to
a serial ``--jobs 1`` run, with zero duplicated cell executions.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import socket
import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.sweep.runner import run_cell
from repro.sweep.spec import CellSpec
from repro.sweep.store import CellResult, ResultStore, atomic_write_text

logger = logging.getLogger(__name__)

#: Bump when the manifest layout changes (stale manifests are rejected).
MANIFEST_VERSION = 1

#: A lease whose mtime is older than this is presumed crashed.
DEFAULT_LEASE_TTL_S = 60.0

#: How often a busy worker refreshes its lease + registry mtimes.
DEFAULT_HEARTBEAT_S = 5.0

#: How long an idle worker sleeps before re-scanning for claimable cells.
DEFAULT_POLL_S = 0.5


def default_worker_id() -> str:
    """``<hostname>-<pid>``: unique across the fleet, stable per process."""
    host = socket.gethostname() or "worker"
    safe = "".join(c if (c.isalnum() or c in "-_.") else "-" for c in host)
    return f"{safe}-{os.getpid()}"


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Whole-file-or-nothing JSON write (same discipline as the store)."""
    atomic_write_text(path, json.dumps(payload, sort_keys=True))


def _acquire_guard(guard: Path, ttl_s: float, poll_s: float = 0.05) -> None:
    """Take an ``os.mkdir`` mutual-exclusion lock, expiring stale holders.

    ``mkdir`` is atomic on POSIX filesystems (NFS included), so exactly
    one contender wins each round; a guard directory older than
    ``ttl_s`` belonged to a crashed process and is retired, same as a
    stale lease.
    """
    while True:
        try:
            os.mkdir(guard)
            return
        except FileExistsError:
            with contextlib.suppress(OSError):
                if time.time() - guard.stat().st_mtime > ttl_s:
                    os.rmdir(guard)
                    continue
            time.sleep(poll_s)


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
def manifest_path(store: ResultStore) -> Path:
    return store.root / "grid.json"


def publish_manifest(store: ResultStore, cells: Sequence[CellSpec]) -> Path:
    """Merge ``cells`` into the store's ``grid.json`` (atomic, idempotent).

    Merging (rather than overwriting) lets several coordinators point
    different grids at one store; cells are keyed and sorted by
    fingerprint so republishing an unchanged grid is a byte-identical
    rewrite.  The read-merge-write runs under an ``os.mkdir`` guard
    (IO203): two coordinators publishing different grids concurrently
    would otherwise each read the old manifest and the second
    ``os.replace`` would silently drop the first's cells.
    """
    path = manifest_path(store)
    store.root.mkdir(parents=True, exist_ok=True)
    guard = store.root / ".grid.lock"
    _acquire_guard(guard, DEFAULT_LEASE_TTL_S)
    try:
        by_fingerprint: dict[str, dict] = {
            cell.fingerprint(): cell.to_dict() for cell in load_manifest(store)
        }
        for cell in cells:
            by_fingerprint[cell.fingerprint()] = cell.to_dict()
        payload = {
            "version": MANIFEST_VERSION,
            "cells": [by_fingerprint[fp] for fp in sorted(by_fingerprint)],
        }
        _atomic_write_json(path, payload)
    finally:
        with contextlib.suppress(OSError):
            os.rmdir(guard)
    return path


def load_manifest(store: ResultStore) -> list[CellSpec]:
    """Cells published into the store, fingerprint-sorted ([] when none)."""
    path = manifest_path(store)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        return []
    except (OSError, ValueError) as exc:
        logger.warning("ignoring unreadable manifest %s (%s)", path, exc)
        return []
    if not isinstance(data, dict) or data.get("version") != MANIFEST_VERSION:
        logger.warning("ignoring manifest %s with unknown version", path)
        return []
    try:
        return [CellSpec.from_dict(spec) for spec in data.get("cells", [])]
    except (TypeError, ValueError, KeyError) as exc:
        logger.warning("ignoring malformed manifest %s (%s)", path, exc)
        return []


# ----------------------------------------------------------------------
# leases
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LeaseInfo:
    """One live (or stale) lease file, as observed on disk."""

    fingerprint: str
    worker: str
    #: Seconds since the last heartbeat (mtime age at observation time).
    age_s: float

    def stale(self, ttl_s: float) -> bool:
        return self.age_s > ttl_s


class LeaseManager:
    """Fingerprint-keyed lease files under ``<store>/leases/``.

    Claiming is an atomic ``O_CREAT | O_EXCL`` create; liveness is the
    file's mtime, refreshed by :meth:`refresh` while the cell runs;
    expiry is mtime age beyond ``ttl_s``; reclaim is an atomic rename
    (exactly one contender's rename of the stale file can succeed).
    """

    def __init__(
        self,
        store: ResultStore,
        worker_id: str,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl_s}")
        self.store = store
        self.worker_id = worker_id
        self.ttl_s = ttl_s
        self.leases_dir = store.root / "leases"

    def lease_path(self, fingerprint: str) -> Path:
        return self.leases_dir / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    def acquire(self, fingerprint: str) -> bool:
        """Try to claim one cell; reclaim its lease first if stale."""
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        path = self.lease_path(fingerprint)
        if self._try_create(path, fingerprint):
            return True
        info = self.inspect(fingerprint)
        if info is None:
            # Raced a release/reclaim; one fresh attempt.
            return self._try_create(path, fingerprint)
        if not info.stale(self.ttl_s):
            return False
        if not self._reclaim(path, fingerprint, info):
            return False
        return self._try_create(path, fingerprint)

    def _try_create(self, path: Path, fingerprint: str) -> bool:
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(
                {"fingerprint": fingerprint, "worker": self.worker_id},
                sort_keys=True,
            ))
        return True

    def _reclaim(self, path: Path, fingerprint: str, info: LeaseInfo) -> bool:
        """Retire a stale lease (one winner across the fleet).

        Reclaims are serialized per cell through an atomic ``mkdir``
        guard, and staleness is re-checked *under* the guard.  Without
        it there is a race: contender A observes the stale mtime, the
        reclaim winner deletes the file and claims fresh, and A's
        rename then steals the brand-new lease — two claimants.  While
        the guard is held the lease file keeps existing (rename happens
        last), so no contender can slip a fresh create underneath the
        re-check.
        """
        guard = self.leases_dir / f".reclaim-{fingerprint}.lock"
        try:
            os.mkdir(guard)
        except FileExistsError:
            # Another worker is mid-reclaim.  If *it* crashed in this
            # tiny window, expire its guard like any other lease.
            with contextlib.suppress(OSError):
                if time.time() - guard.stat().st_mtime > self.ttl_s:
                    os.rmdir(guard)
            return False
        except OSError:
            return False
        try:
            current = self.inspect(fingerprint)
            if current is None or not current.stale(self.ttl_s):
                return False  # released or re-claimed while we raced here
            tomb = self.leases_dir / f".reclaim-{fingerprint}-{self.worker_id}.tmp"
            try:
                os.rename(path, tomb)
            except OSError:
                return False
            with contextlib.suppress(OSError):
                os.unlink(tomb)
            logger.warning(
                "reclaimed stale lease on %s held by %s (%.1fs since heartbeat)",
                fingerprint, current.worker, current.age_s,
            )
            return True
        finally:
            with contextlib.suppress(OSError):
                os.rmdir(guard)

    # ------------------------------------------------------------------
    def refresh(self, fingerprint: str) -> bool:
        """Heartbeat: bump the lease mtime.  False when the lease vanished."""
        try:
            os.utime(self.lease_path(fingerprint))
        except OSError:
            return False
        return True

    def release(self, fingerprint: str) -> None:
        with contextlib.suppress(FileNotFoundError, OSError):
            self.lease_path(fingerprint).unlink()

    # ------------------------------------------------------------------
    def inspect(self, fingerprint: str) -> LeaseInfo | None:
        """The lease on one cell as observed on disk, or ``None``."""
        path = self.lease_path(fingerprint)
        try:
            # One fd for both stat and content: a rename-and-recreate
            # racing this read must not pair an old mtime with new data.
            with open(path) as fh:
                stat = os.fstat(fh.fileno())
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        return LeaseInfo(
            fingerprint=fingerprint,
            worker=str(data.get("worker", "?")) if isinstance(data, dict) else "?",
            age_s=max(time.time() - stat.st_mtime, 0.0),
        )

    def live_leases(self) -> list[LeaseInfo]:
        """Every lease on disk, fingerprint-sorted (stale ones included)."""
        if not self.leases_dir.is_dir():
            return []
        fingerprints = sorted(
            p.stem for p in self.leases_dir.glob("*.json")
            if not p.name.startswith(".")
        )
        infos = (self.inspect(fp) for fp in fingerprints)
        return [info for info in infos if info is not None]


# ----------------------------------------------------------------------
# worker registry (dashboard liveness)
# ----------------------------------------------------------------------
def workers_dir(store: ResultStore) -> Path:
    return store.root / "workers"


def write_worker_heartbeat(
    store: ResultStore,
    worker_id: str,
    executed: int = 0,
    errors: int = 0,
    current: str | None = None,
) -> Path:
    """Refresh this worker's registry entry (mtime is the liveness signal)."""
    path = workers_dir(store) / f"{worker_id}.json"
    _atomic_write_json(path, {
        "worker": worker_id,
        "executed": executed,
        "errors": errors,
        "current": current,
    })
    return path


def read_workers(store: ResultStore) -> list[dict]:
    """Registry entries plus mtime age, worker-id-sorted."""
    directory = workers_dir(store)
    if not directory.is_dir():
        return []
    out = []
    for path in sorted(directory.glob("*.json")):
        try:
            stat = path.stat()
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(data, dict):
            continue
        data["age_s"] = max(time.time() - stat.st_mtime, 0.0)
        out.append(data)
    return out


class _Heartbeat(threading.Thread):
    """Background mtime refresher for the lease + registry of a busy worker."""

    def __init__(
        self,
        leases: LeaseManager,
        store: ResultStore,
        fingerprint: str,
        interval_s: float,
        executed: int,
        errors: int,
    ) -> None:
        super().__init__(daemon=True, name=f"lease-heartbeat-{fingerprint}")
        self._leases = leases
        self._store = store
        self._fingerprint = fingerprint
        self._interval_s = interval_s
        self._executed = executed
        self._errors = errors
        # Not named _stop: threading.Thread claims that attribute.
        self._halt = threading.Event()

    def run(self) -> None:  # pragma: no cover - timing-dependent loop body
        while not self._halt.wait(self._interval_s):
            if not self._leases.refresh(self._fingerprint):
                logger.warning(
                    "lease on %s vanished mid-run (reclaimed as stale?); "
                    "the result commit stays safe — settlement is atomic",
                    self._fingerprint,
                )
            write_worker_heartbeat(
                self._store, self._leases.worker_id,
                executed=self._executed, errors=self._errors,
                current=self._fingerprint,
            )

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


# ----------------------------------------------------------------------
# the worker loop
# ----------------------------------------------------------------------
@dataclass
class WorkerSummary:
    """What one :func:`run_worker` invocation did."""

    worker_id: str
    #: Cells this worker executed (split into successes and errors).
    executed: int = 0
    errors: int = 0
    #: Cells found already settled (by this or another worker).
    settled_elsewhere: int = 0
    #: Stale leases this worker reclaimed.
    reclaimed: int = 0
    elapsed_s: float = 0.0
    drained: bool = False
    _error_labels: list[str] = field(default_factory=list, repr=False)

    def stats_line(self) -> str:
        """`worker w1: 5 executed (1 error), 11 settled elsewhere in 3.2s`."""
        return (
            f"worker {self.worker_id}: {self.executed} executed "
            f"({self.errors} error{'s' if self.errors != 1 else ''}), "
            f"{self.settled_elsewhere} settled elsewhere "
            f"in {self.elapsed_s:.1f}s"
        )


def run_worker(
    store: ResultStore | str | Path,
    cells: Sequence[CellSpec] | None = None,
    worker_id: str | None = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    poll_s: float = DEFAULT_POLL_S,
    max_cells: int | None = None,
    timeout_s: float | None = None,
    progress: Callable[[CellResult], None] | None = None,
) -> WorkerSummary:
    """Lease-loop until the grid is drained (or ``max_cells`` is hit).

    ``cells=None`` reads the grid from the store's published manifest —
    the normal fleet deployment: one coordinator publishes, N machines
    run ``repro sweep --worker --store <shared-dir>``.  When ``cells``
    is given it is merged into the manifest first.

    Drain discipline: a cell with *any* stored result — success or
    error — is settled; errors stored *before* this worker started are
    retried once (their profile directory purged so the retry starts
    cold), because a crash is not a cacheable fact about the
    configuration, but errors committed during the session are final
    for every live worker, so a deterministically-failing cell cannot
    ping-pong between workers forever.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    worker_id = worker_id or default_worker_id()
    if cells is not None:
        publish_manifest(store, cells)
    grid = load_manifest(store)
    if not grid:
        raise ValueError(
            f"no grid to drain: {manifest_path(store)} is missing or empty "
            "(publish one by passing cells, or run a coordinator first)"
        )

    leases = LeaseManager(store, worker_id, ttl_s=lease_ttl_s)
    summary = WorkerSummary(worker_id=worker_id)
    start = time.perf_counter()
    # Errors already on disk when we started: retry candidates (once).
    retryable = {
        cell.fingerprint()
        for cell in grid
        if (stored := store.get(cell.fingerprint())) is not None and not stored.ok
    }
    write_worker_heartbeat(store, worker_id)

    pending = list(grid)  # manifest cells are fingerprint-unique and sorted
    while pending:
        made_progress = False
        still_pending: list[CellSpec] = []
        for cell in pending:
            if max_cells is not None and summary.executed >= max_cells:
                break
            fingerprint = cell.fingerprint()
            stored = store.get(fingerprint)
            if stored is not None and fingerprint not in retryable:
                summary.settled_elsewhere += 1
                made_progress = True
                continue
            lease_existed = leases.lease_path(fingerprint).exists()
            if not leases.acquire(fingerprint):
                still_pending.append(cell)
                continue
            if lease_existed:
                summary.reclaimed += 1
            try:
                # Re-check under the lease: another worker may have
                # settled (or retried) the cell while we raced for it.
                stored = store.get(fingerprint)
                if stored is not None and fingerprint not in retryable:
                    summary.settled_elsewhere += 1
                    made_progress = True
                    continue
                retryable.discard(fingerprint)
                # Recompute = reset: purge any stale profile directory
                # so the run starts cold (pure function of the spec).
                store.reset_profiles(fingerprint)
                profile_path = (
                    str(store.profile_path(fingerprint))
                    if cell.profile_store else None
                )
                heartbeat = _Heartbeat(
                    leases, store, fingerprint, heartbeat_s,
                    summary.executed, summary.errors,
                )
                heartbeat.start()
                try:
                    result = run_cell(cell, profile_path)
                finally:
                    heartbeat.stop()
                store.put(result)
                summary.executed += 1
                if not result.ok:
                    summary.errors += 1
                    summary._error_labels.append(cell.label())
                made_progress = True
                write_worker_heartbeat(
                    store, worker_id,
                    executed=summary.executed, errors=summary.errors,
                )
                if progress is not None:
                    progress(result)
            finally:
                leases.release(fingerprint)
        else:
            pending = still_pending
            if pending and not made_progress:
                if (
                    timeout_s is not None
                    and time.perf_counter() - start > timeout_s
                ):
                    raise TimeoutError(
                        f"worker {worker_id} stalled for {timeout_s:g}s with "
                        f"{len(pending)} cell(s) leased elsewhere"
                    )
                time.sleep(poll_s)
            continue
        break  # max_cells reached

    summary.drained = not pending
    summary.elapsed_s = time.perf_counter() - start
    write_worker_heartbeat(
        store, worker_id,
        executed=summary.executed, errors=summary.errors,
    )
    return summary


__all__ = [
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_POLL_S",
    "MANIFEST_VERSION",
    "LeaseInfo",
    "LeaseManager",
    "WorkerSummary",
    "default_worker_id",
    "load_manifest",
    "manifest_path",
    "publish_manifest",
    "read_workers",
    "run_worker",
    "workers_dir",
    "write_worker_heartbeat",
]
