"""Deterministic parallel sweep runner with a resumable result store.

The paper's evaluation is a grid — workloads × policies × cache sizes ×
modes — and this package is the layer that makes that grid cheap to
(re-)run:

* :mod:`repro.sweep.spec` — declarative grids (:class:`GridSpec`) that
  expand into content-addressed cells (:class:`CellSpec`).
* :mod:`repro.sweep.schemes` — picklable scheme descriptions
  (:class:`SchemeSpec`) so cells can cross process boundaries.
* :mod:`repro.sweep.runner` — :func:`run_cells`: a multiprocessing
  fan-out with per-cell failure isolation and bit-identical results at
  any ``jobs`` count.
* :mod:`repro.sweep.store` — :class:`ResultStore`: atomic per-cell
  result files keyed by config fingerprint, giving resume-after-
  interrupt and zero recomputation for unchanged cells.
* :mod:`repro.sweep.service` — the distributed sweep service:
  :func:`run_worker` lease-loops (atomic lease files with heartbeats
  and stale-lease reclaim) so any number of machines drain one shared
  store, and ``run_cells(..., external=True)`` is the coordinator that
  publishes a grid and waits for the fleet.
* :mod:`repro.sweep.dashboard` — the live results dashboard:
  :func:`dashboard_payload` / :func:`render_html` regenerate a
  JSON + HTML view (progress, per-cell status, worker liveness, ETA,
  per-axis pivots) from nothing but the store directory.
* :mod:`repro.sweep.progress` — :class:`SweepProgress`, the stderr
  progress callback with a clamped, never-``inf`` ETA.

The experiment drivers (``repro.experiments``) and the ``repro sweep``
CLI are built on these; ``docs/sweeping.md`` and
``docs/distributed-sweeps.md`` are the user guides.
"""

from repro.sweep.dashboard import (
    DASHBOARD_SCHEMA_VERSION,
    dashboard_payload,
    render_html,
    serve_dashboard,
    write_dashboard,
)
from repro.sweep.progress import SweepProgress
from repro.sweep.runner import (
    SweepError,
    SweepOutcome,
    run_cell,
    run_cells,
    scheduler_mismatches,
)
from repro.sweep.schemes import SCHEME_SPECS, SchemeSpec, resolve_scheme
from repro.sweep.service import (
    LeaseManager,
    WorkerSummary,
    load_manifest,
    publish_manifest,
    run_worker,
)
from repro.sweep.spec import (
    FINGERPRINT_VERSION,
    CellSpec,
    GridSpec,
    load_grid,
    validate_cells,
)
from repro.sweep.store import CellResult, ResultStore

__all__ = [
    "DASHBOARD_SCHEMA_VERSION",
    "FINGERPRINT_VERSION",
    "SCHEME_SPECS",
    "CellResult",
    "CellSpec",
    "GridSpec",
    "LeaseManager",
    "ResultStore",
    "SchemeSpec",
    "SweepError",
    "SweepOutcome",
    "SweepProgress",
    "WorkerSummary",
    "dashboard_payload",
    "load_grid",
    "load_manifest",
    "publish_manifest",
    "render_html",
    "resolve_scheme",
    "run_cell",
    "run_cells",
    "run_worker",
    "scheduler_mismatches",
    "serve_dashboard",
    "validate_cells",
    "write_dashboard",
]
