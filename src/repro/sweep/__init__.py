"""Deterministic parallel sweep runner with a resumable result store.

The paper's evaluation is a grid — workloads × policies × cache sizes ×
modes — and this package is the layer that makes that grid cheap to
(re-)run:

* :mod:`repro.sweep.spec` — declarative grids (:class:`GridSpec`) that
  expand into content-addressed cells (:class:`CellSpec`).
* :mod:`repro.sweep.schemes` — picklable scheme descriptions
  (:class:`SchemeSpec`) so cells can cross process boundaries.
* :mod:`repro.sweep.runner` — :func:`run_cells`: a multiprocessing
  fan-out with per-cell failure isolation and bit-identical results at
  any ``jobs`` count.
* :mod:`repro.sweep.store` — :class:`ResultStore`: atomic per-cell
  result files keyed by config fingerprint, giving resume-after-
  interrupt and zero recomputation for unchanged cells.

The experiment drivers (``repro.experiments``) and the ``repro sweep``
CLI are built on these; ``docs/sweeping.md`` is the user guide.
"""

from repro.sweep.runner import (
    SweepError,
    SweepOutcome,
    run_cell,
    run_cells,
    scheduler_mismatches,
)
from repro.sweep.schemes import SCHEME_SPECS, SchemeSpec, resolve_scheme
from repro.sweep.spec import (
    FINGERPRINT_VERSION,
    CellSpec,
    GridSpec,
    load_grid,
    validate_cells,
)
from repro.sweep.store import CellResult, ResultStore

__all__ = [
    "FINGERPRINT_VERSION",
    "SCHEME_SPECS",
    "CellResult",
    "CellSpec",
    "GridSpec",
    "ResultStore",
    "SchemeSpec",
    "SweepError",
    "SweepOutcome",
    "load_grid",
    "resolve_scheme",
    "run_cell",
    "run_cells",
    "scheduler_mismatches",
    "validate_cells",
]
