"""Declarative cache-scheme specifications for sweep cells.

A sweep cell must be shippable to a worker *process*, so it cannot hold
a live :class:`~repro.policies.scheme.CacheScheme` (schemes are stateful
and some factories are lambdas, which do not pickle).  Instead a cell
carries a :class:`SchemeSpec` — a frozen, picklable description of which
scheme to build and with which knobs — and the worker instantiates the
scheme right before simulating.

``SchemeSpec`` is also *callable* (``spec()`` builds a fresh scheme), so
everywhere the experiment harness used to accept a zero-argument scheme
factory it now accepts a ``SchemeSpec`` transparently; custom callables
remain supported by the harness's serial path (see
``repro.experiments.harness``).

The canonical named line-up lives in :data:`SCHEME_SPECS`; names match
the labels used across ``docs/policies.md`` and EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.core.app_profiler import ProfileStore
from repro.core.policy import MrdScheme
from repro.policies.scheme import (
    BeladyScheme,
    CacheScheme,
    FifoScheme,
    LfuScheme,
    LrcScheme,
    LruScheme,
    MemTuneScheme,
    RandomScheme,
)

#: Zero-argument constructors for the non-MRD bases.
_BASE_FACTORIES: dict[str, Callable[[], CacheScheme]] = {
    "LRU": LruScheme,
    "FIFO": FifoScheme,
    "LFU": LfuScheme,
    "Random": RandomScheme,
    "LRC": LrcScheme,
    "MemTune": MemTuneScheme,
    "Belady": BeladyScheme,
}

#: Scheme bases a :class:`SchemeSpec` may name.
SCHEME_BASES: tuple[str, ...] = tuple(_BASE_FACTORIES) + ("MRD",)


@dataclass(frozen=True)
class SchemeSpec:
    """Picklable description of one cache scheme configuration.

    Non-MRD bases ignore the MRD-only knobs; :meth:`to_dict` normalizes
    them away so that e.g. ``SchemeSpec("LRU", mode="adhoc")`` and
    ``SchemeSpec("LRU")`` produce the same sweep-cell fingerprint.
    """

    base: str = "LRU"
    evict: bool = True
    prefetch: bool = True
    mode: str = "recurring"
    metric: str = "stage"

    def __post_init__(self) -> None:
        if self.base not in SCHEME_BASES:
            raise ValueError(
                f"unknown scheme base {self.base!r}; choose from {sorted(SCHEME_BASES)}"
            )
        if self.mode not in ("recurring", "adhoc"):
            raise ValueError(f"mode must be 'recurring' or 'adhoc', got {self.mode!r}")
        if self.metric not in ("stage", "job"):
            raise ValueError(f"metric must be 'stage' or 'job', got {self.metric!r}")
        if self.base == "MRD" and not (self.evict or self.prefetch):
            raise ValueError("at least one of evict/prefetch must be enabled")

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Display name, mirroring :class:`MrdScheme`'s naming rules."""
        if self.base != "MRD":
            return self.base
        variant = "MRD"
        if not self.prefetch:
            variant = "MRD-evict"
        elif not self.evict:
            variant = "MRD-prefetch"
        if self.metric == "job":
            variant += "-jobdist"
        if self.mode == "adhoc":
            variant += "-adhoc"
        return variant

    def build(self, profile_store: ProfileStore | None = None) -> CacheScheme:
        """Fresh scheme instance (``profile_store`` applies to MRD only)."""
        if self.base != "MRD":
            return _BASE_FACTORIES[self.base]()
        return MrdScheme(
            evict=self.evict,
            prefetch=self.prefetch,
            mode=self.mode,
            metric=self.metric,
            profile_store=profile_store,
        )

    def __call__(self) -> CacheScheme:
        """Zero-argument factory protocol (harness compatibility)."""
        return self.build()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical JSON form (MRD-only knobs dropped for other bases)."""
        if self.base != "MRD":
            return {"base": self.base}
        return {
            "base": self.base,
            "evict": self.evict,
            "prefetch": self.prefetch,
            "mode": self.mode,
            "metric": self.metric,
        }

    @classmethod
    def from_dict(cls, data: dict) -> SchemeSpec:
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        allowed = {"base", "evict", "prefetch", "mode", "metric"}
        extra = set(data) - allowed
        if extra:
            raise ValueError(f"unknown scheme keys: {sorted(extra)}")
        return cls(**data)


#: The named scheme line-up grid specs and the CLI resolve against.
SCHEME_SPECS: dict[str, SchemeSpec] = {
    "LRU": SchemeSpec("LRU"),
    "FIFO": SchemeSpec("FIFO"),
    "LFU": SchemeSpec("LFU"),
    "Random": SchemeSpec("Random"),
    "LRC": SchemeSpec("LRC"),
    "MemTune": SchemeSpec("MemTune"),
    "Belady": SchemeSpec("Belady"),
    "MRD": SchemeSpec("MRD"),
    "MRD-evict": SchemeSpec("MRD", prefetch=False),
    "MRD-prefetch": SchemeSpec("MRD", evict=False),
    "MRD-adhoc": SchemeSpec("MRD", mode="adhoc"),
    "MRD-jobdist": SchemeSpec("MRD", metric="job"),
}

SchemeLike = SchemeSpec | str | dict


def resolve_scheme(value: SchemeLike) -> SchemeSpec:
    """Coerce a name, dict, or SchemeSpec into a :class:`SchemeSpec`.

    Raises ``ValueError`` for unknown names or malformed dicts; live
    factories (plain callables) are *not* accepted here — they cannot
    cross a process boundary.
    """
    if isinstance(value, SchemeSpec):
        return value
    if isinstance(value, str):
        try:
            return SCHEME_SPECS[value]
        except KeyError:
            raise ValueError(
                f"unknown scheme {value!r}; choose from {sorted(SCHEME_SPECS)}"
            ) from None
    if isinstance(value, dict):
        return SchemeSpec.from_dict(value)
    raise ValueError(f"cannot resolve scheme from {type(value).__name__}")


def resolve_scheme_mix(values: Iterable[SchemeLike]) -> tuple[SchemeSpec, ...]:
    """Resolve a scheme *mix* (one entry per concurrent application).

    The multi-tenant CLI takes ``--schemes LRU,MRD`` and cycles the mix
    over the submitted applications; this resolves every entry eagerly
    so an unknown name fails before any simulation starts.
    """
    specs = tuple(resolve_scheme(v) for v in values)
    if not specs:
        raise ValueError("a scheme mix needs at least one scheme")
    return specs


def maybe_resolve_scheme(value: object) -> SchemeSpec | None:
    """Like :func:`resolve_scheme` but returns ``None`` for live factories."""
    if isinstance(value, (SchemeSpec, str, dict)):
        return resolve_scheme(value)
    return None
