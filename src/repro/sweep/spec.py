"""Declarative sweep grids: cells, fingerprints, and spec files.

A *cell* (:class:`CellSpec`) is one fully-determined simulation — a
workload build, a cluster, a cache size, a scheme, a scheduling core
and a control-plane configuration — described entirely by plain data so
it can be shipped to a worker process and hashed into a content
address.  A *grid* (:class:`GridSpec`) is the cross product of axes
(workloads × schemes × cache fractions × clusters × seeds × schedulers
× control latencies) that expands deterministically into cells.

Fingerprints
------------

``CellSpec.fingerprint()`` is a SHA-256 over the cell's canonical JSON
form plus :data:`FINGERPRINT_VERSION`.  Two cells share a fingerprint
iff they describe the same simulation, so the fingerprint doubles as
the key of the on-disk result store (``repro.sweep.store``): editing
any field of a cell — and only that — invalidates its cached result.
Bump the version when the *meaning* of an existing field changes.

Seeds
-----

Randomized machinery (the rpc control plane's jitter/loss draws) must
not depend on which worker process, or in which order, a cell runs.
Every cell therefore derives its RNG seed from its own fingerprint
(:meth:`CellSpec.derived_control_seed`) unless an explicit
``control_seed`` is pinned — this is what makes ``--jobs N`` runs
bit-identical to ``--jobs 1`` runs.

Spec files are TOML (Python ≥ 3.11) or JSON; see ``docs/sweeping.md``
for the format.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.placement import PLACEMENTS
from repro.cluster.rebalance import REBALANCES
from repro.simulator.config import CLUSTERS
from repro.simulator.engine import SCHEDULERS
from repro.sweep.schemes import SCHEME_SPECS, SchemeLike, SchemeSpec, resolve_scheme

try:  # Python >= 3.11; on 3.10 TOML specs are unavailable (JSON still works)
    import tomllib
except ImportError:  # pragma: no cover - py3.10 fallback
    tomllib = None  # type: ignore[assignment]

#: Bump when the semantics of an existing CellSpec field change, so
#: stale result stores are invalidated wholesale.
#: v2: elastic-membership fields (placement/churn_rate/churn_seed/
#: rebalance) joined the canonical form.
FINGERPRINT_VERSION = 2

#: Cluster-shape fields a spec may override per cell.
CLUSTER_OVERRIDE_FIELDS = (
    "num_nodes",
    "slots_per_node",
    "cpu_speed",
    "heterogeneity",
    "heterogeneity_seed",
)


@dataclass(frozen=True)
class CellSpec:
    """One fully-determined (workload, scheme, config) simulation."""

    workload: str
    #: Result label; defaults to the scheme spec's display name.
    scheme: str = ""
    scheme_spec: SchemeSpec = field(default_factory=SchemeSpec)
    cluster: str = "main"
    #: ``(field, value)`` pairs applied over the cluster preset, sorted.
    cluster_overrides: tuple[tuple[str, float], ...] = ()
    #: Cache as a fraction of the workload's peak live cached set;
    #: ignored when ``cache_mb`` pins an absolute per-node size.
    cache_fraction: float | None = 0.5
    cache_mb: float | None = None
    scale: float = 1.0
    iterations: int | None = None
    partitions: int | None = None
    seed: int = 0
    scheduler: str = "event"
    control_plane: str = "instant"
    control_latency: float | None = None
    control_jitter: float = 0.0
    control_loss: float = 0.0
    #: ``None`` → derived from the fingerprint (deterministic per cell).
    control_seed: int | None = None
    #: Partition-placement scheme ("stride" = legacy modulo striding,
    #: "rendezvous" = sticky join-stable hashing).
    placement: str = "stride"
    #: Per-stage-boundary probability of a membership event (join or
    #: decommission, equal odds); 0 = static membership.
    churn_rate: float = 0.0
    #: ``None`` → derived from the fingerprint (deterministic per cell).
    churn_seed: int | None = None
    #: What happens to a decommissioned node's cache ("drop"/"migrate").
    rebalance: str = "drop"
    #: Give this cell a file-backed, per-cell ProfileStore (requires a
    #: result store); cells NEVER share profile directories — a stored
    #: profile from one configuration silently changes another's MRD
    #: behaviour (see tests/sweep/test_profile_isolation.py).
    profile_store: bool = False

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("cell needs a workload name")
        if self.scheme == "":
            object.__setattr__(self, "scheme", self.scheme_spec.name)
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {SCHEDULERS}, got {self.scheduler!r}"
            )
        if self.control_plane not in ("instant", "rpc"):
            raise ValueError(
                f"control_plane must be 'instant' or 'rpc', got {self.control_plane!r}"
            )
        if self.cache_mb is None and self.cache_fraction is None:
            raise ValueError("cell needs cache_fraction or cache_mb")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ValueError(f"churn_rate must be in [0, 1], got {self.churn_rate!r}")
        if self.rebalance not in REBALANCES:
            raise ValueError(
                f"rebalance must be one of {REBALANCES}, got {self.rebalance!r}"
            )
        bad = [k for k, _ in self.cluster_overrides if k not in CLUSTER_OVERRIDE_FIELDS]
        if bad:
            raise ValueError(
                f"unknown cluster override(s) {bad}; "
                f"choose from {CLUSTER_OVERRIDE_FIELDS}"
            )
        object.__setattr__(
            self, "cluster_overrides", tuple(sorted(self.cluster_overrides))
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical, JSON-stable form (the fingerprint input)."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "scheme_spec": self.scheme_spec.to_dict(),
            "cluster": self.cluster,
            "cluster_overrides": [list(p) for p in self.cluster_overrides],
            "cache_fraction": None if self.cache_mb is not None else self.cache_fraction,
            "cache_mb": self.cache_mb,
            "scale": self.scale,
            "iterations": self.iterations,
            "partitions": self.partitions,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "control_plane": self.control_plane,
            "control_latency": self.control_latency if self.control_plane == "rpc" else None,
            "control_jitter": self.control_jitter if self.control_plane == "rpc" else 0.0,
            "control_loss": self.control_loss if self.control_plane == "rpc" else 0.0,
            "control_seed": self.control_seed if self.control_plane == "rpc" else None,
            # Churn-only fields normalize to inert values for static
            # cells: a churn seed or rebalance choice that cannot affect
            # the run must not split its fingerprint.
            "placement": self.placement,
            "churn_rate": self.churn_rate,
            "churn_seed": self.churn_seed if self.churn_rate > 0 else None,
            "rebalance": self.rebalance if self.churn_rate > 0 else "drop",
            "profile_store": self.profile_store,
        }

    @classmethod
    def from_dict(cls, data: dict) -> CellSpec:
        """Rebuild a cell from :meth:`to_dict` output."""
        data = dict(data)
        data["scheme_spec"] = SchemeSpec.from_dict(data.get("scheme_spec", {}))
        data["cluster_overrides"] = tuple(
            (k, v) for k, v in data.get("cluster_overrides", ())
        )
        return cls(**data)

    def fingerprint(self) -> str:
        """Content address of this cell (16 hex chars of SHA-256)."""
        payload = {"v": FINGERPRINT_VERSION, **self.to_dict()}
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def derived_control_seed(self) -> int:
        """Per-cell RNG seed: explicit ``control_seed`` or fingerprint-derived.

        Derived from the cell's own content — never from the worker
        process or submission order — so parallel and serial sweeps draw
        identical random sequences.
        """
        if self.control_seed is not None:
            return self.control_seed
        return int(self.fingerprint()[:8], 16)

    def derived_churn_seed(self) -> int:
        """Churn-history seed: explicit ``churn_seed`` or fingerprint-derived.

        Uses a different fingerprint slice than the control seed so the
        two RNG streams never coincide on the same cell.
        """
        if self.churn_seed is not None:
            return self.churn_seed
        return int(self.fingerprint()[8:16], 16)

    def label(self) -> str:
        """Short human-readable identifier for progress lines."""
        cache = (
            f"{self.cache_mb:g}MB" if self.cache_mb is not None
            else f"@{self.cache_fraction:g}"
        )
        extra = ""
        if self.scheduler != "event":
            extra += f" [{self.scheduler}]"
        if self.control_plane == "rpc":
            extra += f" rpc={self.control_latency or 0:g}s"
        if self.placement != "stride":
            extra += f" {self.placement}"
        if self.churn_rate > 0:
            extra += f" churn={self.churn_rate:g}/{self.rebalance}"
        return f"{self.workload}/{self.scheme}{cache}{extra}"


def validate_cells(cells: Sequence[CellSpec]) -> None:
    """Fail fast on names a worker would reject (workloads, clusters).

    Workloads registered dynamically in this process (e.g. trace
    workloads) pass validation here but reach worker processes only
    under the ``fork`` start method; elsewhere the cell records an
    error result instead of killing the sweep.
    """
    from repro.workloads.registry import workload_names

    known = set(workload_names())
    for cell in cells:
        if cell.workload not in known:
            raise ValueError(
                f"unknown workload {cell.workload!r}; "
                f"choose from {sorted(known)}"
            )
        if cell.cluster not in CLUSTERS:
            raise ValueError(
                f"unknown cluster {cell.cluster!r}; choose from {sorted(CLUSTERS)}"
            )


# ----------------------------------------------------------------------
@dataclass
class GridSpec:
    """Cross product of sweep axes; expands into :class:`CellSpec` cells.

    Scalar fields (``scale``, ``control_jitter``, …) apply to every
    cell; list fields are axes.  ``schemes`` entries may be registry
    names (``"MRD-evict"``), ``SchemeSpec`` instances, or
    ``(label, SchemeSpec)`` pairs when a custom label is wanted.
    """

    workloads: list[str] = field(default_factory=list)
    schemes: list[object] = field(default_factory=lambda: ["LRU", "MRD"])
    cache_fractions: list[float] = field(default_factory=lambda: [0.5])
    cache_mb: float | None = None
    clusters: list[str] = field(default_factory=lambda: ["main"])
    cluster_overrides: dict = field(default_factory=dict)
    scale: float = 1.0
    iterations: int | None = None
    partitions: int | None = None
    seeds: list[int] = field(default_factory=lambda: [0])
    schedulers: list[str] = field(default_factory=lambda: ["event"])
    control_plane: str = "instant"
    control_latencies: list[float | None] = field(default_factory=lambda: [None])
    control_jitter: float = 0.0
    control_loss: float = 0.0
    control_seed: int | None = None
    placements: list[str] = field(default_factory=lambda: ["stride"])
    churn_rates: list[float] = field(default_factory=lambda: [0.0])
    churn_seed: int | None = None
    rebalances: list[str] = field(default_factory=lambda: ["drop"])
    profile_store: bool = False
    name: str = "sweep"

    def resolved_schemes(self) -> list[tuple[str, SchemeSpec]]:
        """``(label, SchemeSpec)`` pairs in declaration order."""
        pairs: list[tuple[str, SchemeSpec]] = []
        for entry in self.schemes:
            if isinstance(entry, tuple):
                label, spec = entry
                pairs.append((str(label), resolve_scheme(spec)))
            elif isinstance(entry, dict) and "name" in entry:
                entry = dict(entry)
                label = entry.pop("name")
                pairs.append((str(label), resolve_scheme(entry)))
            else:
                spec = resolve_scheme(entry)  # type: ignore[arg-type]
                label = entry if isinstance(entry, str) else spec.name
                pairs.append((label, spec))
        return pairs

    def cells(self) -> list[CellSpec]:
        """Expand the grid, workload-major, in deterministic order."""
        if not self.workloads:
            return []
        overrides = tuple(sorted(self.cluster_overrides.items()))
        schemes = self.resolved_schemes()
        fractions: Sequence[float | None] = (
            [None] if self.cache_mb is not None else self.cache_fractions
        )
        out: list[CellSpec] = []
        for workload in self.workloads:
            for cluster in self.clusters:
                for fraction in fractions:
                    for label, spec in schemes:
                        for seed in self.seeds:
                            for scheduler in self.schedulers:
                                for latency in self.control_latencies:
                                    for placement in self.placements:
                                        for churn in self.churn_rates:
                                            for rebalance in self.rebalances:
                                                out.append(CellSpec(
                                                    workload=workload,
                                                    scheme=label,
                                                    scheme_spec=spec,
                                                    cluster=cluster,
                                                    cluster_overrides=overrides,
                                                    cache_fraction=fraction,
                                                    cache_mb=self.cache_mb,
                                                    scale=self.scale,
                                                    iterations=self.iterations,
                                                    partitions=self.partitions,
                                                    seed=seed,
                                                    scheduler=scheduler,
                                                    control_plane=self.control_plane,
                                                    control_latency=latency,
                                                    control_jitter=self.control_jitter,
                                                    control_loss=self.control_loss,
                                                    control_seed=self.control_seed,
                                                    placement=placement,
                                                    churn_rate=churn,
                                                    churn_seed=self.churn_seed,
                                                    rebalance=rebalance,
                                                    profile_store=self.profile_store,
                                                ))
        return out

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> GridSpec:
        """Build a grid from a parsed TOML/JSON mapping (strict keys)."""
        data = dict(data)
        # Accepted aliases, matching the CLI flag names.
        if "fractions" in data:
            data["cache_fractions"] = data.pop("fractions")
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown grid spec key(s): {sorted(extra)}")
        for list_key in ("workloads", "schemes", "cache_fractions", "clusters",
                         "seeds", "schedulers", "control_latencies",
                         "placements", "churn_rates", "rebalances"):
            if list_key in data and not isinstance(data[list_key], list):
                data[list_key] = [data[list_key]]
        grid = cls(**data)
        grid.resolved_schemes()  # validate scheme entries eagerly
        for scheduler in grid.schedulers:
            if scheduler not in SCHEDULERS:
                raise ValueError(
                    f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}"
                )
        return grid


def load_grid(path: str | Path) -> GridSpec:
    """Read a grid spec file (``.toml`` on Python ≥ 3.11, else JSON)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".toml":
        if tomllib is None:
            raise ValueError(
                f"{path}: TOML specs need Python >= 3.11 (tomllib); "
                "use a JSON spec on this interpreter"
            )
        data = tomllib.loads(text)
    else:
        data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: grid spec must be a mapping")
    try:
        return GridSpec.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{path}: {exc}") from None


__all__ = [
    "CLUSTER_OVERRIDE_FIELDS",
    "FINGERPRINT_VERSION",
    "CellSpec",
    "GridSpec",
    "SCHEME_SPECS",
    "SchemeLike",
    "SchemeSpec",
    "load_grid",
    "resolve_scheme",
    "validate_cells",
]
