"""Parallel sweep execution with per-cell failure isolation.

:func:`run_cells` takes a list of :class:`CellSpec` cells and executes
each one — in-process when ``jobs == 1``, across a ``multiprocessing``
pool otherwise.  Three properties the experiment drivers and the
``repro sweep`` CLI rely on:

* **Determinism** — a cell is a pure function of its spec: the worker
  rebuilds the workload DAG, cluster, and scheme from plain data, and
  any RNG seed derives from the cell's fingerprint, never from the
  process or submission order.  ``--jobs N`` is therefore bit-identical
  to ``--jobs 1`` (a tested invariant).
* **Failure isolation** — an exception inside a cell produces an error
  :class:`CellResult` (type, message, traceback) instead of killing the
  sweep; healthy cells complete and the summary reports the failures.
* **Resumability** — with a :class:`ResultStore`, each result persists
  atomically as it completes and later runs serve unchanged cells from
  disk, so an interrupted sweep recomputes only what it never finished
  and a completed sweep re-runs with zero recomputation.

Each cell with ``profile_store=True`` gets its *own* profile directory
(keyed by fingerprint) — cells never share one, because a stored MRD
profile from one configuration silently changes another configuration's
eviction behaviour (see ``tests/sweep/test_profile_isolation.py``).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.control.plane import RpcConfig
from repro.core.app_profiler import ProfileStore
from repro.simulator.config import CLUSTERS
from repro.simulator.metrics import RunMetrics
from repro.simulator.reporting import metrics_to_dict
from repro.sweep.spec import CellSpec
from repro.sweep.store import STATUS_ERROR, STATUS_OK, CellResult, ResultStore

#: ``progress(done, total, result)`` — invoked after every cell.
ProgressFn = Callable[[int, int, CellResult], None]


class SweepError(RuntimeError):
    """Raised by :meth:`SweepOutcome.raise_on_error` when cells failed."""


def _build_cluster_config(cell: CellSpec):
    config = CLUSTERS[cell.cluster]
    if cell.cluster_overrides:
        config = replace(config, **dict(cell.cluster_overrides))
    return config


def _execute_cell(cell: CellSpec, profile_path: str | None) -> RunMetrics:
    """Run one cell to completion (pure function of the spec)."""
    from repro.dag.analysis import peak_live_cached_mb
    from repro.dag.dag_builder import build_dag
    from repro.experiments.harness import MIN_CACHE_MB
    from repro.simulator.engine import simulate
    from repro.workloads.base import WorkloadParams
    from repro.workloads.registry import get_workload

    params = WorkloadParams(
        scale=cell.scale,
        iterations=cell.iterations,
        partitions=(
            cell.partitions if cell.partitions is not None
            else WorkloadParams().partitions
        ),
        seed=cell.seed,
    )
    dag = build_dag(get_workload(cell.workload).build(params))
    cluster = _build_cluster_config(cell)
    if cell.cache_mb is not None:
        cache_mb = cell.cache_mb
    else:
        assert cell.cache_fraction is not None
        peak = peak_live_cached_mb(dag)
        cache_mb = max(peak * cell.cache_fraction / cluster.num_nodes, MIN_CACHE_MB)
    store = ProfileStore(path=Path(profile_path)) if profile_path else None
    scheme = cell.scheme_spec.build(profile_store=store)
    kwargs: dict = {"scheduler": cell.scheduler}
    if cell.placement != "stride":
        kwargs["placement"] = cell.placement
    if cell.churn_rate > 0:
        from repro.simulator.failures import build_churn_plan

        kwargs["failure_plan"] = build_churn_plan(
            len(dag.active_stages), cell.churn_rate, cell.derived_churn_seed()
        )
        kwargs["rebalance"] = cell.rebalance
    if cell.control_plane == "rpc":
        kwargs["control_plane"] = "rpc"
        kwargs["control_config"] = RpcConfig(
            latency_s=cell.control_latency,
            jitter_s=cell.control_jitter,
            loss_rate=cell.control_loss,
            seed=cell.derived_control_seed(),
        )
    metrics = simulate(dag, cluster.with_cache(cache_mb), scheme, **kwargs)
    # Cells are labeled by their grid key (e.g. "MRD-recurring"), which
    # may differ from the scheme's self-reported name.
    metrics.scheme = cell.scheme
    return metrics


def run_cell(cell: CellSpec, profile_path: str | None = None) -> CellResult:
    """Execute one cell, mapping any exception to an error result."""
    fingerprint = cell.fingerprint()
    start = time.perf_counter()
    try:
        metrics = _execute_cell(cell, profile_path)
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return CellResult(
            fingerprint=fingerprint,
            spec=cell.to_dict(),
            status=STATUS_ERROR,
            error={
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
            elapsed_s=time.perf_counter() - start,
        )
    return CellResult(
        fingerprint=fingerprint,
        spec=cell.to_dict(),
        status=STATUS_OK,
        metrics=metrics_to_dict(metrics),
        elapsed_s=time.perf_counter() - start,
    )


def _pool_entry(task: tuple[CellSpec, str | None]) -> CellResult:
    cell, profile_path = task
    return run_cell(cell, profile_path)


@dataclass
class SweepOutcome:
    """Everything one :func:`run_cells` invocation produced."""

    cells: list[CellSpec]
    #: One result per cell, in cell order (duplicates share results).
    results: list[CellResult]
    computed: int = 0
    cached: int = 0
    errors: int = 0
    elapsed_s: float = 0.0
    _by_fingerprint: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for result in self.results:
            self._by_fingerprint.setdefault(result.fingerprint, result)

    # ------------------------------------------------------------------
    def result_for(self, cell: CellSpec) -> CellResult:
        return self._by_fingerprint[cell.fingerprint()]

    def metrics_for(self, cell: CellSpec) -> RunMetrics:
        return self.result_for(cell).run_metrics()

    def error_results(self) -> list[CellResult]:
        return [r for r in self.results if not r.ok]

    def raise_on_error(self) -> None:
        """Fail loudly when any cell errored (drivers that need all cells)."""
        failed = self.error_results()
        if failed:
            lines = [
                f"  {CellSpec.from_dict(r.spec).label()}: {r.describe_error()}"
                for r in failed
            ]
            raise SweepError(
                f"{len(failed)}/{len(self.results)} sweep cell(s) failed:\n"
                + "\n".join(lines)
            )

    def stats_line(self) -> str:
        """`16 cells: 12 computed, 4 cached, 0 errors in 3.2s`."""
        return (
            f"{len(self.results)} cells: {self.computed} computed, "
            f"{self.cached} cached, {self.errors} errors "
            f"in {self.elapsed_s:.1f}s"
        )


def scheduler_mismatches(outcome: SweepOutcome) -> list[str]:
    """Cross-scheduler equivalence check over an outcome.

    Groups cells that differ only in their ``scheduler`` field and
    compares the stored metrics payloads — the event core and the
    reference core must be indistinguishable.  Returns one description
    per divergent group (empty list = all equivalent).
    """
    groups: dict[str, dict[str, dict | None]] = {}
    labels: dict[str, str] = {}
    for cell, result in zip(outcome.cells, outcome.results, strict=True):
        spec = cell.to_dict()
        spec.pop("scheduler")
        key = repr(sorted(spec.items()))
        labels.setdefault(key, cell.label())
        groups.setdefault(key, {})[cell.scheduler] = result.metrics
    mismatches = []
    for key, by_scheduler in groups.items():
        if len(by_scheduler) < 2:
            continue
        payloads = list(by_scheduler.values())
        if any(p != payloads[0] for p in payloads[1:]):
            mismatches.append(
                f"{labels[key]}: schedulers {sorted(by_scheduler)} disagree"
            )
    return mismatches


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_cells(
    cells: Sequence[CellSpec],
    jobs: int = 1,
    store: ResultStore | str | Path | None = None,
    resume: bool = True,
    progress: ProgressFn | None = None,
    external: bool = False,
    poll_s: float = 0.5,
    timeout_s: float | None = None,
) -> SweepOutcome:
    """Run every cell; return results in cell order.

    ``jobs`` bounds worker processes (1 = in-process, no pool).  With a
    ``store``, completed cells persist immediately and — when ``resume``
    is true — previously stored *successful* results are served without
    recomputation; stored error results always retry (their stale
    profile directory is purged first, so the retry starts cold).

    With ``external=True`` nothing computes locally: the grid manifest
    is published into the ``store`` (which becomes mandatory) and this
    call blocks, polling every ``poll_s`` seconds, until external
    ``repro sweep --worker`` processes have settled every cell — the
    coordinator half of the distributed sweep service
    (:mod:`repro.sweep.service`).  ``timeout_s`` bounds the wait.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    if external:
        if store is None:
            raise ValueError("external workers need a shared --store directory")
        if not resume:
            raise ValueError(
                "external workers cannot run with resume disabled; "
                "reset the store instead"
            )
    cells = list(cells)
    start = time.perf_counter()

    results: dict[str, CellResult] = {}
    pending: list[tuple[CellSpec, str | None]] = []
    seen_pending: set[str] = set()
    order: list[str] = []
    cached = 0
    for cell in cells:
        fingerprint = cell.fingerprint()
        order.append(fingerprint)
        if fingerprint in results or fingerprint in seen_pending:
            continue  # duplicate cell: compute once, share the result
        stored = store.get(fingerprint) if (store is not None and resume) else None
        if stored is not None and stored.ok:
            stored.cached = True
            results[fingerprint] = stored
            cached += 1
            continue
        profile_path: str | None = None
        if cell.profile_store and not external:
            if store is None:
                raise ValueError(
                    f"cell {cell.label()} wants a file-backed profile store, "
                    "but the sweep has no result store directory"
                )
            # The cell is about to recompute: purge any profile a prior
            # run of this fingerprint left behind (cross-run MRD profile
            # leakage — the result must be a pure function of the spec).
            store.reset_profiles(fingerprint)
            profile_path = str(store.profile_path(fingerprint))
        seen_pending.add(fingerprint)
        pending.append((cell, profile_path))

    total = len(results) + len(pending)
    done = len(results)
    if progress is not None:
        for i, result in enumerate(results.values(), start=1):
            progress(i, total, result)

    def _record(result: CellResult) -> None:
        nonlocal done
        results[result.fingerprint] = result
        if store is not None:
            store.put(result)
        done += 1
        if progress is not None:
            progress(done, total, result)

    if pending and external:
        from repro.sweep.service import publish_manifest

        assert isinstance(store, ResultStore)
        publish_manifest(store, cells)
        waiting = [cell for cell, _ in pending]
        deadline = None if timeout_s is None else start + timeout_s
        while waiting:
            still_waiting = []
            for cell in waiting:
                result = store.get(cell.fingerprint())
                if result is None:
                    still_waiting.append(cell)
                    continue
                results[result.fingerprint] = result
                done += 1
                if progress is not None:
                    progress(done, total, result)
            waiting = still_waiting
            if not waiting:
                break
            if deadline is not None and time.perf_counter() > deadline:
                raise TimeoutError(
                    f"gave up waiting for external workers after {timeout_s:g}s "
                    f"({len(waiting)} cell(s) unsettled; is a worker running "
                    f"against {store.root}?)"
                )
            time.sleep(poll_s)
    elif pending:
        if jobs == 1:
            for task in pending:
                _record(_pool_entry(task))
        else:
            ctx = _pool_context()
            pool = ctx.Pool(processes=min(jobs, len(pending)))
            try:
                for result in pool.imap_unordered(_pool_entry, pending, chunksize=1):
                    _record(result)
                pool.close()
            except BaseException:
                pool.terminate()
                raise
            finally:
                pool.join()

    ordered = [results[fp] for fp in order]
    return SweepOutcome(
        cells=cells,
        results=ordered,
        computed=len(pending),
        cached=cached,
        errors=sum(1 for r in results.values() if not r.ok),
        elapsed_s=time.perf_counter() - start,
    )
