"""Live sweep dashboard: JSON + HTML regenerated from a ResultStore.

Zero dependencies beyond the standard library.  Everything is derived
from the shared store directory the workers drain — the manifest
(``grid.json``), the result files, the lease files and the worker
registry — so the dashboard needs nothing but ``--store`` and can run
on any machine that mounts it:

* :func:`dashboard_payload` — one JSON-serialisable dict: grid
  progress, per-cell status (``ok``/``error``/``running``/``pending``)
  with the claiming worker and error summaries, worker liveness from
  registry heartbeat ages, a clamped ETA, a results table, and per-axis
  pivots (mean JCT / hit ratio grouped by every axis the grid actually
  varies).
* :func:`render_html` — a self-contained page (inline CSS, optional
  ``<meta refresh>``) rendering that payload.
* :func:`write_dashboard` — write ``dashboard.json`` + ``dashboard.html``
  once (the ``repro sweep --serve --once`` path used by CI).
* :func:`serve_dashboard` — a stdlib ``http.server`` loop serving both,
  regenerated per request (the ``repro sweep --serve`` path).

The payload is deterministic given the store's contents, modulo the
fields that are genuinely clocks (lease/worker ages, ETA) — the schema
round-trip test pins the shape (``tests/sweep/test_dashboard.py``).
"""

from __future__ import annotations

import html
import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.sweep.service import (
    DEFAULT_LEASE_TTL_S,
    LeaseManager,
    load_manifest,
    read_workers,
)
from repro.sweep.spec import CellSpec
from repro.sweep.store import ResultStore, atomic_write_text

#: Bump when the payload shape changes (consumers pin on this).
DASHBOARD_SCHEMA_VERSION = 1

#: Cell states the dashboard reports.
CELL_STATES = ("ok", "error", "running", "pending")

#: Axes pivot tables may group by, in display order.
PIVOT_AXES = (
    "workload", "scheme", "cluster", "cache", "seed",
    "scheduler", "placement", "churn_rate", "control_latency",
)


def _axis_value(cell: CellSpec, axis: str) -> str:
    if axis == "cache":
        return (
            f"{cell.cache_mb:g}MB" if cell.cache_mb is not None
            else f"{cell.cache_fraction:g}"
        )
    return str(getattr(cell, axis))


def _mean(values: list[float]) -> float | None:
    finite = [v for v in values if v is not None and math.isfinite(v)]
    if not finite:
        return None
    return sum(finite) / len(finite)


def dashboard_payload(
    store: ResultStore | str | Path,
    cells: list[CellSpec] | None = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
) -> dict:
    """Everything the dashboard shows, as one JSON-serialisable dict.

    ``cells=None`` reads the store's published manifest; cells that
    have results but fell out of the manifest are still listed (their
    spec rides inside the stored result).
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    grid = list(cells) if cells is not None else load_manifest(store)
    by_fingerprint = {cell.fingerprint(): cell for cell in grid}
    # Results for cells outside the manifest still carry their spec.
    for result in store:
        if result.fingerprint not in by_fingerprint:
            by_fingerprint[result.fingerprint] = CellSpec.from_dict(result.spec)
    leases = {
        info.fingerprint: info
        for info in LeaseManager(store, "dashboard", ttl_s=lease_ttl_s).live_leases()
    }

    cell_rows = []
    counts = dict.fromkeys(CELL_STATES, 0)
    elapsed_ok: list[float] = []
    for fingerprint in sorted(by_fingerprint):
        cell = by_fingerprint[fingerprint]
        result = store.get(fingerprint)
        lease = leases.get(fingerprint)
        if result is not None:
            state = "ok" if result.ok else "error"
        elif lease is not None and not lease.stale(lease_ttl_s):
            state = "running"
        else:
            state = "pending"
        counts[state] += 1
        jct = hit = None
        error = None
        if result is not None and result.ok:
            jct = result.metrics.get("jct") if result.metrics else None
            hit = result.metrics.get("hit_ratio") if result.metrics else None
            elapsed_ok.append(result.elapsed_s)
        elif result is not None:
            error = result.describe_error()
        cell_rows.append({
            "fingerprint": fingerprint,
            "label": cell.label(),
            "status": state,
            "worker": lease.worker if lease is not None else None,
            "elapsed_s": result.elapsed_s if result is not None else None,
            "jct": jct,
            "hit_ratio": hit,
            "error": error,
        })

    workers = []
    live_workers = 0
    for entry in read_workers(store):
        live = entry.get("age_s", math.inf) <= lease_ttl_s
        live_workers += bool(live)
        workers.append({
            "worker": entry.get("worker", "?"),
            "executed": entry.get("executed", 0),
            "errors": entry.get("errors", 0),
            "current": entry.get("current"),
            "age_s": round(entry.get("age_s", 0.0), 1),
            "live": live,
        })

    total = len(cell_rows)
    done = counts["ok"] + counts["error"]
    remaining = counts["running"] + counts["pending"]
    mean_elapsed = _mean(elapsed_ok)
    eta_s: float | None = None
    if remaining and mean_elapsed is not None:
        eta_s = remaining * mean_elapsed / max(live_workers, 1)
        if not math.isfinite(eta_s) or eta_s < 0:
            eta_s = None

    pivots: dict[str, list[dict]] = {}
    for axis in PIVOT_AXES:
        values: dict[str, list[dict]] = {}
        for row, fingerprint in zip(cell_rows, sorted(by_fingerprint)):
            values.setdefault(
                _axis_value(by_fingerprint[fingerprint], axis), []
            ).append(row)
        if len(values) < 2:
            continue  # an axis the grid does not vary is noise, not a pivot
        pivots[axis] = [
            {
                "value": value,
                "cells": len(rows),
                "ok": sum(1 for r in rows if r["status"] == "ok"),
                "errors": sum(1 for r in rows if r["status"] == "error"),
                "mean_jct": _mean([r["jct"] for r in rows]),
                "mean_hit_ratio": _mean([r["hit_ratio"] for r in rows]),
            }
            for value, rows in sorted(values.items())
        ]

    return {
        "schema": DASHBOARD_SCHEMA_VERSION,
        "store": str(store.root),
        "digest": store.content_digest(),
        "progress": {
            "total": total,
            "done": done,
            **counts,
            "done_fraction": (done / total) if total else 0.0,
        },
        "eta_s": None if eta_s is None else round(eta_s, 1),
        "workers": workers,
        "cells": cell_rows,
        "pivots": pivots,
    }


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------
_CSS = """
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2rem;
       background: #fafafa; color: #1a1a1a; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.6rem; text-align: left; }
th { background: #eee; }
.ok { color: #0a7d38; } .error { color: #b3261e; font-weight: bold; }
.running { color: #0b57d0; } .pending { color: #777; }
.dead { color: #b3261e; } .live { color: #0a7d38; }
.bar { background: #ddd; width: 24rem; height: 0.9rem; }
.bar > div { background: #0a7d38; height: 100%; }
""".strip()


def _esc(value: object) -> str:
    return html.escape("-" if value is None else str(value))


def _num(value: object, digits: int = 3) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}" if isinstance(value, float) else str(value)


def render_html(payload: dict, refresh_s: float | None = None) -> str:
    """Render one payload as a self-contained page (no JS, inline CSS)."""
    progress = payload["progress"]
    fraction = progress["done_fraction"]
    lines = [
        "<!doctype html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>sweep dashboard — {_esc(payload['store'])}</title>",
    ]
    if refresh_s is not None:
        lines.append(f"<meta http-equiv='refresh' content='{refresh_s:g}'>")
    lines += [
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Sweep dashboard — <code>{_esc(payload['store'])}</code></h1>",
        f"<div class='bar'><div style='width:{fraction * 100:.1f}%'></div></div>",
        "<p>"
        f"{progress['done']}/{progress['total']} done "
        f"({progress['ok']} ok, {progress['error']} error, "
        f"{progress['running']} running, {progress['pending']} pending)"
        + (
            f" — ETA ~{payload['eta_s']:g}s"
            if payload["eta_s"] is not None else ""
        )
        + f" — store digest <code>{_esc(payload['digest'][:16])}</code>"
        "</p>",
    ]

    lines.append("<h2>Workers</h2>")
    if payload["workers"]:
        lines.append(
            "<table><tr><th>worker</th><th>liveness</th><th>executed</th>"
            "<th>errors</th><th>current cell</th><th>heartbeat age</th></tr>"
        )
        for w in payload["workers"]:
            state = "live" if w["live"] else "dead"
            lines.append(
                f"<tr><td>{_esc(w['worker'])}</td>"
                f"<td class='{state}'>{state}</td>"
                f"<td>{w['executed']}</td><td>{w['errors']}</td>"
                f"<td>{_esc(w['current'])}</td><td>{w['age_s']}s</td></tr>"
            )
        lines.append("</table>")
    else:
        lines.append("<p>No workers have registered against this store.</p>")

    for axis, rows in payload["pivots"].items():
        lines.append(f"<h2>By {_esc(axis)}</h2>")
        lines.append(
            "<table><tr><th>value</th><th>cells</th><th>ok</th>"
            "<th>errors</th><th>mean JCT</th><th>mean hit</th></tr>"
        )
        for row in rows:
            hit = row["mean_hit_ratio"]
            lines.append(
                f"<tr><td>{_esc(row['value'])}</td><td>{row['cells']}</td>"
                f"<td>{row['ok']}</td><td>{row['errors']}</td>"
                f"<td>{_num(row['mean_jct'])}</td>"
                f"<td>{'-' if hit is None else f'{hit * 100:.0f}%'}</td></tr>"
            )
        lines.append("</table>")

    lines.append("<h2>Cells</h2>")
    lines.append(
        "<table><tr><th>cell</th><th>status</th><th>worker</th>"
        "<th>JCT</th><th>hit</th><th>elapsed</th><th>error</th></tr>"
    )
    for row in payload["cells"]:
        hit = row["hit_ratio"]
        lines.append(
            f"<tr><td>{_esc(row['label'])}</td>"
            f"<td class='{row['status']}'>{row['status']}</td>"
            f"<td>{_esc(row['worker'])}</td>"
            f"<td>{_num(row['jct'])}</td>"
            f"<td>{'-' if hit is None else f'{hit * 100:.0f}%'}</td>"
            f"<td>{_num(row['elapsed_s'], 2)}s</td>"
            f"<td>{_esc(row['error'])}</td></tr>"
        )
    lines.append("</table></body></html>")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# writing and serving
# ----------------------------------------------------------------------
def write_dashboard(
    store: ResultStore | str | Path,
    cells: list[CellSpec] | None = None,
    out_dir: str | Path | None = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    refresh_s: float | None = None,
) -> tuple[Path, Path]:
    """Write ``dashboard.json`` + ``dashboard.html``; returns both paths."""
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    out = Path(out_dir) if out_dir is not None else store.root
    out.mkdir(parents=True, exist_ok=True)
    payload = dashboard_payload(store, cells, lease_ttl_s=lease_ttl_s)
    # Atomic (tmp + os.replace): the dashboard usually lands inside the
    # shared store root, where workers and other dashboard processes
    # read concurrently — a direct write_text can serve a torn file.
    json_path = atomic_write_text(
        out / "dashboard.json",
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )
    html_path = atomic_write_text(
        out / "dashboard.html", render_html(payload, refresh_s=refresh_s)
    )
    return json_path, html_path


class _DashboardHandler(BaseHTTPRequestHandler):
    """Regenerates the payload on every request (the store is the state)."""

    server: DashboardServer  # narrowed for mypy

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            payload = dashboard_payload(
                self.server.store, self.server.cells,
                lease_ttl_s=self.server.lease_ttl_s,
            )
            if self.path.rstrip("/").endswith("dashboard.json"):
                body = json.dumps(payload, indent=2, sort_keys=True).encode()
                content_type = "application/json"
            else:
                body = render_html(
                    payload, refresh_s=self.server.refresh_s
                ).encode()
                content_type = "text/html; charset=utf-8"
        except Exception as exc:  # noqa: BLE001 - a broken store must not kill serving
            body = f"dashboard error: {exc}".encode()
            self.send_response(500)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # request logging is noise on a progress dashboard


class DashboardServer(ThreadingHTTPServer):
    """`http.server` bound to one store; used by ``repro sweep --serve``."""

    daemon_threads = True

    def __init__(
        self,
        store: ResultStore,
        cells: list[CellSpec] | None = None,
        host: str = "127.0.0.1",
        port: int = 8731,
        refresh_s: float = 5.0,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    ) -> None:
        super().__init__((host, port), _DashboardHandler)
        self.store = store
        self.cells = cells
        self.refresh_s = refresh_s
        self.lease_ttl_s = lease_ttl_s


def serve_dashboard(
    store: ResultStore | str | Path,
    cells: list[CellSpec] | None = None,
    host: str = "127.0.0.1",
    port: int = 8731,
    refresh_s: float = 5.0,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
) -> None:  # pragma: no cover - blocking loop; DashboardServer is tested
    """Serve the dashboard until interrupted (Ctrl-C)."""
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    server = DashboardServer(
        store, cells, host=host, port=port,
        refresh_s=refresh_s, lease_ttl_s=lease_ttl_s,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


__all__ = [
    "CELL_STATES",
    "DASHBOARD_SCHEMA_VERSION",
    "PIVOT_AXES",
    "DashboardServer",
    "dashboard_payload",
    "render_html",
    "serve_dashboard",
    "write_dashboard",
]
