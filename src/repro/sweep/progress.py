"""Stderr progress lines for sweeps, with a clamped, honest ETA.

The old inline progress callback estimated ETA as
``elapsed / done * (total - done)``: when the first cells settled in
under one clock tick (cached results, sub-millisecond cells) it
printed ``~0s left`` for an hours-long grid — and the obvious
rate-based rewrite divides by a zero elapsed and prints ``inf``.
:class:`SweepProgress` forecloses both failure modes:

* only *computed* cells feed the rate — cached cells settle in
  microseconds and say nothing about how long the remaining work takes;
* no estimate is shown (``~?s left``) until at least one computed cell
  and one measurable clock tick exist;
* whatever the arithmetic yields is clamped to a finite, non-negative
  number before formatting — ``inf``/``nan`` never reach the terminal
  (regression-tested in ``tests/sweep/test_progress.py``).
"""

from __future__ import annotations

import math
import sys
import time
from collections.abc import Callable
from typing import IO

from repro.sweep.spec import CellSpec
from repro.sweep.store import CellResult

#: Below this many seconds of observed compute, a rate is noise.
MIN_MEASURABLE_S = 1e-3


def format_eta(eta_s: float | None) -> str:
    """``~12s left`` / ``~?s left``; never ``inf``, ``nan`` or negative."""
    if eta_s is None or not math.isfinite(eta_s):
        return "~?s left"
    return f"~{max(eta_s, 0.0):.0f}s left"


class SweepProgress:
    """A ``progress(done, total, result)`` callback printing to stderr.

    Drop-in for :data:`repro.sweep.runner.ProgressFn`; one instance per
    sweep (it accumulates the computed-cell rate).
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._stream = stream
        self._clock = clock
        self._start = clock()
        self._computed = 0

    # ------------------------------------------------------------------
    def eta_s(self, done: int, total: int) -> float | None:
        """Seconds left, or ``None`` while there is nothing to extrapolate."""
        remaining = total - done
        if remaining <= 0:
            return 0.0
        elapsed = self._clock() - self._start
        if self._computed < 1 or elapsed < MIN_MEASURABLE_S:
            return None
        eta = elapsed / self._computed * remaining
        if not math.isfinite(eta):
            return None
        return max(eta, 0.0)

    def __call__(self, done: int, total: int, result: CellResult) -> None:
        if not result.cached:
            self._computed += 1
        elapsed = self._clock() - self._start
        state = "cached" if result.cached else ("ok" if result.ok else "ERROR")
        label = CellSpec.from_dict(result.spec).label()
        stream = self._stream if self._stream is not None else sys.stderr
        print(
            f"[{done}/{total}] {label}: {state} "
            f"({elapsed:.1f}s elapsed, {format_eta(self.eta_s(done, total))})",
            file=stream, flush=True,
        )


__all__ = ["MIN_MEASURABLE_S", "SweepProgress", "format_eta"]
