"""Aggregate metrics of one multi-tenant run.

Per-application quantities stay in each app's
:class:`~repro.simulator.metrics.RunMetrics` (with ``app_id`` and
``arrival_time`` stamped by the tenancy engine; ``jct`` is the app's
*sojourn*, completion minus arrival).  This module adds the cluster-
level aggregates the load experiments report — aggregate hit ratio,
JCT percentiles, makespan — plus a lossless dict round trip mirroring
``repro.simulator.reporting``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simulator.metrics import RunMetrics
from repro.simulator.reporting import metrics_from_dict, metrics_to_dict


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (inclusive), 0.0 for an empty list.

    ``q`` is in (0, 100]; the nearest-rank definition returns an actual
    observed value (no interpolation), which keeps percentile tables
    bit-stable across platforms.
    """
    if not 0 < q <= 100:
        raise ValueError("q must be in (0, 100]")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclass(frozen=True)
class MultiTenantMetrics:
    """Everything measured over one multi-tenant simulation."""

    #: Arbitration policy name the shared nodes ran under.
    arbitration: str
    #: Arrival process name that streamed the applications in.
    arrival_process: str
    #: Completion time of the last application (simulated seconds).
    makespan: float
    #: Per-application metrics in application-index order; each entry
    #: carries ``app_id``, ``arrival_time`` and sojourn ``jct``.
    apps: tuple[RunMetrics, ...]

    # ------------------------------------------------------------------
    @property
    def jcts(self) -> list[float]:
        return [m.jct for m in self.apps]

    @property
    def jct_p50(self) -> float:
        return percentile(self.jcts, 50)

    @property
    def jct_p99(self) -> float:
        return percentile(self.jcts, 99)

    @property
    def mean_jct(self) -> float:
        if not self.apps:
            return 0.0
        return sum(self.jcts) / len(self.apps)

    @property
    def aggregate_hit_ratio(self) -> float:
        """Cluster-wide hit fraction: all hits over all cached reads."""
        hits = sum(m.stats.hits for m in self.apps)
        accesses = sum(m.stats.accesses for m in self.apps)
        return hits / accesses if accesses else 0.0

    @property
    def total_evictions(self) -> int:
        return sum(m.stats.evictions for m in self.apps)

    def summary(self) -> str:
        return (
            f"{len(self.apps)} apps under {self.arbitration}/"
            f"{self.arrival_process} | makespan {self.makespan:.2f}s | "
            f"JCT p50 {self.jct_p50:.2f}s p99 {self.jct_p99:.2f}s | "
            f"hit {self.aggregate_hit_ratio * 100:.1f}% | "
            f"evictions {self.total_evictions}"
        )


def mt_metrics_to_dict(metrics: MultiTenantMetrics) -> dict:
    """Flatten a multi-tenant run into JSON-serializable primitives.

    Aggregates that are derivable (percentiles, hit ratio) are not
    stored — :func:`mt_metrics_from_dict` recomputes them, keeping the
    round trip lossless by construction.
    """
    return {
        "arbitration": metrics.arbitration,
        "arrival_process": metrics.arrival_process,
        "makespan": metrics.makespan,
        "apps": [metrics_to_dict(m) for m in metrics.apps],
    }


def mt_metrics_from_dict(data: dict) -> MultiTenantMetrics:
    """Rebuild a :class:`MultiTenantMetrics` from its dict form."""
    return MultiTenantMetrics(
        arbitration=data["arbitration"],
        arrival_process=data["arrival_process"],
        makespan=data["makespan"],
        apps=tuple(metrics_from_dict(m) for m in data["apps"]),
    )
