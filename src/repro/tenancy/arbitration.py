"""Cross-application cache arbitration on a shared cluster.

On a multi-tenant cluster every node's memory store holds blocks from
several applications at once.  Each application still ranks *its own*
blocks with its own eviction policy (LRU recency, MRD distances, …) —
but when an insertion forces an eviction, someone must decide *which
application* gives up space.  That decision is the
:class:`ArbitrationPolicy`, and :class:`ArbitratedNodePolicy` is the
composite per-node :class:`~repro.policies.base.EvictionPolicy` that
wires the two layers together:

* every ``on_insert``/``on_access``/``on_remove``/``on_miss`` event is
  routed to the owning application's tenant policy, so tenant metadata
  (recency queues, distance views) stays application-local;
* victim selection merges the tenants' candidate streams — each tenant
  proposes its next victim over a namespace-filtered
  :class:`TenantStoreView` — and the arbitration policy picks which
  application's candidate is evicted at every step;
* with a single registered tenant everything delegates verbatim to the
  tenant policy over the raw store, which is what makes one application
  through the tenancy layer byte-identical to the standalone engine.

Application namespacing: application ``k`` builds its DAG with RDD ids
starting at ``k * RDD_NAMESPACE_STRIDE`` (see ``SparkContext``'s
``first_rdd_id``), so a block's owner is recoverable from its id alone
— no per-block tagging anywhere in the cache layer.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.mrd_table import INFINITE
from repro.policies.base import EvictionPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore

#: RDD-id namespace width per application.  Application ``k`` owns ids
#: ``[k * STRIDE, (k + 1) * STRIDE)``; a single application never comes
#: close to a million RDDs, and app 0 at offset 0 keeps standalone runs
#: unchanged.
RDD_NAMESPACE_STRIDE = 1_000_000


def owner_of(rdd_id: int) -> int:
    """Application index owning ``rdd_id`` (0 for standalone runs)."""
    return rdd_id // RDD_NAMESPACE_STRIDE


def namespace_of(app_index: int) -> tuple[int, int]:
    """``[lo, hi)`` RDD-id range owned by application ``app_index``."""
    lo = app_index * RDD_NAMESPACE_STRIDE
    return lo, lo + RDD_NAMESPACE_STRIDE


class TenantStoreView:
    """Read-only view of a shared store filtered to one app's namespace.

    Tenant policies whose eviction order scans the store (MRD's
    CacheMonitor sorts ``store.block_ids()``) must only ever see their
    own blocks — a foreign block is not theirs to rank.  Occupancy
    (``used_mb``/``free_mb``/``capacity_mb``) deliberately reports the
    *shared* store's numbers: fit decisions depend on physical free
    space, not on a tenant's logical slice.
    """

    def __init__(self, store: MemoryStore, app_index: int) -> None:
        self._store = store
        self._lo, self._hi = namespace_of(app_index)

    def _owned(self, block_id: BlockId) -> bool:
        return self._lo <= block_id.rdd_id < self._hi

    def block_ids(self) -> Iterator[BlockId]:
        return (b for b in self._store.block_ids() if self._owned(b))

    def blocks(self) -> Iterator[Block]:
        return (b for b in self._store.blocks() if self._owned(b.id))

    def block(self, block_id: BlockId) -> Block:
        return self._store.block(block_id)

    def is_pinned(self, block_id: BlockId) -> bool:
        return self._store.is_pinned(block_id)

    def __contains__(self, block_id: BlockId) -> bool:
        return self._owned(block_id) and block_id in self._store

    def __len__(self) -> int:
        return sum(1 for _ in self.block_ids())

    @property
    def used_mb(self) -> float:
        return self._store.used_mb

    @property
    def free_mb(self) -> float:
        return self._store.free_mb

    @property
    def free_fraction(self) -> float:
        return self._store.free_fraction

    @property
    def capacity_mb(self) -> float:
        return self._store.capacity_mb


@dataclass(frozen=True)
class VictimCandidate:
    """One application's next eviction candidate, as seen by arbitration.

    ``used_mb`` is the application's current footprint on this node
    *minus* victims already chosen earlier in the same selection, so an
    arbitration policy sees usage shrink as it keeps picking the same
    tenant.  ``distance`` is the candidate block's reference distance
    under its own scheme (``INFINITE`` when the scheme tracks none —
    an untracked block is treated as already dead).
    """

    app_index: int
    block_id: BlockId
    size_mb: float
    used_mb: float
    share: float
    distance: float


class ArbitrationPolicy(abc.ABC):
    """Decides which application's candidate is evicted at each step."""

    name: str = "arbitration"

    @abc.abstractmethod
    def pick(
        self, candidates: list[VictimCandidate], capacity_mb: float
    ) -> VictimCandidate:
        """Choose the victim among one candidate per application.

        ``candidates`` is non-empty and sorted by ``app_index``;
        implementations must be deterministic (break every tie).
        """


class StaticShares(ArbitrationPolicy):
    """Evict from the application furthest over its configured share.

    Each application carries a share weight (``AppSpec.share``); the
    victim is the tenant with the largest ``used_mb / share`` ratio —
    proportional-share pressure, insensitive to how many tenants are
    active.  Ties break on larger usage, then lower application index.
    """

    name = "static"

    def pick(
        self, candidates: list[VictimCandidate], capacity_mb: float
    ) -> VictimCandidate:
        return max(
            candidates,
            key=lambda c: (c.used_mb / c.share, c.used_mb, -c.app_index),
        )


class MaxMinFair(ArbitrationPolicy):
    """Weighted max-min fairness over the node's cache capacity.

    Water-filling computes each active application's fair allocation of
    the node's capacity given every tenant's current demand (= usage);
    the victim is the application with the largest *overage* above its
    fair allocation.  When nobody is over (total usage below capacity,
    which still happens when a large incoming block forces eviction)
    the fallback is the largest weighted usage.
    """

    name = "maxmin"

    def pick(
        self, candidates: list[VictimCandidate], capacity_mb: float
    ) -> VictimCandidate:
        fair = self._fair_allocations(candidates, capacity_mb)
        best = max(
            candidates,
            key=lambda c: (c.used_mb - fair[c.app_index], c.used_mb, -c.app_index),
        )
        if best.used_mb - fair[best.app_index] > 0:
            return best
        return max(
            candidates,
            key=lambda c: (c.used_mb / c.share, c.used_mb, -c.app_index),
        )

    @staticmethod
    def _fair_allocations(
        candidates: list[VictimCandidate], capacity_mb: float
    ) -> dict[int, float]:
        """Weighted water-filling of ``capacity_mb`` over the demands."""
        remaining = capacity_mb
        alloc = {c.app_index: 0.0 for c in candidates}
        active = list(candidates)
        while active and remaining > 0:
            total_share = sum(c.share for c in active)
            level = remaining / total_share
            satisfied = [c for c in active if c.used_mb <= level * c.share]
            if not satisfied:
                for c in active:
                    alloc[c.app_index] = level * c.share
                break
            for c in satisfied:
                alloc[c.app_index] = c.used_mb
                remaining -= c.used_mb
            active = [c for c in active if c.used_mb > level * c.share]
        return alloc


class GlobalDistance(ArbitrationPolicy):
    """Global cross-application reference-distance ordering.

    The multi-tenant generalization of the paper's eviction rule: the
    block evicted is the one whose *own application* will not need it
    for the longest — each tenant's candidate already is its worst
    block, so arbitration simply takes the candidate with the greatest
    reference distance, infinite first.  Applications whose scheme
    tracks no distances (LRU tenants) report ``INFINITE`` and are
    preferred victims, exactly like untracked RDDs under MRD.  Ties
    break on larger usage, then lower application index.
    """

    name = "global-mrd"

    def pick(
        self, candidates: list[VictimCandidate], capacity_mb: float
    ) -> VictimCandidate:
        return max(
            candidates,
            key=lambda c: (c.distance, c.used_mb, -c.app_index),
        )


#: Arbitration policies the CLI and experiment drivers resolve against.
ARBITRATIONS: dict[str, type[ArbitrationPolicy]] = {
    "static": StaticShares,
    "maxmin": MaxMinFair,
    "global-mrd": GlobalDistance,
}


def build_arbitration(value: str | ArbitrationPolicy) -> ArbitrationPolicy:
    """Coerce a name or instance into an :class:`ArbitrationPolicy`."""
    if isinstance(value, ArbitrationPolicy):
        return value
    try:
        return ARBITRATIONS[value]()
    except KeyError:
        raise ValueError(
            f"unknown arbitration {value!r}; choose from {sorted(ARBITRATIONS)}"
        ) from None


class _Tenant:
    """Per-application state held by one node's composite policy."""

    __slots__ = ("policy", "share", "distance_of", "sizes", "used_mb")

    def __init__(
        self,
        policy: EvictionPolicy,
        share: float,
        distance_of: Callable[[int], float | None],
    ) -> None:
        self.policy = policy
        self.share = share
        self.distance_of = distance_of
        #: Sizes of this tenant's resident blocks (the store has already
        #: dropped a block when ``on_remove`` fires, so the composite
        #: keeps its own size map to maintain ``used_mb`` incrementally).
        self.sizes: dict[BlockId, float] = {}
        self.used_mb = 0.0


class ArbitratedNodePolicy(EvictionPolicy):
    """Composite per-node policy multiplexing tenant eviction policies."""

    name = "arbitrated"

    def __init__(self, arbitration: ArbitrationPolicy) -> None:
        self.arbitration = arbitration
        #: app_index -> tenant, in registration (= arrival) order.
        self._tenants: dict[int, _Tenant] = {}
        #: The shared store this composite manages (columnar or not),
        #: remembered so late-arriving tenants can be bound to it.
        self._raw_store: MemoryStore | None = None

    def bind_store(self, store: MemoryStore) -> None:
        """Bind the shared store and forward it to every tenant policy.

        Tenant policies maintain key columns on the shared columnar
        store for their own blocks; the single-tenant fast path then
        selects victims in batch exactly like a standalone node.
        """
        super().bind_store(store)
        self._raw_store = store
        for tenant in self._tenants.values():
            tenant.policy.bind_store(store)

    # ------------------------------------------------------------------
    # tenant lifecycle (driven by the multi-tenant engine)
    # ------------------------------------------------------------------
    def register_tenant(
        self,
        app_index: int,
        policy: EvictionPolicy,
        share: float = 1.0,
        distance_of: Callable[[int], float | None] | None = None,
    ) -> None:
        if app_index in self._tenants:
            raise ValueError(f"application {app_index} already registered")
        if share <= 0:
            raise ValueError("share must be positive")
        if self._raw_store is not None:
            policy.bind_store(self._raw_store)
        self._tenants[app_index] = _Tenant(
            policy, share, distance_of if distance_of is not None else _no_distance
        )

    def deregister_tenant(self, app_index: int) -> None:
        self._tenants.pop(app_index, None)

    def tenant_policy(self, app_index: int) -> EvictionPolicy:
        return self._tenants[app_index].policy

    def _tenant_of(self, rdd_id: int) -> _Tenant | None:
        return self._tenants.get(owner_of(rdd_id))

    # ------------------------------------------------------------------
    # event routing
    # ------------------------------------------------------------------
    def on_insert(self, block: Block) -> None:
        tenant = self._tenant_of(block.id.rdd_id)
        if tenant is None:
            return
        tenant.sizes[block.id] = block.size_mb
        tenant.used_mb += block.size_mb
        tenant.policy.on_insert(block)

    def on_access(self, block: Block) -> None:
        tenant = self._tenant_of(block.id.rdd_id)
        if tenant is not None:
            tenant.policy.on_access(block)

    def on_remove(self, block_id: BlockId) -> None:
        tenant = self._tenant_of(block_id.rdd_id)
        if tenant is None:
            return
        size = tenant.sizes.pop(block_id, None)
        if size is not None:
            tenant.used_mb -= size
            if tenant.used_mb < 1e-9:
                tenant.used_mb = 0.0
        tenant.policy.on_remove(block_id)

    def on_miss(self, block_id: BlockId) -> None:
        tenant = self._tenant_of(block_id.rdd_id)
        if tenant is not None:
            tenant.policy.on_miss(block_id)

    # ------------------------------------------------------------------
    # victim selection
    # ------------------------------------------------------------------
    def eviction_order(self, store: MemoryStore) -> Iterable[BlockId]:
        single = self._single_tenant()
        if single is not None:
            return single.policy.eviction_order(store)
        return (bid for bid, _ in self._arbitrated(store, frozenset(), False))

    def prefetch_eviction_order(self, store: MemoryStore) -> Iterable[BlockId]:
        single = self._single_tenant()
        if single is not None:
            return single.policy.prefetch_eviction_order(store)
        return (bid for bid, _ in self._arbitrated(store, frozenset(), True))

    def select_victims(
        self,
        store: MemoryStore,
        needed_mb: float,
        protect: frozenset[BlockId] = frozenset(),
        for_prefetch: bool = False,
    ) -> list[BlockId] | None:
        single = self._single_tenant()
        if single is not None:
            # Byte-identity fast path: with one tenant the composite is
            # a transparent wrapper over the tenant policy on the raw
            # store — same victims, same order, same refusals.
            return single.policy.select_victims(
                store, needed_mb, protect, for_prefetch
            )
        victims: list[BlockId] = []
        freed = 0.0
        stream = self._arbitrated(store, protect, for_prefetch)
        while freed < needed_mb:
            nxt = next(stream, None)
            if nxt is None:
                return None
            bid, size = nxt
            victims.append(bid)
            freed += size
        return victims

    def admit_over(
        self, block: Block, victims: list[BlockId], store: MemoryStore
    ) -> bool:
        return self._admit(block, victims, store, prefetch=False)

    def admit_prefetch_over(
        self, block: Block, victims: list[BlockId], store: MemoryStore
    ) -> bool:
        return self._admit(block, victims, store, prefetch=True)

    def _admit(
        self, block: Block, victims: list[BlockId], store: MemoryStore, prefetch: bool
    ) -> bool:
        own = owner_of(block.id.rdd_id)
        tenant = self._tenants.get(own)
        if tenant is None:
            return True
        if self._single_tenant() is not None:
            if prefetch:
                return tenant.policy.admit_prefetch_over(block, victims, store)
            return tenant.policy.admit_over(block, victims, store)
        # The owner only judges the displacement of its *own* blocks:
        # foreign victims were conceded by arbitration, and refusing an
        # insertion because another application loses cache would let a
        # tenant veto the sharing policy.
        same = [v for v in victims if owner_of(v.rdd_id) == own]
        view = TenantStoreView(store, own)
        if prefetch:
            return tenant.policy.admit_prefetch_over(block, same, view)
        return tenant.policy.admit_over(block, same, view)

    # ------------------------------------------------------------------
    def _single_tenant(self) -> _Tenant | None:
        if len(self._tenants) == 1:
            return next(iter(self._tenants.values()))
        return None

    def _arbitrated(
        self, store: MemoryStore, protect: frozenset[BlockId], for_prefetch: bool
    ) -> Iterator[tuple[BlockId, float]]:
        """Merge tenant candidate streams under the arbitration policy.

        Each tenant exposes its own eviction order over its namespace
        view; arbitration repeatedly picks which tenant's head candidate
        is evicted next.  Yields ``(block_id, size_mb)`` pairs of
        evictable (unpinned, unprotected) blocks, worst first.
        """
        streams: dict[int, Iterator[BlockId]] = {}
        usage: dict[int, float] = {}
        for app_index in sorted(self._tenants):
            tenant = self._tenants[app_index]
            view = TenantStoreView(store, app_index)
            order = (
                tenant.policy.prefetch_eviction_order(view)
                if for_prefetch
                else tenant.policy.eviction_order(view)
            )
            streams[app_index] = iter(order)
            usage[app_index] = tenant.used_mb

        heads: dict[int, BlockId] = {}

        def advance(app_index: int) -> None:
            for bid in streams[app_index]:
                if bid in protect or store.is_pinned(bid):
                    continue
                heads[app_index] = bid
                return

        for app_index in sorted(streams):
            advance(app_index)

        capacity = store.capacity_mb
        while heads:
            candidates = []
            for app_index in sorted(heads):
                tenant = self._tenants[app_index]
                bid = heads[app_index]
                dist = tenant.distance_of(bid.rdd_id)
                candidates.append(
                    VictimCandidate(
                        app_index=app_index,
                        block_id=bid,
                        size_mb=store.block(bid).size_mb,
                        used_mb=usage[app_index],
                        share=tenant.share,
                        distance=INFINITE if dist is None else dist,
                    )
                )
            pick = self.arbitration.pick(candidates, capacity)
            yield pick.block_id, pick.size_mb
            usage[pick.app_index] -= pick.size_mb
            del heads[pick.app_index]
            advance(pick.app_index)


def _no_distance(rdd_id: int) -> float | None:
    return None
