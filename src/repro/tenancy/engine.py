"""Multi-tenant simulation engine: concurrent applications, one cluster.

The single-application :class:`~repro.simulator.engine.SparkSimulator`
owns the whole cluster and runs its stages back to back.  This engine
runs *N* applications against one shared set of worker nodes:

* an :class:`~repro.tenancy.arrivals.ArrivalProcess` streams the
  applications in over simulated time;
* each application keeps its own driver state — DAGScheduler position,
  cache scheme (MRD table, profiler), control plane, per-app block
  managers — wrapped in an :class:`_AppDriver`, a ``SparkSimulator``
  whose lifecycle hooks are driven by this engine's global event loop
  instead of its own ``run()``;
* the worker nodes are shared: one memory/disk store and one disk I/O
  channel per node, with an
  :class:`~repro.tenancy.arbitration.ArbitratedNodePolicy` deciding
  *which application* yields cache space under pressure.

Global event loop
-----------------
One heap orders four event kinds: cluster **membership** changes
(timed joins and decommissions), stage **barriers** (an application's
active stage completed), application **arrivals**, and executor **slot**
frees.  Ties resolve membership < barrier < arrival < slot, then by
application index / node id, so the interleaving is fully deterministic.  Executor
slots are continuous shared resources: tasks from all applications
queue FIFO per node and any free slot runs the head task; a slot that
finds no work parks and is woken by the next enqueue.  Before a task
runs, every active application's control plane and due prefetches are
pumped (in arrival order) — the same peek-guarded pumping the
single-app event core does per task.

With a single application this loop reproduces the standalone engine's
scheduling decisions exactly — the equivalence suite asserts the full
``RunMetrics`` are byte-identical across all workloads and schemes.

Teardown: when an application finishes, its metrics are collected
first, then every block in its RDD namespace is dropped from the shared
stores and its tenant policies are deregistered — a finished tenant
neither holds cache nor participates in arbitration.

Elastic membership
------------------
Unlike the single-application engine's stage-boundary churn, a shared
cluster changes size at wall-clock *times*: :class:`TimedNodeJoin` and
:class:`TimedNodeDecommission` fire from the global heap, mid-stage if
need be.  A join appends one shared worker node and registers it with
every active application (each driver sends its own §4.4
``WorkerRegister``, receiving the current distance table); a
decommission hands each active application's resident blocks on that
node to its :class:`~repro.cluster.rebalance.RebalancePolicy`,
re-homes the node's queued tasks through each owner's placement, and
retires the slot permanently.  Applications arriving later build their
block-manager masters over the then-current live set.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.cluster.block_manager import BlockManager
from repro.cluster.block_manager_master import BlockManagerMaster
from repro.cluster.cluster import Cluster, ClusterConfig, build_cluster, make_worker
from repro.cluster.placement import PLACEMENTS
from repro.cluster.rebalance import REBALANCES
from repro.control.messages import (
    ControlMessage,
    StageBoundary,
    WorkerDeregister,
    WorkerRegister,
)
from repro.control.plane import RpcConfig
from repro.dag.dag_builder import ApplicationDAG, build_dag
from repro.dag.structures import Stage
from repro.policies.base import EvictionPolicy
from repro.simulator.engine import SparkSimulator
from repro.simulator.metrics import RunMetrics
from repro.sweep.schemes import SchemeLike, resolve_scheme
from repro.tenancy.arbitration import (
    RDD_NAMESPACE_STRIDE,
    ArbitratedNodePolicy,
    ArbitrationPolicy,
    build_arbitration,
    namespace_of,
    owner_of,
)
from repro.tenancy.arrivals import ArrivalProcess, FixedArrivals
from repro.tenancy.metrics import MultiTenantMetrics
from repro.trace.events import BlockMigrate
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import build_workload

#: Event-kind priorities at equal times: change the cluster first, then
#: finish/advance stages, then admit new applications, then dispatch
#: tasks.
_MEMBER, _BARRIER, _ARRIVAL, _SLOT = 0, 1, 2, 3


@dataclass(frozen=True)
class TimedNodeJoin:
    """Grow the shared cluster at simulated time ``at``.

    ``node_id`` pins the joining node's id (a decommissioned slot may
    rejoin); ``None`` opens the next fresh slot.
    """

    at: float
    node_id: int | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if self.node_id is not None and self.node_id < 0:
            raise ValueError("node_id must be non-negative")


@dataclass(frozen=True)
class TimedNodeDecommission:
    """Permanently remove a shared node at simulated time ``at``.

    ``None`` sheds the highest live node id (the autoscaler shape).
    """

    at: float
    node_id: int | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if self.node_id is not None and self.node_id < 0:
            raise ValueError("node_id must be non-negative")


TimedMembershipEvent = TimedNodeJoin | TimedNodeDecommission


@dataclass(frozen=True)
class AppSpec:
    """One application submitted to the shared cluster."""

    workload: str
    scheme: SchemeLike = "LRU"
    scale: float = 1.0
    iterations: int | None = None
    partitions: int = 8
    seed: int = 0
    #: Cache share weight under share-based arbitration (static/maxmin).
    share: float = 1.0

    def __post_init__(self) -> None:
        if self.share <= 0:
            raise ValueError("share must be positive")
        # Fail fast on unknown scheme names (before any simulation).
        resolve_scheme(self.scheme)

    def params(self) -> WorkloadParams:
        return WorkloadParams(
            scale=self.scale,
            iterations=self.iterations,
            partitions=self.partitions,
            seed=self.seed,
        )


class _AppDriver(SparkSimulator):
    """Per-application simulator state, driven by the global loop.

    Overrides exactly two behaviours of the standalone engine: the
    cluster it builds (a shared-node facade from the tenancy engine)
    and distance-table delivery (routed to this application's own
    tenant policy rather than the node's composite policy).
    """

    def __init__(
        self, sim: MultiTenantSimulator, app_index: int, *args, **kwargs
    ) -> None:
        super().__init__(*args, **kwargs)
        self._sim = sim
        self.app_id = app_index
        self._metrics_app_id = app_index
        #: This application's per-node eviction policies (registered as
        #: tenants of the shared nodes' composite policies).
        self._tenant_policies: list[EvictionPolicy] = []

    def _build_cluster(self) -> Cluster:
        return self._sim._attach(self)

    def _deliver_table(self, msg: ControlMessage, t: float) -> bool:
        assert isinstance(msg, StageBoundary)
        applied = self._tenant_policies[msg.node_id].on_table_update(
            msg.seq, msg.distances
        )
        return applied is False

    def run(self) -> RunMetrics:  # pragma: no cover - misuse guard
        raise RuntimeError(
            "_AppDriver is driven by MultiTenantSimulator; call its run()"
        )


@dataclass
class _AppState:
    """Bookkeeping for one application inside the global loop."""

    index: int
    spec: AppSpec
    dag: ApplicationDAG
    driver: _AppDriver
    stages: list[Stage]
    master: BlockManagerMaster | None = None
    arrival: float = 0.0
    finish: float = 0.0
    stage_idx: int = 0
    remaining: int = 0
    stage_start: float = 0.0
    stage_end: float = 0.0
    metrics: RunMetrics | None = None


#: One queued task: (not_before, app_index, stage, partition, fixed_cost).
_QueueItem = tuple[float, int, Stage, int, float]


@dataclass
class _RunState:
    """Per-run mutable state (a fresh one per :meth:`run` call)."""

    apps: list[_AppState]
    nodes: list
    heap: list[tuple[float, int, int]] = field(default_factory=list)
    queues: list[deque[_QueueItem]] = field(default_factory=list)
    #: Free times of idle (parked) executor slots, per node.
    parked: list[list[float]] = field(default_factory=list)
    active: list[_AppState] = field(default_factory=list)
    #: Node ids decommissioned so far (slots persist; liveness does not).
    dead: set[int] = field(default_factory=set)


class MultiTenantSimulator:
    """Runs several applications concurrently on one shared cluster."""

    def __init__(
        self,
        apps: list[AppSpec] | tuple[AppSpec, ...],
        cluster_config: ClusterConfig,
        arrivals: ArrivalProcess | None = None,
        arbitration: str | ArbitrationPolicy = "static",
        control_plane: str = "instant",
        control_config: RpcConfig | None = None,
        promote_on_miss: bool = True,
        placement: str = "stride",
        memberships: list[TimedMembershipEvent] | tuple[TimedMembershipEvent, ...] = (),
        rebalance: str = "drop",
    ) -> None:
        if not apps:
            raise ValueError("a multi-tenant run needs at least one application")
        if placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r} (choose from {PLACEMENTS})")
        if rebalance not in REBALANCES:
            raise ValueError(f"unknown rebalance {rebalance!r} (choose from {REBALANCES})")
        for event in memberships:
            if not isinstance(event, (TimedNodeJoin, TimedNodeDecommission)):
                raise TypeError(
                    "memberships must be TimedNodeJoin/TimedNodeDecommission, "
                    f"got {event!r}"
                )
        self.apps = tuple(apps)
        self.cluster_config = cluster_config
        self.arrivals = arrivals if arrivals is not None else FixedArrivals()
        self.arbitration = build_arbitration(arbitration)
        self.control_plane = control_plane
        self.control_config = control_config
        self.promote_on_miss = promote_on_miss
        self.placement = placement
        self.memberships = tuple(memberships)
        self.rebalance = rebalance
        self._state: _RunState | None = None

    # ------------------------------------------------------------------
    def run(self) -> MultiTenantMetrics:
        """Simulate every application; returns the aggregate metrics."""
        state = self._setup()
        times = self.arrivals.times(len(self.apps))
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("arrival times must be non-decreasing")
        heap = state.heap
        for app, t in zip(state.apps, times):
            if t < 0:
                raise ValueError("arrival times must be non-negative")
            heapq.heappush(heap, (t, _ARRIVAL, app.index))
        for i, event in enumerate(self.memberships):
            heapq.heappush(heap, (event.at, _MEMBER, i))
        while heap:
            t, kind, key = heapq.heappop(heap)
            if kind == _MEMBER:
                self._on_membership(key, t)
            elif kind == _BARRIER:
                self._on_barrier(key, t)
            elif kind == _ARRIVAL:
                self._on_arrival(key, t)
            else:
                self._on_slot(key, t)
        apps = tuple(app.metrics for app in state.apps)
        assert all(m is not None for m in apps)
        makespan = max((app.finish for app in state.apps), default=0.0)
        # The drained state is kept around for post-run inspection (the
        # isolation tests assert stores are empty and tenants gone); a
        # subsequent run() rebuilds everything from scratch in _setup().
        return MultiTenantMetrics(
            arbitration=self.arbitration.name,
            arrival_process=self.arrivals.name,
            makespan=makespan,
            apps=apps,
        )

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _setup(self) -> _RunState:
        # Shared nodes with one composite (arbitrated) policy each; the
        # base cluster's own master is discarded — block routing happens
        # through each application's private master over the same nodes.
        base = build_cluster(
            self.cluster_config,
            lambda node_id: ArbitratedNodePolicy(self.arbitration),
        )
        apps = []
        for index, spec in enumerate(self.apps):
            application = build_workload(
                spec.workload,
                spec.params(),
                first_rdd_id=index * RDD_NAMESPACE_STRIDE,
            )
            dag = build_dag(application)
            driver = _AppDriver(
                self,
                index,
                dag,
                self.cluster_config,
                resolve_scheme(spec.scheme).build(),
                promote_on_miss=self.promote_on_miss,
                control_plane=self.control_plane,
                control_config=self.control_config,
                placement=self.placement,
                rebalance=self.rebalance,
            )
            apps.append(
                _AppState(
                    index=index,
                    spec=spec,
                    dag=dag,
                    driver=driver,
                    stages=list(dag.active_stages),
                )
            )
        state = _RunState(apps=apps, nodes=base.nodes)
        state.queues = [deque() for _ in base.nodes]
        state.parked = [[0.0] * node.num_slots for node in base.nodes]
        self._state = state
        return state

    def _attach(self, driver: _AppDriver) -> Cluster:
        """Register ``driver``'s application as a tenant; build its
        per-app cluster facade over the shared nodes."""
        state = self._state
        assert state is not None
        app = state.apps[driver.app_id]
        policies = [
            driver.scheme.policy_factory(node.node_id) for node in state.nodes
        ]
        driver._tenant_policies = policies
        for node, policy in zip(state.nodes, policies):
            composite = node.policy
            assert isinstance(composite, ArbitratedNodePolicy)
            composite.register_tenant(
                app.index,
                policy,
                share=app.spec.share,
                distance_of=driver.scheme.reference_distance,
            )
        master = BlockManagerMaster(state.nodes, placement=self.placement)
        # A late arrival joins the cluster as it is *now*: nodes already
        # decommissioned are dead slots from this application's first
        # breath (they never take placement, never run its tasks).
        for node_id in sorted(state.dead):
            master.decommission_node(node_id)
        for mgr in master.managers:
            mgr.eviction_router = self._router_for(mgr.node.node_id)
        app.master = master
        return Cluster(config=self.cluster_config, nodes=state.nodes, master=master)

    def _router_for(self, node_id: int):
        """Eviction router: charge an evicted block to its owner app."""

        def route(block_id) -> BlockManager | None:
            state = self._state
            if state is None:
                return None
            owner = owner_of(block_id.rdd_id)
            if 0 <= owner < len(state.apps):
                master = state.apps[owner].master
                if master is not None:
                    return master.managers[node_id]
            return None

        return route

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, index: int, t: float) -> None:
        state = self._state
        assert state is not None
        app = state.apps[index]
        app.arrival = t
        state.active.append(app)
        app.driver._start_run(t)
        if state.dead:
            # _start_run resets the churn flags after _build_cluster, so
            # the presence weighting must be re-armed here: dead slots
            # contribute zero presence to this app's mean hit ratio.
            app.driver._membership_changed = True
        if not app.stages:
            self._finish_app(app, t)
            return
        first = app.stages[0]
        app.driver._begin_stage(first, t)
        self._enqueue_stage(app, first, t)

    def _on_barrier(self, index: int, t: float) -> None:
        state = self._state
        assert state is not None
        app = state.apps[index]
        stage = app.stages[app.stage_idx]
        driver = app.driver
        for rdd in stage.cache_writes:
            driver.scheme.on_block_created(rdd.id)
        driver._record_stage(stage, app.stage_start, t)
        app.stage_idx += 1
        if app.stage_idx < len(app.stages):
            nxt = app.stages[app.stage_idx]
            driver._begin_stage(nxt, t)
            self._enqueue_stage(app, nxt, t)
        else:
            self._finish_app(app, t)

    def _on_slot(self, node_id: int, t0: float) -> None:
        state = self._state
        assert state is not None
        queue = state.queues[node_id]
        if not queue:
            state.parked[node_id].append(t0)
            return
        head_not_before = queue[0][0]
        if head_not_before > t0:
            heapq.heappush(state.heap, (head_not_before, _SLOT, node_id))
            return
        # Peek-guarded pumping, in application arrival order: control
        # deliveries first (a delivered prefetch order may push an
        # already-due completion), then due prefetch completions —
        # exactly the standalone event core's per-task sequence.
        for active in state.active:
            driver = active.driver
            control = driver.control
            if control.heap and control.heap[0][0] <= t0:
                control.pump(t0)
            prefetch_heap = driver._prefetch_heap
            if prefetch_heap and prefetch_heap[0][0] <= t0:
                driver._apply_due_prefetches(t0)
        _, app_index, stage, partition, fixed = queue.popleft()
        app = state.apps[app_index]
        t_end = app.driver._run_task(stage, partition, node_id, t0, fixed)
        heapq.heappush(state.heap, (t_end, _SLOT, node_id))
        if t_end > app.stage_end:
            app.stage_end = t_end
        app.remaining -= 1
        if app.remaining == 0:
            heapq.heappush(state.heap, (app.stage_end, _BARRIER, app.index))

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def _on_membership(self, index: int, t: float) -> None:
        event = self.memberships[index]
        if isinstance(event, TimedNodeJoin):
            self._join_shared_node(event.node_id, t)
        else:
            self._decommission_shared_node(event.node_id, t)

    def _join_shared_node(self, node_id: int | None, t: float) -> None:
        """Grow the shared node set; every active application registers
        the newcomer as a tenant target (its own §4.4 path)."""
        state = self._state
        assert state is not None
        if node_id is None:
            node_id = len(state.nodes)
        if node_id < len(state.nodes):
            if node_id not in state.dead:
                return  # pinned join of a live node: nothing to do
            node = state.nodes[node_id]  # a decommissioned slot rejoins
            state.dead.discard(node_id)
        elif node_id == len(state.nodes):
            node = make_worker(
                self.cluster_config,
                node_id,
                lambda nid: ArbitratedNodePolicy(self.arbitration),
            )
            state.nodes.append(node)
            state.queues.append(deque())
            state.parked.append([t] * node.num_slots)
        else:
            raise ValueError(
                f"join of node {node_id} does not extend the cluster "
                f"(next free id is {len(state.nodes)})"
            )
        for app in state.active:
            driver = app.driver
            master = app.master
            assert master is not None
            # A fresh slot needs this application's tenant policy on the
            # node's composite; a rejoining slot keeps the (emptied) one
            # it had, exactly like the standalone engine reuses a
            # decommissioned node's policy.
            while len(driver._tenant_policies) <= node_id:
                nid = len(driver._tenant_policies)
                policy = driver.scheme.policy_factory(nid)
                driver._tenant_policies.append(policy)
                composite = state.nodes[nid].policy
                assert isinstance(composite, ArbitratedNodePolicy)
                composite.register_tenant(
                    app.index,
                    policy,
                    share=app.spec.share,
                    distance_of=driver.scheme.reference_distance,
                )
            mgr = master.add_node(node)
            mgr.eviction_router = self._router_for(node_id)
            mgr.distance_source = driver.scheme.reference_distance
            rec = driver.recorder
            if rec.enabled:
                mgr.recorder = rec
            while len(driver._live_time) < master.num_nodes:
                driver._live_time.append(0.0)
                driver._live_since.append(t)
            driver._live_since[node_id] = t
            driver._membership_changed = True
            driver._nodes_joined += 1
            driver._plan_stage = None
            driver._plan = None
            driver.control.send(
                WorkerRegister(
                    sent_at=t, node_id=node_id, reason="join", app_id=driver.app_id
                ),
                driver._deliver_register,
            )

    def _decommission_shared_node(self, node_id: int | None, t: float) -> None:
        """Retire a shared node: rebalance each active application's
        resident blocks through its own policy and placement, re-home
        the node's queued tasks, then drop the slot from liveness."""
        state = self._state
        assert state is not None
        live = [i for i in range(len(state.nodes)) if i not in state.dead]
        if node_id is None:
            node_id = live[-1]  # autoscaler shape: shed the newest node
        if node_id in state.dead or node_id >= len(state.nodes) or len(live) <= 1:
            return  # already gone, unknown, or the last node must stay
        node = state.nodes[node_id]
        for app in state.active:
            driver = app.driver
            master = app.master
            assert master is not None
            mgr = master.managers[node_id]
            rec = driver.recorder
            if rec.enabled:
                rec.now = t
            for bid in list(mgr.inflight_prefetch):
                mgr.cancel_inflight(bid, reason="decommissioned")
            lo, hi = namespace_of(app.index)
            resident = [b for b in node.memory.blocks() if lo <= b.id.rdd_id < hi]
            master.decommission_node(node_id)
            selected = driver.rebalance.select(
                resident, lambda b: driver.scheme.reference_distance(b.id.rdd_id)
            )
            network = driver.cost.network
            for block in selected:
                dest_id = master.home_node_id(block.id)
                dest = master.managers[dest_id]
                dest.node.io_free_at = (
                    max(dest.node.io_free_at, t)
                    + network.transfer_time(block.size_mb)
                )
                dest.insert_cached(block)
                driver._rebalanced_blocks += 1
                driver._rebalanced_mb += block.size_mb
                if rec.enabled:
                    rec.emit(BlockMigrate(
                        t=t, rdd_id=block.id.rdd_id, partition=block.id.partition,
                        from_node=node_id, to_node=dest_id, size_mb=block.size_mb,
                    ))
            driver._decommission_dropped += len(resident) - len(selected)
            driver._live_time[node_id] += t - driver._live_since[node_id]
            driver._membership_changed = True
            driver._nodes_decommissioned += 1
            driver._plan_stage = None
            driver._plan = None
            driver.control.send(
                WorkerDeregister(
                    sent_at=t, node_id=node_id,
                    reason="decommission", app_id=driver.app_id,
                ),
                driver._deliver_deregister,
            )
        # The node's stores leave with it (unmigrated blocks die here).
        for bid in list(node.memory.block_ids()):
            node.memory.remove(bid)
        for bid in list(node.disk.block_ids()):
            node.disk.remove(bid)
        node.io_free_at = 0.0
        state.dead.add(node_id)
        # Re-home the dead node's queued tasks through each owner's new
        # placement, FIFO order preserved per destination.  Slots busy on
        # this node finish their current task, then park forever (nothing
        # enqueues to a dead node) — unless the slot rejoins later.
        queue = state.queues[node_id]
        fixed_cache: dict[tuple[int, int], list[float]] = {}
        while queue:
            not_before, app_index, stage, partition, _ = queue.popleft()
            app = state.apps[app_index]
            master = app.master
            assert master is not None
            new_node = master.task_node_id(partition)
            key = (app_index, stage.seq)
            if key not in fixed_cache:
                fixed_cache[key] = app.driver._stage_costs(stage)
            state.queues[new_node].append(
                (not_before, app_index, stage, partition, fixed_cache[key][new_node])
            )
            self._wake_node(new_node, t)
        # Idle slots stay parked (never woken: nothing enqueues to a dead
        # node), so a later rejoin of this slot finds them intact.

    # ------------------------------------------------------------------
    # stage and application lifecycle
    # ------------------------------------------------------------------
    def _enqueue_stage(self, app: _AppState, stage: Stage, now: float) -> None:
        state = self._state
        assert state is not None
        driver = app.driver
        fixed = driver._stage_costs(stage)
        pending = driver._pending_by_node(stage)
        app.remaining = stage.num_tasks
        app.stage_start = now
        app.stage_end = now
        if stage.num_tasks == 0:
            heapq.heappush(state.heap, (now, _BARRIER, app.index))
            return
        for node_id, partitions in enumerate(pending):
            if not partitions:
                continue
            queue = state.queues[node_id]
            for partition in partitions:
                queue.append((now, app.index, stage, partition, fixed[node_id]))
            self._wake_node(node_id, now)

    def _wake_node(self, node_id: int, now: float) -> None:
        """Unpark every idle slot of ``node_id`` at ``max(free, now)``."""
        state = self._state
        assert state is not None
        parked = state.parked[node_id]
        if not parked:
            return
        for free in parked:
            heapq.heappush(state.heap, (max(free, now), _SLOT, node_id))
        parked.clear()

    def _finish_app(self, app: _AppState, t: float) -> None:
        state = self._state
        assert state is not None
        app.metrics = app.driver._finish_run(t)
        app.finish = t
        # In-flight prefetches are abandoned, exactly as a standalone
        # run ends with transfers still on the wire (the channel time
        # they reserved stays reserved — the I/O physically happened).
        master = app.master
        assert master is not None
        for mgr in master.managers:
            mgr.inflight_prefetch.clear()
        # Teardown: the namespace leaves memory and disk, then the
        # tenant leaves arbitration.  Removal order matters — dropping
        # blocks first keeps on_remove routing to a live tenant.
        lo, hi = namespace_of(app.index)
        master.drop_rdd_range(lo, hi)
        for node in state.nodes:
            composite = node.policy
            assert isinstance(composite, ArbitratedNodePolicy)
            composite.deregister_tenant(app.index)
        app.master = None
        state.active.remove(app)


def simulate_multi_tenant(
    apps: list[AppSpec] | tuple[AppSpec, ...],
    cluster_config: ClusterConfig,
    **kwargs,
) -> MultiTenantMetrics:
    """One-shot convenience wrapper around :class:`MultiTenantSimulator`."""
    return MultiTenantSimulator(apps, cluster_config, **kwargs).run()
