"""Multi-tenant cluster mode: concurrent applications on one cluster.

Applications stream into a shared cluster under a seeded
:mod:`~repro.tenancy.arrivals` process; each keeps its own driver state
while the worker nodes' memory is shared, with an
:mod:`~repro.tenancy.arbitration` policy deciding which application
yields cache under pressure.  See ``docs/multitenancy.md``.
"""

from repro.tenancy.arbitration import (
    ARBITRATIONS,
    RDD_NAMESPACE_STRIDE,
    ArbitratedNodePolicy,
    ArbitrationPolicy,
    GlobalDistance,
    MaxMinFair,
    StaticShares,
    TenantStoreView,
    VictimCandidate,
    build_arbitration,
    namespace_of,
    owner_of,
)
from repro.tenancy.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    EmpiricalArrivals,
    FixedArrivals,
    PoissonArrivals,
    TraceArrivals,
    build_arrivals,
)
from repro.tenancy.engine import (
    AppSpec,
    MultiTenantSimulator,
    TimedNodeDecommission,
    TimedNodeJoin,
    simulate_multi_tenant,
)
from repro.tenancy.metrics import (
    MultiTenantMetrics,
    mt_metrics_from_dict,
    mt_metrics_to_dict,
    percentile,
)

__all__ = [
    "ARBITRATIONS",
    "ARRIVAL_KINDS",
    "AppSpec",
    "ArbitratedNodePolicy",
    "ArbitrationPolicy",
    "ArrivalProcess",
    "EmpiricalArrivals",
    "FixedArrivals",
    "GlobalDistance",
    "MaxMinFair",
    "MultiTenantMetrics",
    "MultiTenantSimulator",
    "PoissonArrivals",
    "RDD_NAMESPACE_STRIDE",
    "StaticShares",
    "TenantStoreView",
    "TimedNodeDecommission",
    "TimedNodeJoin",
    "TraceArrivals",
    "VictimCandidate",
    "build_arbitration",
    "build_arrivals",
    "mt_metrics_from_dict",
    "mt_metrics_to_dict",
    "namespace_of",
    "owner_of",
    "percentile",
    "simulate_multi_tenant",
]
