"""Application arrival processes for the multi-tenant simulator.

A shared cluster does not receive its applications all at once: they
stream in.  An :class:`ArrivalProcess` turns "N applications" into N
deterministic arrival times, so offered load becomes a first-class
experimental knob (``repro.experiments.fig_load`` sweeps it).

Determinism contract: every stochastic process draws from a fresh
``random.Random(seed)`` created *inside* :meth:`times` — two calls with
the same ``n`` return identical times, and no draw ever touches the
process-global RNG (DET001).
"""

from __future__ import annotations

import abc
import random
from collections.abc import Sequence


class ArrivalProcess(abc.ABC):
    """Maps an application count to sorted, non-negative arrival times."""

    name: str = "arrivals"

    @abc.abstractmethod
    def times(self, n: int) -> list[float]:
        """Arrival times of the first ``n`` applications (non-decreasing)."""

    def _check(self, n: int) -> None:
        if n < 0:
            raise ValueError("application count must be non-negative")


class FixedArrivals(ArrivalProcess):
    """Evenly spaced arrivals; ``interval=0`` submits everything at once."""

    name = "fixed"

    def __init__(self, interval: float = 0.0, start: float = 0.0) -> None:
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if start < 0:
            raise ValueError("start must be non-negative")
        self.interval = interval
        self.start = start

    def times(self, n: int) -> list[float]:
        self._check(n)
        return [self.start + i * self.interval for i in range(n)]


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate`` applications per simulated second.

    The canonical open-system load model: interarrival gaps are i.i.d.
    exponential with mean ``1/rate``, so sweeping ``rate`` sweeps the
    offered load directly.
    """

    name = "poisson"

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.seed = seed

    def times(self, n: int) -> list[float]:
        self._check(n)
        rng = random.Random(self.seed)
        t = 0.0
        out: list[float] = []
        for _ in range(n):
            t += rng.expovariate(self.rate)
            out.append(t)
        return out


class TraceArrivals(ArrivalProcess):
    """Replay recorded interarrival gaps, cycling when the trace is short.

    ``interarrivals`` are the gaps between consecutive submissions of a
    real cluster trace (seconds); the first application arrives after
    the first gap, mirroring :class:`PoissonArrivals`' convention.
    """

    name = "trace"

    def __init__(self, interarrivals: Sequence[float], start: float = 0.0) -> None:
        gaps = [float(g) for g in interarrivals]
        if not gaps:
            raise ValueError("trace arrivals need at least one interarrival gap")
        if any(g < 0 for g in gaps):
            raise ValueError("interarrival gaps must be non-negative")
        if start < 0:
            raise ValueError("start must be non-negative")
        self.interarrivals = gaps
        self.start = start

    def times(self, n: int) -> list[float]:
        self._check(n)
        t = self.start
        out: list[float] = []
        for i in range(n):
            t += self.interarrivals[i % len(self.interarrivals)]
            out.append(t)
        return out


class EmpiricalArrivals(ArrivalProcess):
    """Seeded bootstrap over recorded interarrival gaps.

    Unlike :class:`TraceArrivals` (which replays the gap sequence
    verbatim), this resamples gaps with replacement — the trace's
    burstiness is preserved in distribution while the specific ordering
    is broken, which is the standard way to generate "more load like
    this trace" than the trace itself contains.
    """

    name = "empirical"

    def __init__(self, interarrivals: Sequence[float], seed: int = 0) -> None:
        gaps = [float(g) for g in interarrivals]
        if not gaps:
            raise ValueError("empirical arrivals need at least one gap")
        if any(g < 0 for g in gaps):
            raise ValueError("interarrival gaps must be non-negative")
        self.interarrivals = gaps
        self.seed = seed

    def times(self, n: int) -> list[float]:
        self._check(n)
        rng = random.Random(self.seed)
        t = 0.0
        out: list[float] = []
        for _ in range(n):
            t += rng.choice(self.interarrivals)
            out.append(t)
        return out


#: Arrival-process kinds the CLI and experiment drivers resolve against.
ARRIVAL_KINDS: tuple[str, ...] = ("fixed", "poisson", "trace", "empirical")


def build_arrivals(kind: str, **kwargs) -> ArrivalProcess:
    """Construct an arrival process by kind name (CLI helper)."""
    if kind == "fixed":
        return FixedArrivals(**kwargs)
    if kind == "poisson":
        return PoissonArrivals(**kwargs)
    if kind == "trace":
        return TraceArrivals(**kwargs)
    if kind == "empirical":
        return EmpiricalArrivals(**kwargs)
    raise ValueError(f"unknown arrival kind {kind!r}; choose from {ARRIVAL_KINDS}")
