"""Cache-policy protocol shared by all eviction policies.

A policy instance manages the metadata for *one* node's memory store
(mirroring the paper, where eviction decisions are made locally by each
CacheMonitor / BlockManager).  DAG-aware policies additionally receive
stage-advance notifications routed from the centralized manager so they
can update reference counts / distances as the application progresses.

The store calls the policy on every insert/access/remove; when space is
needed it asks for victims.  Policies never mutate the store directly —
they only rank blocks.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable, Mapping
from typing import TYPE_CHECKING


if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore


class EvictionPolicy(abc.ABC):
    """Ranks cached blocks for eviction on a single node."""

    #: Human-readable policy name used in reports and figures.
    name: str = "base"

    @abc.abstractmethod
    def on_insert(self, block: Block) -> None:
        """A block was inserted into the store."""

    @abc.abstractmethod
    def on_access(self, block: Block) -> None:
        """A cached block was read (cache hit)."""

    @abc.abstractmethod
    def on_remove(self, block_id: BlockId) -> None:
        """A block left the store (evicted or purged)."""

    def on_miss(self, block_id: BlockId) -> None:
        """A read request missed the store (optional hook).

        Lets trace-tracking policies observe the complete access
        sequence, not just the hits.
        """

    @abc.abstractmethod
    def eviction_order(self, store: MemoryStore) -> Iterable[BlockId]:
        """Blocks in the order they should be evicted (worst first)."""

    def advance_stage(self, seq: int) -> None:
        """The application moved to active stage ``seq`` (optional hook)."""

    def on_table_update(self, seq: int, distances: Mapping[int, float]) -> bool:
        """A driver distance-table broadcast reached this node.

        Distance-view policies (MRD's CacheMonitor) replace their local
        reference-distance snapshot here; everyone else ignores it.
        Returns ``False`` when the broadcast was older than the view
        already held (a stale, reordered delivery), ``True`` otherwise.
        """
        return True

    def admit_over(self, block: Block, victims: list[BlockId], store: MemoryStore) -> bool:
        """Should ``block`` be inserted at the cost of evicting ``victims``?

        Default (Spark semantics): always admit — insertion pressure
        simply evicts whatever the policy ranks worst.  Value-aware
        policies override this to refuse insertions that would evict
        more valuable blocks (the CacheMonitor's "local decision" when
        memory pressure forces an eviction), which is what keeps a
        stable resident subset instead of churning it.
        """
        return True

    def prefetch_eviction_order(self, store: MemoryStore) -> Iterable[BlockId]:
        """Victim order for *prefetch-triggered* insertions.

        Defaults to the normal eviction order.  The paper's prefetching
        workflow evicts the largest-reference-distance block when a
        prefetch forces memory pressure, even when demand evictions
        follow the default LRU — the prefetch-only MRD variant overrides
        this hook to get that behaviour.
        """
        return self.eviction_order(store)

    def admit_prefetch_over(self, block: Block, victims: list[BlockId], store: MemoryStore) -> bool:
        """Admission rule for prefetch-triggered insertions."""
        return self.admit_over(block, victims, store)

    def select_victims(
        self,
        store: MemoryStore,
        needed_mb: float,
        protect: frozenset[BlockId] = frozenset(),
        for_prefetch: bool = False,
    ) -> list[BlockId] | None:
        """Pick blocks to evict to free ``needed_mb``.

        Walks :meth:`eviction_order` (or :meth:`prefetch_eviction_order`
        when ``for_prefetch``), skipping pinned/protected blocks, until
        enough space is accumulated.  Returns ``None`` when the
        evictable blocks cannot cover the request (the caller then
        refuses the insertion, like Spark's ``MemoryStore``).
        """
        order = (
            self.prefetch_eviction_order(store)
            if for_prefetch
            else self.eviction_order(store)
        )
        victims: list[BlockId] = []
        freed = 0.0
        for bid in order:
            if freed >= needed_mb:
                break
            if bid in protect or store.is_pinned(bid):
                continue
            victims.append(bid)
            freed += store.block(bid).size_mb
        if freed >= needed_mb:
            return victims
        return None


PolicyFactory = Callable[[int], EvictionPolicy]
"""Creates the policy instance for node ``node_id``."""
