"""Cache-policy protocol shared by all eviction policies.

A policy instance manages the metadata for *one* node's memory store
(mirroring the paper, where eviction decisions are made locally by each
CacheMonitor / BlockManager).  DAG-aware policies additionally receive
stage-advance notifications routed from the centralized manager so they
can update reference counts / distances as the application progresses.

The store calls the policy on every insert/access/remove; when space is
needed it asks for victims.  Policies never mutate the store directly —
they only rank blocks.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable, Mapping
from typing import TYPE_CHECKING


if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore


class BatchUnsupported:
    """Sentinel: the policy cannot answer this selection in batch.

    Distinct from ``None`` (a *refusal*: the evictable blocks cannot
    cover the request) — receiving this sentinel means the caller must
    fall back to the per-object reference walk.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "BATCH_UNSUPPORTED"


#: Shared sentinel returned by :meth:`EvictionPolicy.select_victims_batch`.
BATCH_UNSUPPORTED = BatchUnsupported()


class EvictionPolicy(abc.ABC):
    """Ranks cached blocks for eviction on a single node."""

    #: Human-readable policy name used in reports and figures.
    name: str = "base"

    #: Columnar store this policy keeps key columns on (None = object path).
    _store: MemoryStore | None = None

    def bind_store(self, store: MemoryStore) -> None:
        """The store this policy manages was constructed.

        Vectorized policies remember columnar stores so their
        ``on_insert``/``on_access`` hooks can maintain the store's key
        columns; a non-columnar store leaves the policy on the
        per-object reference path.
        """
        self._store = store if store.columnar else None

    @abc.abstractmethod
    def on_insert(self, block: Block) -> None:
        """A block was inserted into the store."""

    @abc.abstractmethod
    def on_access(self, block: Block) -> None:
        """A cached block was read (cache hit)."""

    @abc.abstractmethod
    def on_remove(self, block_id: BlockId) -> None:
        """A block left the store (evicted or purged)."""

    def on_miss(self, block_id: BlockId) -> None:
        """A read request missed the store (optional hook).

        Lets trace-tracking policies observe the complete access
        sequence, not just the hits.
        """

    @abc.abstractmethod
    def eviction_order(self, store: MemoryStore) -> Iterable[BlockId]:
        """Blocks in the order they should be evicted (worst first)."""

    def advance_stage(self, seq: int) -> None:
        """The application moved to active stage ``seq`` (optional hook)."""

    def on_table_update(self, seq: int, distances: Mapping[int, float]) -> bool:
        """A driver distance-table broadcast reached this node.

        Distance-view policies (MRD's CacheMonitor) replace their local
        reference-distance snapshot here; everyone else ignores it.
        Returns ``False`` when the broadcast was older than the view
        already held (a stale, reordered delivery), ``True`` otherwise.
        """
        return True

    def admit_over(self, block: Block, victims: list[BlockId], store: MemoryStore) -> bool:
        """Should ``block`` be inserted at the cost of evicting ``victims``?

        Default (Spark semantics): always admit — insertion pressure
        simply evicts whatever the policy ranks worst.  Value-aware
        policies override this to refuse insertions that would evict
        more valuable blocks (the CacheMonitor's "local decision" when
        memory pressure forces an eviction), which is what keeps a
        stable resident subset instead of churning it.
        """
        return True

    def prefetch_eviction_order(self, store: MemoryStore) -> Iterable[BlockId]:
        """Victim order for *prefetch-triggered* insertions.

        Defaults to the normal eviction order.  The paper's prefetching
        workflow evicts the largest-reference-distance block when a
        prefetch forces memory pressure, even when demand evictions
        follow the default LRU — the prefetch-only MRD variant overrides
        this hook to get that behaviour.
        """
        return self.eviction_order(store)

    def admit_prefetch_over(self, block: Block, victims: list[BlockId], store: MemoryStore) -> bool:
        """Admission rule for prefetch-triggered insertions."""
        return self.admit_over(block, victims, store)

    def select_victims(
        self,
        store: MemoryStore,
        needed_mb: float,
        protect: frozenset[BlockId] = frozenset(),
        for_prefetch: bool = False,
    ) -> list[BlockId] | None:
        """Pick blocks to evict to free ``needed_mb``.

        Walks :meth:`eviction_order` (or :meth:`prefetch_eviction_order`
        when ``for_prefetch``), skipping pinned/protected blocks, until
        enough space is accumulated.  Returns ``None`` when the
        evictable blocks cannot cover the request (the caller then
        refuses the insertion, like Spark's ``MemoryStore``).

        Policies that maintain key columns on a columnar store answer
        via :meth:`select_victims_batch` first; this walk is the
        executable reference spec the batch path must match
        byte-for-byte, and the fallback whenever batching is
        unsupported for the given store.
        """
        batched = self.select_victims_batch(store, needed_mb, protect, for_prefetch)
        if not isinstance(batched, BatchUnsupported):
            return batched
        return self._select_victims_walk(store, needed_mb, protect, for_prefetch)

    def _select_victims_walk(
        self,
        store: MemoryStore,
        needed_mb: float,
        protect: frozenset[BlockId] = frozenset(),
        for_prefetch: bool = False,
    ) -> list[BlockId] | None:
        """The per-object reference walk, without the batch attempt.

        Policies whose batch path loses to the object sort on small
        stores call this directly below their engagement threshold.
        """
        order = (
            self.prefetch_eviction_order(store)
            if for_prefetch
            else self.eviction_order(store)
        )
        victims: list[BlockId] = []
        freed = 0.0
        for bid in order:
            if freed >= needed_mb:
                break
            if bid in protect or store.is_pinned(bid):
                continue
            victims.append(bid)
            freed += store.block(bid).size_mb
        if freed >= needed_mb:
            return victims
        return None

    def select_victims_batch(
        self,
        store: MemoryStore,
        needed_mb: float,
        protect: frozenset[BlockId] = frozenset(),
        for_prefetch: bool = False,
    ) -> list[BlockId] | None | BatchUnsupported:
        """Vectorized victim selection over the store's columns.

        Policies with a key column override this to select victims via
        :mod:`repro.policies.vectorized`; the result must be
        byte-identical to :meth:`select_victims`'s reference walk.
        Return :data:`BATCH_UNSUPPORTED` (the default) to fall back to
        the per-object path — e.g. when ``store`` is not the bound
        columnar store (a tenant view) or required keys are missing.
        """
        return BATCH_UNSUPPORTED


PolicyFactory = Callable[[int], EvictionPolicy]
"""Creates the policy instance for node ``node_id``."""
