"""Uniform-random eviction — the weakest sensible control baseline."""

from __future__ import annotations

import random
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.policies.base import EvictionPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore


class RandomPolicy(EvictionPolicy):
    """Evicts uniformly random blocks (seeded for reproducibility)."""

    name = "Random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._blocks: set[BlockId] = set()

    def on_insert(self, block: Block) -> None:
        self._blocks.add(block.id)

    def on_access(self, block: Block) -> None:
        self._blocks.add(block.id)

    def on_remove(self, block_id: BlockId) -> None:
        self._blocks.discard(block_id)

    def eviction_order(self, store: MemoryStore) -> Iterator[BlockId]:
        order = sorted(self._blocks)  # sort first: set order is salted per process
        self._rng.shuffle(order)
        return iter(order)
