"""First-In First-Out eviction — a recency-oblivious control baseline."""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.policies.base import EvictionPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore


class FifoPolicy(EvictionPolicy):
    """Evicts in insertion order, ignoring accesses entirely."""

    name = "FIFO"

    def __init__(self) -> None:
        self._queue: OrderedDict[BlockId, None] = OrderedDict()

    def on_insert(self, block: Block) -> None:
        if block.id not in self._queue:
            self._queue[block.id] = None

    def on_access(self, block: Block) -> None:
        # FIFO deliberately ignores accesses.
        if block.id not in self._queue:
            self._queue[block.id] = None

    def on_remove(self, block_id: BlockId) -> None:
        self._queue.pop(block_id, None)

    def eviction_order(self, store: MemoryStore) -> Iterator[BlockId]:
        return iter(list(self._queue.keys()))
