"""MemTune-style dependency-aware caching — Xu et al., IPDPS 2016.

MemTune's cache decisions (the part relevant to the paper's comparison;
its JVM memory-fraction tuning is orthogonal) keep coarse *lists* of the
RDDs required by currently runnable tasks:

* eviction prefers blocks whose RDD is **not** a dependency of the
  current/next runnable stages, falling back to LRU within each class;
* prefetching is restricted to blocks needed by the *current* stage
  ("local dependencies on runnable tasks"), with no notion of how soon
  a farther reference is.

The deliberately limited lookahead (``lookahead`` stages, default 1)
is what MRD improves upon: MemTune cannot rank two needed-later blocks
against each other.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.policies.base import EvictionPolicy
from repro.policies.profile_oracle import ProfileOracle

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore


class MemTunePolicy(EvictionPolicy):
    """Two-class eviction: not-needed-soon blocks first, LRU inside."""

    name = "MemTune"

    def __init__(self, oracle: ProfileOracle, lookahead: int = 1) -> None:
        if lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        self._oracle = oracle
        self._lookahead = lookahead
        self._touch = itertools.count()
        self._last_touch: dict[BlockId, int] = {}

    def on_insert(self, block: Block) -> None:
        self._last_touch[block.id] = next(self._touch)

    def on_access(self, block: Block) -> None:
        self._last_touch[block.id] = next(self._touch)

    def on_remove(self, block_id: BlockId) -> None:
        self._last_touch.pop(block_id, None)

    def eviction_order(self, store: MemoryStore) -> Iterator[BlockId]:
        needed = self._oracle.referenced_in_window(self._lookahead)

        def key(bid: BlockId) -> tuple[int, int]:
            in_list = 1 if bid.rdd_id in needed else 0
            return (in_list, self._last_touch.get(bid, 0))

        return iter(sorted(store.block_ids(), key=key))
