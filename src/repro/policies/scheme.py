"""Cache-management *scheme*: a policy plus its cluster-level behaviour.

An :class:`EvictionPolicy` only ranks blocks on one node.  A full cache
management scheme — what the paper's figures compare — also includes
centralized behaviour: stage-progress tracking, cluster-wide purge
orders and prefetch orders.  :class:`CacheScheme` is the interface the
simulator drives:

* ``prepare(dag)`` — build static state from the compiled DAG.
* ``policy_factory(node_id)`` — per-node eviction policy instances.
* ``on_job_submit(job_id)`` — a new job's DAG becomes visible
  (meaningful for ad-hoc profiling modes).
* ``on_stage_start(seq, cluster)`` — the execution advanced; the scheme
  may return purge orders and prefetch orders for the engine to apply.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.block import Block, BlockId
from repro.cluster.cluster import Cluster
from repro.dag.dag_builder import ApplicationDAG
from repro.policies.base import EvictionPolicy
from repro.policies.belady import BeladyPolicy
from repro.policies.fifo import FifoPolicy
from repro.policies.lru import LruPolicy
from repro.policies.lrc import LrcPolicy
from repro.policies.memtune import MemTunePolicy
from repro.policies.profile_oracle import ProfileOracle
from repro.policies.random_policy import RandomPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.control.messages import CacheStatusReport


@dataclass
class StageOrders:
    """Cluster-level actions a scheme requests at a stage boundary."""

    purge_rdds: list[int] = field(default_factory=list)
    #: Blocks to fetch from disk into memory, already filtered to ones
    #: that are disk-resident and not in memory; best (lowest distance)
    #: first per node.
    prefetches: list[Block] = field(default_factory=list)
    #: Driver distance-table snapshot to broadcast to every worker
    #: (``None`` for schemes whose node policies hold no distance view).
    #: Built fresh per boundary and never mutated afterwards.
    table_snapshot: dict[int, float] | None = None


class CacheScheme(abc.ABC):
    """A complete cache-management strategy, pluggable into the engine."""

    name: str = "scheme"

    @abc.abstractmethod
    def prepare(self, dag: ApplicationDAG) -> None:
        """Compile static state from the application DAG."""

    @abc.abstractmethod
    def policy_factory(self, node_id: int) -> EvictionPolicy:
        """Eviction policy instance for node ``node_id``."""

    def on_job_submit(self, job_id: int) -> None:
        """A new job DAG arrived (ad-hoc profiling hook)."""

    def on_stage_start(self, seq: int, cluster: Cluster) -> StageOrders:
        """Execution advanced to active stage ``seq``."""
        return StageOrders()

    def on_block_created(self, rdd_id: int) -> None:
        """A cached RDD's blocks were computed for the first time."""

    def on_cache_status(self, report: CacheStatusReport) -> None:
        """A worker's periodic cache-status report reached the driver.

        Delivered through the control plane, so under the rpc transport
        the driver's view of worker memory lags reality by at least one
        message latency (typically one stage boundary).
        """

    def on_worker_deregister(self, node_id: int) -> None:
        """A worker left the cluster; forget its reported status."""

    def table_snapshot(self) -> dict[int, float] | None:
        """Fresh distance-table snapshot for (re-)registered workers.

        Distance-tracking schemes return the mapping the driver would
        broadcast at a stage boundary; others return ``None``.
        """
        return None

    def reference_distance(self, rdd_id: int) -> float | None:
        """Current reference distance of ``rdd_id``, if tracked.

        Distance-tracking schemes (MRD) override this so the trace
        recorder can stamp eviction events with the victim's distance
        at the tick it was chosen; others return ``None``.
        """
        return None

    def finalize(self) -> None:
        """The application finished (persist profiles, etc.)."""


class _OracleScheme(CacheScheme):
    """Base for schemes whose per-node policies share a ProfileOracle."""

    visibility = "recurring"

    def __init__(self) -> None:
        self.oracle: ProfileOracle | None = None

    def prepare(self, dag: ApplicationDAG) -> None:
        self.oracle = ProfileOracle(dag, visibility=self.visibility)

    def on_stage_start(self, seq: int, cluster: Cluster) -> StageOrders:
        assert self.oracle is not None, "prepare() must run before the simulation"
        self.oracle.advance(seq)
        return StageOrders()


class LruScheme(CacheScheme):
    """Spark's default: per-node LRU, no purge, no prefetch."""

    name = "LRU"

    def prepare(self, dag: ApplicationDAG) -> None:  # LRU needs no DAG info
        pass

    def policy_factory(self, node_id: int) -> EvictionPolicy:
        return LruPolicy()


class FifoScheme(CacheScheme):
    """FIFO control baseline."""

    name = "FIFO"

    def prepare(self, dag: ApplicationDAG) -> None:
        pass

    def policy_factory(self, node_id: int) -> EvictionPolicy:
        return FifoPolicy()


class RandomScheme(CacheScheme):
    """Random-eviction control baseline."""

    name = "Random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def prepare(self, dag: ApplicationDAG) -> None:
        pass

    def policy_factory(self, node_id: int) -> EvictionPolicy:
        return RandomPolicy(seed=self.seed + node_id)


class LfuScheme(CacheScheme):
    """Least-Frequently-Used control baseline (not in the paper)."""

    name = "LFU"

    def prepare(self, dag: ApplicationDAG) -> None:
        pass

    def policy_factory(self, node_id: int) -> EvictionPolicy:
        from repro.policies.lfu import LfuPolicy

        return LfuPolicy()


class LrcScheme(_OracleScheme):
    """Least Reference Count (dependency-aware baseline)."""

    name = "LRC"

    def policy_factory(self, node_id: int) -> EvictionPolicy:
        assert self.oracle is not None
        return LrcPolicy(self.oracle)


class BeladyScheme(_OracleScheme):
    """Clairvoyant MIN (upper bound)."""

    name = "Belady-MIN"

    def policy_factory(self, node_id: int) -> EvictionPolicy:
        assert self.oracle is not None
        return BeladyPolicy(self.oracle)


class MemTuneScheme(_OracleScheme):
    """MemTune-style: runnable-stage dependency lists + 1-stage prefetch."""

    name = "MemTune"

    def __init__(self, lookahead: int = 1, prefetch: bool = True) -> None:
        super().__init__()
        self.lookahead = lookahead
        self.prefetch = prefetch

    def policy_factory(self, node_id: int) -> EvictionPolicy:
        assert self.oracle is not None
        return MemTunePolicy(self.oracle, lookahead=self.lookahead)

    def on_stage_start(self, seq: int, cluster: Cluster) -> StageOrders:
        orders = super().on_stage_start(seq, cluster)
        if not self.prefetch:
            return orders
        assert self.oracle is not None
        dag = self.oracle.dag
        # MemTune only prefetches data for the currently runnable stage,
        # and only when it fits in free memory (no forced eviction).
        stage = dag.active_stages[seq]
        master = cluster.master
        free_by_node = {n.node_id: n.memory.free_mb for n in master.live_nodes()}
        for rdd in stage.cache_reads:
            for p in range(rdd.num_partitions):
                block = Block(id=BlockId(rdd.id, p), size_mb=rdd.partition_size_mb, rdd_name=rdd.name)
                mgr = master.manager_for(block.id)
                node_id = mgr.node.node_id
                if block.id in mgr.node.memory or block.id not in mgr.node.disk:
                    continue
                if block.id in mgr.inflight_prefetch:
                    continue
                if block.size_mb <= free_by_node[node_id]:
                    free_by_node[node_id] -= block.size_mb
                    orders.prefetches.append(block)
        return orders
