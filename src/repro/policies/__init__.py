"""Cache eviction policies and cache-management schemes."""

from repro.policies.base import EvictionPolicy, PolicyFactory
from repro.policies.belady import BeladyPolicy
from repro.policies.fifo import FifoPolicy
from repro.policies.lfu import LfuPolicy
from repro.policies.lrc import LrcPolicy
from repro.policies.lru import LruPolicy
from repro.policies.memtune import MemTunePolicy
from repro.policies.profile_oracle import INFINITE, ProfileOracle
from repro.policies.random_policy import RandomPolicy
from repro.policies.trace_min import (
    RecordingScheme,
    TraceMinPolicy,
    TraceMinScheme,
    record_access_trace,
    true_min_metrics,
)
from repro.policies.scheme import (
    BeladyScheme,
    LfuScheme,
    CacheScheme,
    FifoScheme,
    LrcScheme,
    LruScheme,
    MemTuneScheme,
    RandomScheme,
    StageOrders,
)

__all__ = [
    "BeladyPolicy",
    "BeladyScheme",
    "CacheScheme",
    "EvictionPolicy",
    "FifoPolicy",
    "FifoScheme",
    "INFINITE",
    "LfuPolicy",
    "LfuScheme",
    "LrcPolicy",
    "LrcScheme",
    "LruPolicy",
    "LruScheme",
    "MemTunePolicy",
    "MemTuneScheme",
    "PolicyFactory",
    "ProfileOracle",
    "RandomPolicy",
    "RandomScheme",
    "RecordingScheme",
    "StageOrders",
    "TraceMinPolicy",
    "TraceMinScheme",
    "record_access_trace",
    "true_min_metrics",
]
