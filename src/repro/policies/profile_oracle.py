"""Shared DAG-profile oracle used by the DAG-aware policies.

LRC, MemTune, Belady and MRD all consult the application's reference
profile (which stages read which cached RDDs).  This module centralizes
that lookup: a :class:`ProfileOracle` holds the per-RDD sorted read
sequences and the current execution position, and answers the queries
each policy needs (remaining reference count, next reference, stage
window contents).

Visibility modes model the paper's §4.1 distinction:

* ``recurring`` — the whole application profile is known up front
  (profile saved from a previous run).
* ``adhoc`` — only references belonging to the *currently submitted
  job* are visible; anything later is treated as unknown (infinite
  distance / zero count) until that job is submitted.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from repro.dag.dag_builder import ApplicationDAG

INFINITE = math.inf


@dataclass(frozen=True)
class _RddRefs:
    """Sorted read positions for one cached RDD."""

    read_seqs: tuple[int, ...]
    read_jobs: tuple[int, ...]
    unpersist_after_job: int | None


class ProfileOracle:
    """Query interface over an application's reference profile."""

    def __init__(self, dag: ApplicationDAG, visibility: str = "recurring") -> None:
        if visibility not in ("recurring", "adhoc"):
            raise ValueError(f"unknown visibility {visibility!r}")
        self.dag = dag
        self.visibility = visibility
        self.current_seq = 0
        self._refs: dict[int, _RddRefs] = {}
        for rdd_id, prof in dag.profiles.items():
            pairs = sorted(zip(prof.read_seqs, prof.read_jobs))
            self._refs[rdd_id] = _RddRefs(
                read_seqs=tuple(s for s, _ in pairs),
                read_jobs=tuple(j for _, j in pairs),
                unpersist_after_job=prof.unpersist_after_job,
            )
        #: seq -> job id of the active stage executing at that position
        self._job_of_seq = [s.job_id for s in dag.active_stages]

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    def advance(self, seq: int) -> None:
        """Move the execution pointer to active stage ``seq``."""
        if seq < 0 or seq >= len(self._job_of_seq):
            raise ValueError(f"seq {seq} out of range")
        self.current_seq = seq

    @property
    def current_job(self) -> int:
        return self._job_of_seq[self.current_seq] if self._job_of_seq else 0

    def is_tracked(self, rdd_id: int) -> bool:
        return rdd_id in self._refs

    def tracked_rdd_ids(self) -> list[int]:
        return sorted(self._refs)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _visible_future_seqs(self, rdd_id: int) -> tuple[int, ...]:
        refs = self._refs.get(rdd_id)
        if refs is None:
            return ()
        i = bisect.bisect_left(refs.read_seqs, self.current_seq)
        future = refs.read_seqs[i:]
        if self.visibility == "adhoc":
            job = self.current_job
            jobs = refs.read_jobs[i:]
            future = tuple(s for s, j in zip(future, jobs) if j == job)
        return future

    def next_reference_seq(self, rdd_id: int) -> float:
        """Next visible stage seq that reads ``rdd_id``, or +inf."""
        future = self._visible_future_seqs(rdd_id)
        return future[0] if future else INFINITE

    def stage_distance(self, rdd_id: int) -> float:
        """MRD's reference distance in active-stage executions."""
        nxt = self.next_reference_seq(rdd_id)
        return nxt - self.current_seq if nxt is not INFINITE else INFINITE

    def job_distance(self, rdd_id: int) -> float:
        """Reference distance measured in jobs (the coarser metric)."""
        future = self._visible_future_seqs(rdd_id)
        if not future:
            return INFINITE
        refs = self._refs[rdd_id]
        i = refs.read_seqs.index(future[0])
        return refs.read_jobs[i] - self.current_job

    def remaining_reference_count(self, rdd_id: int) -> int:
        """LRC's metric: visible references not yet consumed."""
        return len(self._visible_future_seqs(rdd_id))

    def referenced_in_window(self, lookahead: int) -> set[int]:
        """RDD ids read by stages in ``[current, current + lookahead]``.

        MemTune's working set: the parents of currently runnable (and
        imminently runnable) tasks.
        """
        hi = min(self.current_seq + lookahead, len(self.dag.active_stages) - 1)
        needed: set[int] = set()
        for seq in range(self.current_seq, hi + 1):
            for rdd in self.dag.active_stages[seq].cache_reads:
                needed.add(rdd.id)
        return needed

    def is_dead(self, rdd_id: int) -> bool:
        """No visible future reference (distance is infinite)."""
        return not self._visible_future_seqs(rdd_id)

    def had_any_reference(self, rdd_id: int) -> bool:
        """Did the profile ever record a read for this RDD?"""
        refs = self._refs.get(rdd_id)
        return bool(refs and refs.read_seqs)
