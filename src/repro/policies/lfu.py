"""Least Frequently Used — a frequency-based control baseline.

Not evaluated in the paper, but a natural foil for LRC: LFU counts
*past* accesses where LRC counts *future* references.  On DAG workloads
LFU inherits LRU's blindness to the workflow (a block's history says
little about its next reference) and additionally ossifies: long-dead
blocks with large historical counts are the last to leave.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.policies.base import EvictionPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore


class LfuPolicy(EvictionPolicy):
    """Evicts the block with the fewest lifetime accesses (ties: LRU)."""

    name = "LFU"

    def __init__(self) -> None:
        self._freq: dict[BlockId, int] = {}
        self._touch = itertools.count()
        self._last_touch: dict[BlockId, int] = {}

    def on_insert(self, block: Block) -> None:
        self._freq[block.id] = self._freq.get(block.id, 0) + 1
        self._last_touch[block.id] = next(self._touch)

    def on_access(self, block: Block) -> None:
        self._freq[block.id] = self._freq.get(block.id, 0) + 1
        self._last_touch[block.id] = next(self._touch)

    def on_remove(self, block_id: BlockId) -> None:
        # Frequency history survives eviction (classic LFU keeps it; a
        # re-inserted block resumes its count).
        self._last_touch.pop(block_id, None)

    def frequency(self, block_id: BlockId) -> int:
        return self._freq.get(block_id, 0)

    def eviction_order(self, store: MemoryStore) -> Iterator[BlockId]:
        def key(bid: BlockId) -> tuple[int, int]:
            return (self._freq.get(bid, 0), self._last_touch.get(bid, 0))

        return iter(sorted(store.block_ids(), key=key))
