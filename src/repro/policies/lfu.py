"""Least Frequently Used — a frequency-based control baseline.

Not evaluated in the paper, but a natural foil for LRC: LFU counts
*past* accesses where LRC counts *future* references.  On DAG workloads
LFU inherits LRU's blindness to the workflow (a block's history says
little about its next reference) and additionally ossifies: long-dead
blocks with large historical counts are the last to leave.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.policies.base import BATCH_UNSUPPORTED, BatchUnsupported, EvictionPolicy
from repro.policies.vectorized import select_block_victims

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore


class LfuPolicy(EvictionPolicy):
    """Evicts the block with the fewest lifetime accesses (ties: LRU).

    On a columnar store the frequency count is mirrored into the key
    column and the touch stamp into the auxiliary column, replacing the
    per-selection python sort with a batched kernel.
    """

    name = "LFU"

    #: Below this store size the per-selection object sort beats the
    #: numpy kernel's fixed overhead, so batch only engages above it.
    batch_min_blocks = 128

    def __init__(self) -> None:
        self._freq: dict[BlockId, int] = {}
        self._touch = itertools.count()
        self._last_touch: dict[BlockId, int] = {}
        #: Whether the key/aux columns mirror ``_freq``/``_last_touch``.
        #: Starts False — per-access column writes are pure overhead
        #: until a batch selection actually engages — and flips True on
        #: the first batch selection's rebuild; maintenance then keeps
        #: the columns current.
        self._keys_valid = False

    def _count(self, block: Block) -> None:
        bid = block.id
        freq = self._freq.get(bid, 0) + 1
        self._freq[bid] = freq
        touch = next(self._touch)
        self._last_touch[bid] = touch
        if self._keys_valid and (st := self._store) is not None:
            st.set_key(bid, float(freq))
            st.set_aux(bid, float(touch))

    def _rebuild_keys(self) -> None:
        """Stamp frequency/touch columns for every tracked resident block."""
        st = self._store
        assert st is not None
        for bid, touch in self._last_touch.items():
            st.set_key(bid, float(self._freq.get(bid, 0)))
            st.set_aux(bid, float(touch))
        self._keys_valid = True

    def on_insert(self, block: Block) -> None:
        self._count(block)

    def on_access(self, block: Block) -> None:
        self._count(block)

    def on_remove(self, block_id: BlockId) -> None:
        # Frequency history survives eviction (classic LFU keeps it; a
        # re-inserted block resumes its count).
        self._last_touch.pop(block_id, None)

    def frequency(self, block_id: BlockId) -> int:
        return self._freq.get(block_id, 0)

    def eviction_order(self, store: MemoryStore) -> Iterator[BlockId]:
        def key(bid: BlockId) -> tuple[int, int]:
            return (self._freq.get(bid, 0), self._last_touch.get(bid, 0))

        return iter(sorted(store.block_ids(), key=key))

    def select_victims(
        self,
        store: MemoryStore,
        needed_mb: float,
        protect: frozenset[BlockId] = frozenset(),
        for_prefetch: bool = False,
    ) -> list[BlockId] | None:
        if len(store) < self.batch_min_blocks:
            return self._select_victims_walk(store, needed_mb, protect, for_prefetch)
        return super().select_victims(store, needed_mb, protect, for_prefetch)

    def select_victims_batch(
        self,
        store: MemoryStore,
        needed_mb: float,
        protect: frozenset[BlockId] = frozenset(),
        for_prefetch: bool = False,
    ) -> list[BlockId] | None | BatchUnsupported:
        st = self._store
        if st is None or st is not store:
            return BATCH_UNSUPPORTED
        st.ensure_columns()
        if not self._keys_valid:
            self._rebuild_keys()
        cols = st.columns()
        # Primary: frequency; ties broken by touch stamp (unique), with
        # the id columns closing the total order as the contract asks.
        return select_block_victims(
            st, cols, needed_mb, protect, cols.key, (cols.part, cols.rdd, cols.aux)
        )
