"""Least Recently Used — Spark's default cache policy (the paper's baseline)."""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.policies.base import EvictionPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore


class LruPolicy(EvictionPolicy):
    """Evicts the block that has gone longest without an access.

    Implemented with an ordered dict used as a recency queue: most
    recently touched block at the back, victim taken from the front —
    the same structure Spark's ``MemoryStore`` LinkedHashMap provides.
    """

    name = "LRU"

    def __init__(self) -> None:
        self._recency: OrderedDict[BlockId, None] = OrderedDict()

    def on_insert(self, block: Block) -> None:
        self._recency[block.id] = None
        self._recency.move_to_end(block.id)

    def on_access(self, block: Block) -> None:
        if block.id in self._recency:
            self._recency.move_to_end(block.id)
        else:  # defensive: access to a block the policy never saw inserted
            self._recency[block.id] = None

    def on_remove(self, block_id: BlockId) -> None:
        self._recency.pop(block_id, None)

    def eviction_order(self, store: MemoryStore) -> Iterator[BlockId]:
        # Oldest first.  Copy: callers may evict while iterating.
        return iter(list(self._recency.keys()))
