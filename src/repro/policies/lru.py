"""Least Recently Used — Spark's default cache policy (the paper's baseline)."""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.policies.base import BATCH_UNSUPPORTED, BatchUnsupported, EvictionPolicy
from repro.policies.vectorized import select_block_victims

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore


class LruPolicy(EvictionPolicy):
    """Evicts the block that has gone longest without an access.

    Implemented with an ordered dict used as a recency queue: most
    recently touched block at the back, victim taken from the front —
    the same structure Spark's ``MemoryStore`` LinkedHashMap provides.
    On a columnar store the recency rank is mirrored into the store's
    key column as a monotonic touch stamp, so large stores can select
    victims in batch (oldest stamp first).
    """

    name = "LRU"

    #: Below this store size the in-order queue walk beats the numpy
    #: kernel's fixed overhead, so batch selection only engages above it.
    batch_min_blocks = 512

    def __init__(self) -> None:
        self._recency: OrderedDict[BlockId, None] = OrderedDict()
        self._stamp = 0
        #: Whether the store's key column currently mirrors ``_recency``.
        #: Starts False — per-touch stamp writes are pure overhead while
        #: the store is small enough for the queue walk — and flips True
        #: on the first batch selection, which rebuilds the column from
        #: the queue; maintenance then keeps it current.
        self._keys_valid = False

    def _touch(self, block_id: BlockId) -> None:
        if self._keys_valid and (st := self._store) is not None:
            self._stamp += 1
            st.set_key(block_id, float(self._stamp))

    def _rebuild_keys(self) -> None:
        """Stamp every queued block in recency order (oldest first)."""
        st = self._store
        assert st is not None
        stamp = self._stamp
        for bid in self._recency:
            stamp += 1
            st.set_key(bid, float(stamp))
        self._stamp = stamp
        self._keys_valid = True

    def on_insert(self, block: Block) -> None:
        self._recency[block.id] = None
        self._recency.move_to_end(block.id)
        self._touch(block.id)

    def on_access(self, block: Block) -> None:
        if block.id in self._recency:
            self._recency.move_to_end(block.id)
        else:  # defensive: access to a block the policy never saw inserted
            self._recency[block.id] = None
        self._touch(block.id)

    def on_remove(self, block_id: BlockId) -> None:
        self._recency.pop(block_id, None)

    def eviction_order(self, store: MemoryStore) -> Iterator[BlockId]:
        # Oldest first.  Copy: callers may evict while iterating.
        return iter(list(self._recency.keys()))

    def select_victims(
        self,
        store: MemoryStore,
        needed_mb: float,
        protect: frozenset[BlockId] = frozenset(),
        for_prefetch: bool = False,
    ) -> list[BlockId] | None:
        """Reference walk without the list copy; batch on large stores.

        Prefetch-triggered selections go through the base path so
        subclasses overriding ``prefetch_eviction_order`` (and its batch
        counterpart) keep their distinct prefetch victim order.
        """
        if for_prefetch:
            return super().select_victims(store, needed_mb, protect, for_prefetch)
        if len(self._recency) >= self.batch_min_blocks:
            batched = self.select_victims_batch(store, needed_mb, protect)
            if not isinstance(batched, BatchUnsupported):
                return batched
        victims: list[BlockId] = []
        freed = 0.0
        is_pinned = store.is_pinned
        block = store.block
        for bid in self._recency:
            if freed >= needed_mb:
                break
            if bid in protect or is_pinned(bid):
                continue
            victims.append(bid)
            freed += block(bid).size_mb
        if freed >= needed_mb:
            return victims
        return None

    def select_victims_batch(
        self,
        store: MemoryStore,
        needed_mb: float,
        protect: frozenset[BlockId] = frozenset(),
        for_prefetch: bool = False,
    ) -> list[BlockId] | None | BatchUnsupported:
        st = self._store
        if st is None or st is not store:
            return BATCH_UNSUPPORTED
        st.ensure_columns()
        if not self._keys_valid:
            self._rebuild_keys()
        cols = st.columns()
        # Primary: touch stamp (unique); id columns close the total order.
        return select_block_victims(
            st, cols, needed_mb, protect, cols.key, (cols.part, cols.rdd)
        )
