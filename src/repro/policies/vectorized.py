"""Batched victim selection over the columnar block store.

The per-object reference path walks a policy's ``eviction_order`` one
block at a time (``EvictionPolicy.select_victims``).  This module is
the vectorized equivalent used by policies that maintain a *key column*
on a columnar :class:`~repro.cluster.memory_store.MemoryStore`: an
``argpartition``-style k-smallest cut over the key column, a full sort
of the small candidate set, and a cumulative-size cut — O(n) + O(k log
k) instead of O(n log n) python-object sorting per selection.

Tie-break contract
------------------
``numpy.partition``/``argpartition`` order is *unspecified* among equal
keys, so the partitioned prefix must never leak into eviction order.
The selection below is made deterministic in two steps:

1. **Tie-inclusive candidate cut** — the candidate set is *every* row
   whose primary key is ``<=`` the k-th smallest value, so rows tied at
   the cut boundary are all included and the candidate set is exactly a
   prefix of the policy's total order.
2. **Total-order sort** — candidates are ordered by ``lexsort`` over
   ``(primary, *ties)``; callers must supply tie columns that end in
   the block-id columns (sorted id order), making the composite key
   unique per block.  Equal primary keys therefore always resolve the
   same way, byte-identical to the per-object reference walk.

The cumulative-size cut reproduces the reference walk's *sequential*
float accumulation (``numpy.cumsum`` over float64 performs the same
IEEE additions in the same order as ``freed += size_mb``), so the
chosen victim set matches the object path bit-for-bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import BlockId
    from repro.cluster.memory_store import MemoryStore, StoreColumns

#: Initial k-smallest prefix size for the partition cut.  Selections
#: rarely need more than a handful of victims; the cut grows 4x (and
#: re-sorts) only when the prefix cannot cover the request.
_INITIAL_K = 8


def batch_select_rows(
    primary: np.ndarray,
    ties: tuple[np.ndarray, ...],
    sizes: np.ndarray,
    needed_mb: float,
    blocked_rows: list[int],
) -> np.ndarray | None:
    """Rows to evict (in eviction order) to free ``needed_mb``.

    ``primary`` is the policy's key column (ascending = evict first);
    ``ties`` are additional sort columns, *least* significant first,
    whose composite with ``primary`` must totally order the rows (see
    the module tie-break contract).  ``blocked_rows`` lists row indices
    that must not be chosen (pinned or protected).  Returns ``None``
    when the evictable rows cannot cover the request — the same refusal
    the per-object walk produces.
    """
    if needed_mb <= 0.0:
        return np.empty(0, dtype=np.intp)
    n = primary.shape[0]
    idx: np.ndarray | None = None
    if blocked_rows:
        ok = np.ones(n, dtype=bool)
        ok[blocked_rows] = False
        idx = np.nonzero(ok)[0]
        m = int(idx.shape[0])
    else:
        m = n
    if m == 0:
        return None
    k = _INITIAL_K
    while True:
        if k < m:
            evictable = primary if idx is None else primary[idx]
            kth = np.partition(evictable, k - 1)[k - 1]
            # Tie-inclusive cut: every row tied at the boundary is a
            # candidate, so the set is a prefix of the total order and
            # the partition's unspecified internal order cannot leak.
            cand = np.nonzero(evictable <= kth)[0]
            if idx is not None:
                cand = idx[cand]
        else:
            cand = np.arange(n, dtype=np.intp) if idx is None else idx
        order = np.lexsort(tuple(t[cand] for t in ties) + (primary[cand],))
        cand = cand[order]
        csum = np.cumsum(sizes[cand])
        pos = int(np.searchsorted(csum, needed_mb, side="left"))
        if pos < cand.shape[0]:
            return cand[: pos + 1]
        if k >= m:
            return None
        k *= 4


def select_block_victims(
    store: MemoryStore,
    cols: StoreColumns,
    needed_mb: float,
    protect: frozenset[BlockId],
    primary: np.ndarray,
    ties: tuple[np.ndarray, ...],
) -> list[BlockId] | None:
    """Block-id level wrapper around :func:`batch_select_rows`.

    Maps the protected/pinned block ids to row indices, selects, and
    maps the chosen rows back to :class:`BlockId` in eviction order.
    """
    rows = batch_select_rows(
        primary, ties, cols.size, needed_mb, store.blocked_rows(protect)
    )
    if rows is None:
        return None
    ids = store.row_block_ids()
    return [ids[i] for i in rows]
