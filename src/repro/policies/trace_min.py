"""True block-level MIN: the optimal offline policy on the recorded trace.

The stage-granular :class:`~repro.policies.belady.BeladyPolicy` ranks
blocks by their RDD's next referencing *stage*; this module goes one
level finer.  Because task start order per node is fixed (partitions
drain FIFO from each node's queue regardless of task durations), the
per-node block-access sequence is *policy-independent* — so we can
record it once under any policy and then replay the application under
an oracle that knows, for every access, exactly how far away each
resident block's next use is.

Usage::

    trace = record_access_trace(dag, cluster_config)
    metrics = simulate(dag, cluster_config, TraceMinScheme(trace))

or the one-shot :func:`true_min_metrics`.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.policies.base import EvictionPolicy
from repro.policies.lru import LruPolicy
from repro.policies.scheme import CacheScheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.cluster import ClusterConfig
    from repro.dag.dag_builder import ApplicationDAG
    from repro.simulator.metrics import RunMetrics


class RecordingLruPolicy(LruPolicy):
    """LRU that appends every access (hit or miss) to a shared trace."""

    name = "LRU-recording"

    def __init__(self, trace: list[BlockId]) -> None:
        super().__init__()
        self.trace = trace

    def on_access(self, block: Block) -> None:
        super().on_access(block)
        self.trace.append(block.id)

    def on_miss(self, block_id: BlockId) -> None:
        self.trace.append(block_id)


class RecordingScheme(CacheScheme):
    """Runs LRU while capturing each node's access sequence."""

    name = "LRU-recording"

    def __init__(self) -> None:
        self.traces: dict[int, list[BlockId]] = {}

    def prepare(self, dag: ApplicationDAG) -> None:
        pass

    def policy_factory(self, node_id: int) -> EvictionPolicy:
        trace: list[BlockId] = []
        self.traces[node_id] = trace
        return RecordingLruPolicy(trace)


class TraceMinPolicy(EvictionPolicy):
    """Per-node MIN over an exact recorded access sequence.

    Tracks its position by counting the accesses it observes (hits via
    ``on_access``, misses via ``on_miss``) and evicts the resident block
    whose next position in the trace is furthest away.
    """

    name = "True-MIN"

    def __init__(self, trace: list[BlockId]) -> None:
        self.trace = trace
        self.position = 0
        self._postings: dict[BlockId, list[int]] = {}
        for i, bid in enumerate(trace):
            self._postings.setdefault(bid, []).append(i)

    def _advance(self) -> None:
        self.position += 1

    def on_insert(self, block: Block) -> None:
        pass

    def on_access(self, block: Block) -> None:
        self._advance()

    def on_miss(self, block_id: BlockId) -> None:
        self._advance()

    def on_remove(self, block_id: BlockId) -> None:
        pass

    def next_use(self, bid: BlockId) -> float:
        """Next trace position at/after the cursor, or +inf."""
        postings = self._postings.get(bid)
        if not postings:
            return float("inf")
        i = bisect_left(postings, self.position)
        return postings[i] if i < len(postings) else float("inf")

    def eviction_order(self, store: MemoryStore) -> Iterator[BlockId]:
        return iter(
            sorted(store.block_ids(), key=lambda bid: -self.next_use(bid))
        )

    def admit_over(self, block: Block, victims: list[BlockId], store) -> bool:
        incoming = self.next_use(block.id)
        return all(incoming < self.next_use(v) for v in victims)


class TraceMinScheme(CacheScheme):
    """Cluster-wide true MIN from per-node recorded traces."""

    name = "True-MIN"

    def __init__(self, traces: dict[int, list[BlockId]]) -> None:
        self.traces = traces

    def prepare(self, dag: ApplicationDAG) -> None:
        pass

    def policy_factory(self, node_id: int) -> EvictionPolicy:
        return TraceMinPolicy(self.traces.get(node_id, []))


def record_access_trace(
    dag: ApplicationDAG, cluster_config: ClusterConfig
) -> dict[int, list[BlockId]]:
    """Pass 1: run under recording LRU and return per-node traces."""
    from repro.simulator.engine import simulate

    scheme = RecordingScheme()
    simulate(dag, cluster_config, scheme)
    return scheme.traces


def true_min_metrics(
    dag: ApplicationDAG, cluster_config: ClusterConfig
) -> RunMetrics:
    """Two-pass convenience: record, then replay under true MIN."""
    from repro.simulator.engine import simulate

    traces = record_access_trace(dag, cluster_config)
    return simulate(dag, cluster_config, TraceMinScheme(traces))
