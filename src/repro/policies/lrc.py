"""Least Reference Count (LRC) — Yu et al., INFOCOM 2017.

LRC parses the DAG, counts how many times each data block will be
referenced, decrements the count as references are consumed, and evicts
the block with the *lowest* remaining count.  The paper under
reproduction argues this mispredicts blocks with many but *distant*
references (they keep a high count yet are not needed soon) — which is
exactly the behaviour this implementation preserves.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.policies.base import EvictionPolicy
from repro.policies.profile_oracle import ProfileOracle

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore


class LrcPolicy(EvictionPolicy):
    """Per-node LRC eviction; counts come from the shared oracle.

    Ties on reference count are broken by recency (least recently used
    first), matching the LRC paper's implementation on top of Spark's
    LinkedHashMap.
    """

    name = "LRC"

    def __init__(self, oracle: ProfileOracle) -> None:
        self._oracle = oracle
        self._touch = itertools.count()
        self._last_touch: dict[BlockId, int] = {}

    def on_insert(self, block: Block) -> None:
        self._last_touch[block.id] = next(self._touch)

    def on_access(self, block: Block) -> None:
        self._last_touch[block.id] = next(self._touch)

    def on_remove(self, block_id: BlockId) -> None:
        self._last_touch.pop(block_id, None)

    def eviction_order(self, store: MemoryStore) -> Iterator[BlockId]:
        def key(bid: BlockId) -> tuple[int, int]:
            count = self._oracle.remaining_reference_count(bid.rdd_id)
            return (count, self._last_touch.get(bid, 0))

        return iter(sorted(store.block_ids(), key=key))
