"""Belady's MIN oracle — the clairvoyant upper bound.

Evicts the block whose next reference lies furthest in the future,
using the exact execution trace.  The paper cites MIN (§3.1) as the
optimum that DAG-aware policies can only approximate because the task
execution order is not fully known; in our deterministic simulator the
stage-granularity trace *is* exact, so MIN serves as the upper bound
the tests compare every other policy against.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.policies.base import EvictionPolicy
from repro.policies.profile_oracle import ProfileOracle

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore


class BeladyPolicy(EvictionPolicy):
    """Evict the block referenced furthest in the future (MIN)."""

    name = "Belady-MIN"

    def __init__(self, oracle: ProfileOracle) -> None:
        if oracle.visibility != "recurring":
            raise ValueError("Belady's MIN requires the full (recurring) trace")
        self._oracle = oracle
        self._touch = itertools.count()
        self._last_touch: dict[BlockId, int] = {}

    def on_insert(self, block: Block) -> None:
        self._last_touch[block.id] = next(self._touch)

    def on_access(self, block: Block) -> None:
        self._last_touch[block.id] = next(self._touch)

    def on_remove(self, block_id: BlockId) -> None:
        self._last_touch.pop(block_id, None)

    def eviction_order(self, store: MemoryStore) -> Iterator[BlockId]:
        # Furthest next use first; never-again-used blocks lead.  Ties
        # (blocks of the same RDD) break on descending partition index —
        # the stable rule that avoids cyclic-scan thrash and is what
        # block-granular MIN would converge to.
        return iter(sorted(store.block_ids(), key=self._evict_key))

    def admit_over(self, block: Block, victims: list[BlockId], store: MemoryStore) -> bool:
        """MIN never displaces a block it would rather keep."""
        incoming = self._evict_key(block.id)
        return all(incoming > self._evict_key(v) for v in victims)

    def _evict_key(self, bid: BlockId) -> tuple[float, int, int]:
        nxt = self._oracle.next_reference_seq(bid.rdd_id)
        return (-nxt, -bid.partition, -bid.rdd_id)
