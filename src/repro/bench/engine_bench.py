"""Engine micro-benchmark: event-queue vs reference scheduling core.

Times :class:`~repro.simulator.engine.SparkSimulator` end to end on
large synthetic applications (thousands of tasks, 16+ nodes) under both
scheduling cores and asserts their :class:`RunMetrics` are identical,
so every reported speedup is a like-for-like comparison of the same
simulated execution.

Two workload profiles are measured:

* ``sched`` — sparse caching, so per-task scheduling overhead dominates
  and the numbers isolate the scheduler itself (the quadratic
  ``min()``-scan vs the global event queue);
* ``cache`` — the default synthetic cache density under a deliberately
  undersized cache, so the run is cache-*bound*: misses, evictions and
  (under MRD) prefetches are all nonzero and the eviction/bookkeeping
  hot paths genuinely share the profile.

The payload is written to ``BENCH_engine.json`` (repo root) as the
perf trajectory's data points; CI re-runs a reduced size and fails on
a >2x regression against the committed baseline (compared on the
normalized event-vs-reference speedup so the check is machine- and
size-independent; see :func:`check_against_baseline`).
"""

from __future__ import annotations

import json
import platform
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.cluster.cluster import ClusterConfig
from repro.cluster.memory_store import store_mode
from repro.core.policy import MrdScheme
from repro.dag.dag_builder import ApplicationDAG, build_dag
from repro.policies.scheme import CacheScheme, LruScheme
from repro.simulator.engine import SCHEDULERS, SparkSimulator
from repro.simulator.metrics import RunMetrics
from repro.workloads.synthetic import SyntheticConfig, generate_application

#: Scheme factories the harness exercises: the cheapest baseline and
#: the paper's policy (the most state-carrying hot path).
BENCH_SCHEMES: dict[str, Callable[[], CacheScheme]] = {
    "LRU": LruScheme,
    "MRD": MrdScheme,
}


@dataclass(frozen=True)
class BenchConfig:
    """Shape of one benchmark run."""

    min_tasks: int = 5000
    num_nodes: int = 16
    slots_per_node: int = 4
    cache_mb_per_node: float = 200.0
    partitions: int = 320
    seed: int = 7
    repeats: int = 3

    def __post_init__(self) -> None:
        if self.min_tasks <= 0:
            raise ValueError("min_tasks must be positive")
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")

    def cluster(self) -> ClusterConfig:
        return ClusterConfig(
            name=f"bench-{self.num_nodes}n",
            num_nodes=self.num_nodes,
            slots_per_node=self.slots_per_node,
            cache_mb_per_node=self.cache_mb_per_node,
        )


@dataclass(frozen=True)
class BenchProfile:
    """One measured workload profile.

    ``overrides`` reshape the synthetic generator; ``cache_mb`` (when
    set) overrides the cluster's per-node cache so a profile can force
    cache pressure independently of the benchmark's default sizing.
    """

    overrides: dict
    cache_mb: float | None = None


#: Workload profiles measured by the benchmark, in report order.
_PROFILES: dict[str, BenchProfile] = {
    "sched": BenchProfile({"cache_probability": 0.05, "reuse_probability": 0.3}),
    # 40 MB/node makes the default cache density overflow: both schemes
    # miss and evict, and MRD additionally exercises its prefetch path.
    "cache": BenchProfile({}, cache_mb=40.0),
}


def bench_profile_names() -> tuple[str, ...]:
    return tuple(_PROFILES)


def build_bench_dag(config: BenchConfig, profile: str) -> ApplicationDAG:
    """Deterministic synthetic application with >= ``min_tasks`` tasks.

    Jobs are added until the active-stage task count clears the floor,
    so the guarantee survives generator/DAG-builder changes.
    """
    overrides = _PROFILES[profile].overrides
    num_jobs = 4
    while True:
        cfg = SyntheticConfig(
            num_jobs=num_jobs, partitions=config.partitions, **overrides
        )
        dag = build_dag(generate_application(config.seed, cfg))
        if total_tasks(dag) >= config.min_tasks:
            return dag
        num_jobs += 2


def total_tasks(dag: ApplicationDAG) -> int:
    return sum(s.num_tasks for s in dag.active_stages)


def _metrics_fingerprint(m: RunMetrics) -> tuple:
    """Everything RunMetrics measures, as a comparable tuple."""
    return (
        m.jct,
        m.stats.hits, m.stats.misses, m.stats.insertions,
        m.stats.failed_insertions, m.stats.evictions, m.stats.purged,
        m.stats.prefetches_issued, m.stats.prefetches_used,
        m.stats.prefetched_mb, m.stats.evicted_mb,
        tuple(m.per_node_hit_ratio),
        tuple((r.seq, r.start, r.end) for r in m.stage_records),
    )


def _time_run(
    dag: ApplicationDAG,
    cluster: ClusterConfig,
    scheme_factory: Callable[[], CacheScheme],
    scheduler: str,
    repeats: int,
    columnar: bool = True,
) -> tuple[float, RunMetrics]:
    """Best-of-``repeats`` wall-clock seconds plus the run's metrics.

    ``columnar=False`` runs the same workload on object-based stores
    (the per-object reference spec), so the payload also tracks what
    the columnar hot path buys over it.
    """
    best = float("inf")
    metrics: RunMetrics | None = None
    for _ in range(repeats):
        with store_mode(columnar):
            sim = SparkSimulator(dag, cluster, scheme_factory(), scheduler=scheduler)
            t0 = time.perf_counter()
            metrics = sim.run()
            best = min(best, time.perf_counter() - t0)
    assert metrics is not None
    return best, metrics


def run_engine_bench(
    config: BenchConfig | None = None,
    include_reference: bool = True,
    profiles: tuple[str, ...] | None = None,
) -> dict:
    """Run the full benchmark matrix; returns the JSON-ready payload."""
    config = config or BenchConfig()
    if profiles is None:
        profiles = bench_profile_names()
    unknown = [p for p in profiles if p not in _PROFILES]
    if unknown:
        raise ValueError(
            f"unknown bench profiles {unknown}; choose from {bench_profile_names()}"
        )
    cluster = config.cluster()
    payload: dict = {
        "bench": "engine",
        "version": 2,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "min_tasks": config.min_tasks,
            "num_nodes": config.num_nodes,
            "slots_per_node": config.slots_per_node,
            "cache_mb_per_node": config.cache_mb_per_node,
            "partitions": config.partitions,
            "seed": config.seed,
            "repeats": config.repeats,
        },
        "runs": [],
        "speedup": {},
        "metrics_identical": True,
    }
    schedulers = SCHEDULERS if include_reference else ("event",)
    for profile in profiles:
        dag = build_bench_dag(config, profile)
        tasks = total_tasks(dag)
        override = _PROFILES[profile].cache_mb
        profile_cluster = (
            cluster.with_cache(override) if override is not None else cluster
        )
        for scheme_name, factory in BENCH_SCHEMES.items():
            seconds: dict[tuple[str, str], float] = {}
            fingerprints: dict[tuple[str, str], tuple] = {}
            # Columnar legs for every scheduling core, plus one
            # object-store event leg so the payload also tracks what the
            # columnar hot path buys over the per-object reference spec.
            legs = [(scheduler, "columnar") for scheduler in schedulers]
            if include_reference:
                legs.append(("event", "object"))
            for scheduler, store in legs:
                secs, metrics = _time_run(
                    dag, profile_cluster, factory, scheduler, config.repeats,
                    columnar=store == "columnar",
                )
                seconds[(scheduler, store)] = secs
                fingerprints[(scheduler, store)] = _metrics_fingerprint(metrics)
                payload["runs"].append({
                    "profile": profile,
                    "scheme": scheme_name,
                    "scheduler": scheduler,
                    "store": store,
                    "cache_mb_per_node": profile_cluster.cache_mb_per_node,
                    "tasks": tasks,
                    "stages": dag.num_active_stages,
                    "seconds": secs,
                    "tasks_per_s": tasks / secs if secs > 0 else float("inf"),
                    "jct": metrics.jct,
                    "hits": metrics.stats.hits,
                    "misses": metrics.stats.misses,
                    "evictions": metrics.stats.evictions,
                    "prefetches_issued": metrics.stats.prefetches_issued,
                })
            if include_reference:
                # Every leg — both cores, both store modes — must agree.
                identical = len(set(fingerprints.values())) == 1
                payload["metrics_identical"] &= identical
                payload["speedup"][f"{profile}/{scheme_name}"] = (
                    seconds[("reference", "columnar")] / seconds[("event", "columnar")]
                )
                payload["speedup"][f"{profile}/{scheme_name}/columnar"] = (
                    seconds[("event", "object")] / seconds[("event", "columnar")]
                )
    return payload


def render_bench(payload: dict) -> str:
    """Human-readable table of one benchmark payload."""
    lines = [
        f"engine bench: {payload['config']['num_nodes']} nodes x "
        f"{payload['config']['slots_per_node']} slots, "
        f">={payload['config']['min_tasks']} tasks, "
        f"best of {payload['config']['repeats']} "
        f"(py{payload.get('python', '?')})",
        f"{'profile':<8} {'scheme':<6} {'scheduler':<10} {'store':<8} "
        f"{'tasks':>6} {'seconds':>9} {'tasks/s':>10}",
    ]
    for run in payload["runs"]:
        lines.append(
            f"{run['profile']:<8} {run['scheme']:<6} {run['scheduler']:<10} "
            f"{run.get('store', 'columnar'):<8} "
            f"{run['tasks']:>6d} {run['seconds']:>9.4f} {run['tasks_per_s']:>10,.0f}"
        )
    for key, speedup in payload.get("speedup", {}).items():
        what = "object/columnar" if key.endswith("/columnar") else "reference/event"
        lines.append(f"speedup {key}: {speedup:.2f}x ({what})")
    if payload.get("speedup"):
        lines.append(
            "metrics identical across schedulers: "
            + ("yes" if payload.get("metrics_identical") else "NO — BUG")
        )
    return "\n".join(lines)


def check_against_baseline(
    payload: dict,
    baseline_path: Path | str,
    max_slowdown: float = 2.0,
) -> list[str]:
    """Compare the event core against a committed baseline payload.

    Returns a list of failure messages (empty = pass).  The compared
    quantity is the *normalized speedup* — event-core time over
    reference-core time, both measured in the same process — which is
    machine- and workload-size-independent: raw tasks/second varies
    with runner hardware and with how per-run fixed costs amortize, but
    an event core that regressed toward the reference core's quadratic
    behaviour shows up on any machine as a collapsing speedup.  A run
    counts as a >``max_slowdown`` regression when its speedup falls
    below ``baseline_speedup / max_slowdown``.

    When either payload carries no reference runs the check falls back
    to raw event-core throughput, which is only meaningful against a
    baseline recorded on comparable hardware.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    failures = []
    base_speedups = baseline.get("speedup") or {}
    cur_speedups = payload.get("speedup") or {}
    if base_speedups and cur_speedups:
        for key, base in base_speedups.items():
            # ``.../columnar`` keys compare the two *store modes* of the
            # event core — a diagnostic hovering around 1x whose noise
            # at smoke sizes says nothing about scheduler regressions.
            if key.endswith("/columnar"):
                continue
            current = cur_speedups.get(key)
            if current is None or base <= 0:
                continue
            if current < base / max_slowdown:
                failures.append(
                    f"{key}: event-core speedup collapsed to {current:.2f}x "
                    f"(baseline {base:.2f}x, limit {base / max_slowdown:.2f}x)"
                )
    else:
        base_rates = {
            (run["profile"], run["scheme"]): run["tasks_per_s"]
            for run in baseline.get("runs", [])
            if run["scheduler"] == "event"
            and run.get("store", "columnar") == "columnar"
        }
        for run in payload["runs"]:
            if run["scheduler"] != "event":
                continue
            if run.get("store", "columnar") != "columnar":
                continue
            base = base_rates.get((run["profile"], run["scheme"]))
            if not base:
                continue
            if base / run["tasks_per_s"] > max_slowdown:
                failures.append(
                    f"{run['profile']}/{run['scheme']}: "
                    f"{run['tasks_per_s']:,.0f} tasks/s is more than "
                    f"{max_slowdown:.2f}x slower than baseline {base:,.0f} tasks/s"
                )
    if not payload.get("metrics_identical", True):
        failures.append("event and reference schedulers diverged in RunMetrics")
    return failures


def save_payload(payload: dict, path: Path | str) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
