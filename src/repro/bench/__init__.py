"""Performance harnesses: repeatable engine benchmarks.

``repro bench`` (CLI) and :mod:`repro.bench.engine_bench` time the
simulation engine itself — not the paper's figures — and emit the
machine-readable ``BENCH_engine.json`` that seeds the repo's
performance trajectory.
"""

from repro.bench.engine_bench import (
    BenchConfig,
    check_against_baseline,
    render_bench,
    run_engine_bench,
)

__all__ = [
    "BenchConfig",
    "check_against_baseline",
    "render_bench",
    "run_engine_bench",
]
