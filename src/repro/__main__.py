"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream closed early (e.g. `repro lint ... | head`); die quietly
    # like a well-behaved filter instead of printing a traceback.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(141)  # 128 + SIGPIPE
