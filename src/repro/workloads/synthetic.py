"""Synthetic random-DAG workloads.

Beyond the fixed SparkBench/HiBench shapes, a seeded generator that
samples structurally valid applications from a parameter envelope:
number of jobs, stage depth, cache probability, reuse locality (how far
ahead a cached RDD's next reference lands) and size/CPU profiles.  Two
uses:

* **robustness studies** — policy orderings should hold across the
  whole family, not just the fourteen tuned workloads
  (``benchmarks/test_robustness_random_dags.py``);
* **scale testing** — arbitrarily large applications for engine
  throughput measurements.

Generation is fully deterministic per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dag.context import SparkApplication, SparkContext
from repro.dag.rdd import RDD


@dataclass(frozen=True)
class SyntheticConfig:
    """Envelope from which random applications are drawn."""

    num_jobs: int = 8
    stages_per_job: tuple[int, int] = (1, 4)  # shuffle hops per job (min, max)
    cache_probability: float = 0.5
    #: Probability that a job builds on an earlier cached RDD rather
    #: than fresh input (re-reference density).
    reuse_probability: float = 0.7
    #: How far back reused RDDs may come from, in jobs (reference gaps).
    reuse_window: int = 4
    unpersist_probability: float = 0.2
    input_mb: float = 256.0
    partitions: int = 16
    cpu_per_mb: tuple[float, float] = (0.002, 0.02)

    def __post_init__(self) -> None:
        if self.num_jobs <= 0:
            raise ValueError("num_jobs must be positive")
        if not 0 <= self.cache_probability <= 1:
            raise ValueError("cache_probability must be in [0, 1]")
        if not 0 <= self.reuse_probability <= 1:
            raise ValueError("reuse_probability must be in [0, 1]")
        if self.stages_per_job[0] < 1 or self.stages_per_job[1] < self.stages_per_job[0]:
            raise ValueError("stages_per_job must be a valid (min, max) range")


def generate_application(
    seed: int,
    config: SyntheticConfig | None = None,
    rng: random.Random | None = None,
) -> SparkApplication:
    """Sample one application from the envelope, deterministically.

    All randomness flows through one injected ``random.Random`` (DET001:
    never the process-global ``random`` module).  By default the
    generator owns a fresh ``random.Random(seed)``, so identical seeds
    produce identical applications regardless of whatever else the
    process drew; callers threading a shared experiment RNG can inject
    their own instance instead.
    """
    cfg = config or SyntheticConfig()
    rng = rng if rng is not None else random.Random(seed)
    ctx = SparkContext(f"synthetic-{seed}")

    base = ctx.text_file(
        "synthetic-input", size_mb=cfg.input_mb, num_partitions=cfg.partitions
    )
    #: Cached RDDs available for reuse: (created_job, rdd).
    reusable: list[tuple[int, RDD]] = []
    current = base.map(
        cpu_per_mb=rng.uniform(*cfg.cpu_per_mb), name="synthetic-parsed"
    )
    if rng.random() < cfg.cache_probability:
        current.cache()
        reusable.append((0, current))

    for job in range(cfg.num_jobs):
        # Pick the job's source: reuse a recent cached RDD or continue
        # from the latest lineage tip.
        candidates = [
            rdd for created, rdd in reusable
            if rdd.is_cached and job - created <= cfg.reuse_window
        ]
        source = (
            rng.choice(candidates)
            if candidates and rng.random() < cfg.reuse_probability
            else current
        )

        rdd = source
        hops = rng.randint(*cfg.stages_per_job)
        for hop in range(hops):
            cpu = rng.uniform(*cfg.cpu_per_mb)
            op = rng.random()
            if op < 0.45:
                rdd = rdd.map(
                    size_factor=rng.uniform(0.5, 1.2), cpu_per_mb=cpu,
                    name=f"syn-j{job}-map{hop}",
                )
            elif op < 0.65 and candidates:
                other = rng.choice(candidates)
                # Partitions are uniform in this envelope; the join arm
                # is a safety net for future non-uniform configs.
                rdd = (
                    rdd.zip_partitions(
                        other, size_factor=rng.uniform(0.3, 0.8), cpu_per_mb=cpu,
                        name=f"syn-j{job}-zip{hop}",
                    )
                    if other.num_partitions == rdd.num_partitions
                    else rdd.join(other, name=f"syn-j{job}-join{hop}")
                )
            else:
                rdd = rdd.reduce_by_key(
                    size_factor=rng.uniform(0.3, 1.0), cpu_per_mb=cpu,
                    name=f"syn-j{job}-agg{hop}",
                )
            if rng.random() < cfg.cache_probability / hops:
                rdd.cache()
                reusable.append((job, rdd))
        if rng.random() < cfg.cache_probability:
            rdd.cache()
            reusable.append((job, rdd))
        rdd.count(name=f"syn-job-{job}")
        current = rdd

        # Occasionally unpersist something old (GraphX-style turnover).
        stale = [
            (created, r) for created, r in reusable
            if r.is_cached and job - created > cfg.reuse_window
        ]
        if stale and rng.random() < cfg.unpersist_probability:
            _, victim = rng.choice(stale)
            ctx.unpersist(victim)

    return SparkApplication(ctx)
