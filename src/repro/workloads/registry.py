"""Workload registry: name → :class:`WorkloadSpec`.

The canonical entry point for examples, tests and benchmarks:

>>> from repro.workloads import get_workload, build_workload
>>> app = build_workload("PR")          # SparkBench PageRank, defaults
>>> spec = get_workload("SCC")          # metadata + custom builds
"""

from __future__ import annotations


from repro.dag.context import SparkApplication
from repro.workloads.base import WorkloadParams, WorkloadSpec
from repro.workloads.hibench.bayes import SPEC as _BAYES
from repro.workloads.hibench.kmeans import SPEC as _HI_KMEANS
from repro.workloads.hibench.pagerank import SPEC as _HI_PAGERANK
from repro.workloads.hibench.sort import SPEC as _SORT
from repro.workloads.hibench.terasort import SPEC as _TERASORT
from repro.workloads.hibench.wordcount import SPEC as _WORDCOUNT
from repro.workloads.sparkbench.connected_components import SPEC as _CC
from repro.workloads.sparkbench.decision_tree import SPEC as _DT
from repro.workloads.sparkbench.kmeans import SPEC as _KM
from repro.workloads.sparkbench.label_propagation import SPEC as _LP
from repro.workloads.sparkbench.linear_regression import SPEC as _LINR
from repro.workloads.sparkbench.logistic_regression import SPEC as _LOGR
from repro.workloads.sparkbench.matrix_factorization import SPEC as _MF
from repro.workloads.sparkbench.pagerank import SPEC as _PR
from repro.workloads.sparkbench.pregel_operation import SPEC as _PO
from repro.workloads.sparkbench.shortest_paths import SPEC as _SP
from repro.workloads.sparkbench.strongly_connected_components import SPEC as _SCC
from repro.workloads.sparkbench.svdpp import SPEC as _SVDPP
from repro.workloads.sparkbench.svm import SPEC as _SVM
from repro.workloads.sparkbench.triangle_count import SPEC as _TC

#: Paper order (Table 3): the fourteen SparkBench workloads.
SPARKBENCH_WORKLOADS: tuple[WorkloadSpec, ...] = (
    _KM, _LINR, _LOGR, _SVM, _DT, _MF, _PR, _TC, _SP, _LP, _SVDPP, _CC, _SCC, _PO,
)

#: Paper order (Table 1): the six HiBench workloads of the preliminary study.
HIBENCH_WORKLOADS: tuple[WorkloadSpec, ...] = (
    _SORT, _WORDCOUNT, _TERASORT, _HI_PAGERANK, _BAYES, _HI_KMEANS,
)

ALL_WORKLOADS: tuple[WorkloadSpec, ...] = SPARKBENCH_WORKLOADS + HIBENCH_WORKLOADS

_BY_NAME: dict[str, WorkloadSpec] = {spec.name: spec for spec in ALL_WORKLOADS}


def register_workload(spec: WorkloadSpec, replace: bool = False) -> WorkloadSpec:
    """Register a dynamically created spec (e.g. an ingested trace).

    Registered specs are first-class: :func:`get_workload`,
    :func:`build_workload` and :func:`workload_names` all see them, so
    experiment harnesses can sweep a recorded application next to the
    synthetic benchmarks.  Re-registering an existing name requires
    ``replace=True``; the built-in benchmark names cannot be replaced.
    """
    if spec.name in _BY_NAME:
        builtin = any(s.name == spec.name for s in ALL_WORKLOADS)
        if builtin:
            raise ValueError(f"cannot replace built-in workload {spec.name!r}")
        if not replace:
            raise ValueError(
                f"workload {spec.name!r} already registered (pass replace=True)"
            )
    _BY_NAME[spec.name] = spec
    return spec


def workload_names(suite: str | None = None) -> list[str]:
    """Registered workload names, optionally filtered by suite.

    Built-in benchmarks come first in paper order; dynamically
    registered specs follow in registration order.
    """
    specs: tuple[WorkloadSpec, ...] = ALL_WORKLOADS + tuple(
        s for s in _BY_NAME.values() if s not in ALL_WORKLOADS
    )
    if suite is not None:
        specs = tuple(s for s in specs if s.suite == suite)
    return [s.name for s in specs]


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload spec by its short name (e.g. ``"SCC"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_BY_NAME)}"
        ) from None


def build_workload(
    name: str,
    params: WorkloadParams | None = None,
    first_rdd_id: int = 0,
    **kwargs,
) -> SparkApplication:
    """Build an application for workload ``name``.

    Keyword arguments are forwarded to :class:`WorkloadParams` when no
    explicit ``params`` is given (``scale=``, ``iterations=``,
    ``partitions=``, ``seed=``).  ``first_rdd_id`` offsets the rdd-id
    namespace (multi-tenant builds).
    """
    if params is not None and kwargs:
        raise TypeError("pass either params or keyword overrides, not both")
    spec = get_workload(name)
    return spec.build(params or WorkloadParams(**kwargs), first_rdd_id=first_rdd_id)
