"""Workload framework: parameterized synthetic SparkBench/HiBench programs.

Each workload module defines a :class:`WorkloadSpec` — metadata matching
the paper's Table 3 rows (category, input size, job type) plus a builder
function that writes the actual RDD program against
:class:`repro.dag.context.SparkContext`.  The builders are *shape
generators*: they reproduce the DAG structure (jobs, stages, cached-RDD
reference patterns, shuffle volumes, CPU intensity) that drives cache
behaviour, not the numerical algorithms themselves.

Common structural patterns shared by several workloads live here:

* :func:`pregel_superstep_loop` — GraphX-style iteration: long-lived
  cached edge RDD referenced every superstep, per-superstep vertex and
  message RDDs cached then unpersisted a few supersteps later.  This is
  the pattern behind PR, CC, SCC, LP, PO, SP and SVD++.
* :func:`gradient_descent_loop` — MLlib-style iteration: one cached
  training set referenced by every iteration job.  Behind LinR, LogR,
  SVM and (with extra sampling jobs) KM and DT.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.dag.context import SparkApplication, SparkContext
from repro.dag.rdd import RDD


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs every workload builder accepts.

    ``scale`` multiplies the input size (and hence every derived RDD);
    ``iterations`` overrides the workload's default iteration count
    (Fig. 10's experiment triples it); ``partitions`` sets the
    parallelism of the main datasets.
    """

    scale: float = 1.0
    iterations: int | None = None
    partitions: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.partitions <= 0:
            raise ValueError("partitions must be positive")
        if self.iterations is not None and self.iterations <= 0:
            raise ValueError("iterations must be positive")


@dataclass(frozen=True)
class WorkloadSpec:
    """Metadata + builder for one benchmark workload."""

    name: str
    full_name: str
    suite: str  # "sparkbench" | "hibench"
    category: str  # paper Table 3 "Category"
    job_type: str  # "CPU intensive" | "I/O intensive" | "Mixed"
    input_mb: float
    default_iterations: int
    builder: Callable[[SparkContext, WorkloadParams], None]
    #: Does ``iterations`` actually change the DAG? (DT's does not,
    #: which the paper calls out in §5.9.)
    iterations_effective: bool = True

    def build(
        self, params: WorkloadParams | None = None, first_rdd_id: int = 0
    ) -> SparkApplication:
        """Record the workload program into a fresh application.

        ``first_rdd_id`` offsets the recording's rdd-id namespace (the
        multi-tenant layer gives each concurrent app a disjoint range).
        """
        params = params or WorkloadParams()
        ctx = SparkContext(self.name, first_rdd_id=first_rdd_id)
        self.builder(ctx, params)
        if not ctx.jobs:
            raise RuntimeError(f"workload {self.name} recorded no jobs")
        return SparkApplication(ctx=ctx, signature=self.name)

    def with_iterations(self, iterations: int) -> WorkloadParams:
        return WorkloadParams(iterations=iterations)


# ----------------------------------------------------------------------
# shared structural patterns
# ----------------------------------------------------------------------
def pregel_superstep_loop(
    ctx: SparkContext,
    edges: RDD,
    vertices: RDD,
    supersteps: int,
    msg_factor: float = 0.4,
    vertex_keep: int = 2,
    jobs_per_superstep: int = 1,
    stages_per_superstep: int = 1,
    cpu_per_mb: float = 0.002,
    delta_tracking: bool = True,
    unpersist_tail: bool = False,
    name: str = "pregel",
) -> RDD:
    """GraphX ``Pregel``-style iteration.

    Per superstep: messages are generated from the (cached) edges
    zipped with the current (cached) vertices, shuffled/reduced to the
    destination partitioning, joined back into a new cached vertex RDD,
    and an action materializes the result (GraphX runs ``count``-like
    jobs every superstep).  Vertex RDDs older than ``vertex_keep``
    supersteps are unpersisted, mirroring GraphX's aggressive
    uncaching.  Extra ``stages_per_superstep`` insert additional
    shuffle hops (SCC/LP-style heavy supersteps).  With
    ``delta_tracking`` the message stage also reads the *previous*
    vertex generation (GraphX's delta joins), raising the per-stage
    reference density like the paper's graph workloads.
    """
    if supersteps <= 0:
        raise ValueError("supersteps must be positive")

    def _factor(target_mb: float, *parents: RDD) -> float:
        """size_factor that makes the child partition ``target_mb`` big."""
        total = sum(p.partition_size_mb for p in parents)
        return target_mb / total if total > 0 else 0.0

    vertex_mb = vertices.partition_size_mb
    history: list[RDD] = [vertices]
    current = vertices
    previous = vertices
    for step in range(supersteps):
        # Messages are a fraction of the *vertex* data — shuffles stay
        # small relative to the cached reads (the paper's graph
        # workloads read 10-25x more stage input than they shuffle).
        msg_mb = msg_factor * vertex_mb
        msgs = edges.zip_partitions(
            current, size_factor=_factor(msg_mb, edges, current),
            cpu_per_mb=cpu_per_mb, name=f"{name}-msgs-{step}",
        )
        if delta_tracking and previous is not current:
            msgs = msgs.zip_partitions(
                previous, size_factor=_factor(msg_mb, msgs, previous),
                cpu_per_mb=cpu_per_mb / 2, name=f"{name}-delta-{step}",
            )
        reduced = msgs.reduce_by_key(
            size_factor=0.8, cpu_per_mb=cpu_per_mb, name=f"{name}-agg-{step}"
        )
        for extra in range(stages_per_superstep - 1):
            reduced = reduced.reduce_by_key(
                size_factor=1.0, cpu_per_mb=cpu_per_mb,
                name=f"{name}-agg-{step}.{extra + 1}",
            )
        applied = current.zip_partitions(
            reduced, size_factor=_factor(vertex_mb, current, reduced),
            cpu_per_mb=cpu_per_mb, name=f"{name}-apply-{step}",
        )
        # Materializing the new generation ships it to the edge
        # partitions (GraphX's replicated vertex view), touching the
        # cached edge RDD once more; the vertex size stays stable.
        current = applied.zip_partitions(
            edges, size_factor=_factor(vertex_mb, applied, edges),
            cpu_per_mb=cpu_per_mb / 2, name=f"{name}-vertices-{step + 1}",
        ).cache()
        for _ in range(jobs_per_superstep):
            current.count(name=f"{name}-step-{step}")
        previous = history[-1]
        history.append(current)
        if len(history) > vertex_keep:
            stale = history.pop(0)
            ctx.unpersist(stale)
    if unpersist_tail:
        # Phase handoff (e.g. SCC's fwd → bwd): only the final
        # generation survives; GraphX unpersists superseded views when
        # the next phase starts.
        for stale in history[:-1]:
            if stale.is_cached:
                ctx.unpersist(stale)
    return current


def gradient_descent_loop(
    ctx: SparkContext,
    data: RDD,
    iterations: int,
    stages_per_iteration: int = 1,
    cpu_per_mb: float = 0.02,
    gradient_factor: float = 0.01,
    name: str = "gd",
) -> None:
    """MLlib-style iterative optimization over one cached training set.

    Each iteration is one job: a map over the cached data computing
    per-partition gradients, optionally tree-aggregated through extra
    shuffle stages, finished by a driver-side collect.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    for it in range(iterations):
        grads = data.map_partitions(
            size_factor=gradient_factor, cpu_per_mb=cpu_per_mb,
            name=f"{name}-grad-{it}",
        )
        agg = grads
        for lvl in range(stages_per_iteration - 1):
            agg = agg.reduce_by_key(
                size_factor=0.5, cpu_per_mb=cpu_per_mb / 4,
                name=f"{name}-tree-{it}.{lvl}",
            )
        agg.collect(name=f"{name}-iter-{it}")


def scaled(params: WorkloadParams, base_mb: float) -> float:
    """Input size after applying the params' scale factor."""
    return base_mb * params.scale


def iterations_or_default(params: WorkloadParams, default: int) -> int:
    return params.iterations if params.iterations is not None else default
