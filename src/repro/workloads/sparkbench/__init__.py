"""SparkBench workload generators — the paper's 14 evaluation workloads.

Each module builds one application's synthetic DAG, tuned to the
paper's Table 1/3 shapes (job counts, stage structure, reference
distances); see ``docs/workloads.md``.
"""
