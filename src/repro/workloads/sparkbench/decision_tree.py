"""Decision Tree (DT) — SparkBench CPU-intensive workload.

Paper shape (Table 3): 10 jobs / 16 stages, 3.5 GB input, CPU
intensive.  Each tree level is one job computing split statistics over
the cached training set; deeper levels add a tree-aggregation shuffle.
The level count is fixed by the tree depth, not by the generic
``iterations`` knob — the paper notes in §5.9 that tripling iterations
leaves DT's DAG unchanged, which ``iterations_effective=False``
records.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import WorkloadParams, WorkloadSpec, scaled

TREE_DEPTH = 8


def build_decision_tree(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 350.0)

    raw = ctx.text_file("dt-input", size_mb=size, num_partitions=params.partitions)
    data = raw.map(size_factor=1.1, cpu_per_mb=0.03, name="dt-treepoints").cache()
    data.count(name="dt-load")

    for level in range(TREE_DEPTH):
        stats = data.map_partitions(
            size_factor=0.03, cpu_per_mb=0.09, name=f"dt-stats-{level}"
        )
        # Deeper levels have more candidate splits to aggregate.
        if level >= 2:
            stats = stats.reduce_by_key(size_factor=0.5, name=f"dt-agg-{level}")
        stats.collect(name=f"dt-level-{level}")

    final = data.map(size_factor=0.01, cpu_per_mb=0.03, name="dt-predict")
    final.collect(name="dt-eval")


SPEC = WorkloadSpec(
    name="DT",
    full_name="Decision Tree",
    suite="sparkbench",
    category="Other Workloads",
    job_type="CPU intensive",
    input_mb=350.0,
    default_iterations=1,
    builder=build_decision_tree,
    iterations_effective=False,
)
