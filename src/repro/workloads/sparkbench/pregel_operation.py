"""Pregel Operation (PO) — SparkBench workload.

Paper shape (Table 3): 17 jobs / 467 stages with 65 active / 283 RDDs,
**I/O intensive**.  A generic GraphX ``Pregel`` run: many supersteps of
message exchange over a long-lived cached edge RDD — structurally
between CC (few supersteps) and LP (many supersteps).
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    iterations_or_default,
    pregel_superstep_loop,
    scaled,
)

DEFAULT_ITERATIONS = 15


def build_pregel_operation(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 140.0)
    parts = params.partitions
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("po-edges", size_mb=size, num_partitions=parts)
    edges = raw.map(size_factor=1.2, cpu_per_mb=0.002, name="po-edges").cache()
    state = edges.map(size_factor=0.35, cpu_per_mb=0.002, name="po-state-0").cache()
    state.count(name="po-init")

    final = pregel_superstep_loop(
        ctx, edges, state, supersteps=iters,
        msg_factor=0.5, vertex_keep=2, stages_per_superstep=3,
        cpu_per_mb=0.002, name="po",
    )
    result = final.reduce_by_key(size_factor=0.05, name="po-result")
    result.collect(name="po-final")


SPEC = WorkloadSpec(
    name="PO",
    full_name="Pregel Operation",
    suite="sparkbench",
    category="Other Workloads",
    job_type="I/O intensive",
    input_mb=140.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_pregel_operation,
)
