"""PageRank (PR) — SparkBench web-search workload.

Paper shape (Table 3): 7 jobs / 69 stages with 21 active / 95 RDDs,
934 MB input, **I/O intensive** — the flagship workload for MRD's
comparison against MemTune (Fig. 6, up to 68 % improvement).  GraphX
structure: a long-lived cached edge RDD referenced by every superstep,
per-superstep cached vertex/rank RDDs unpersisted two steps later, and
a final ranking job.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    iterations_or_default,
    pregel_superstep_loop,
    scaled,
)

DEFAULT_ITERATIONS = 5


def build_pagerank(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 934.0)
    parts = params.partitions
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("pr-edges", size_mb=size, num_partitions=parts)
    edges = raw.map(size_factor=0.8, cpu_per_mb=0.002, name="pr-edges").cache()
    vertices = edges.reduce_by_key(
        size_factor=0.25, cpu_per_mb=0.002, name="pr-ranks-0"
    ).cache()
    vertices.count(name="pr-init")

    final = pregel_superstep_loop(
        ctx, edges, vertices, supersteps=iters,
        msg_factor=0.5, vertex_keep=2, stages_per_superstep=3,
        cpu_per_mb=0.002, name="pr",
    )
    top = final.sort_by_key(cpu_per_mb=0.002, name="pr-top")
    top.collect(name="pr-final")


SPEC = WorkloadSpec(
    name="PR",
    full_name="Page Rank",
    suite="sparkbench",
    category="Web Search",
    job_type="I/O intensive",
    input_mb=934.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_pagerank,
)
