"""SVM — SparkBench CPU-intensive workload.

Paper shape (Table 3): 10 jobs / 28 stages with 17 active (stage
skipping!), 3.8 GB input, large shuffle volume (3.2 GB).  The training
loop repeatedly references a shuffled, cached split of the data, so
each iteration's job re-creates — and skips — the split's shuffle
stages, which is where the 11 skipped stages come from.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    iterations_or_default,
    scaled,
)

DEFAULT_ITERATIONS = 8


def build_svm(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 380.0)
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("svm-input", size_mb=size, num_partitions=params.partitions)
    parsed = raw.map(size_factor=1.0, cpu_per_mb=0.02, name="svm-points")
    # Train/validation split goes through a full repartition shuffle
    # (3.2 GB shuffle volume in the paper's measurement).
    train = parsed.partition_by(name="svm-train").cache()
    validation = parsed.sample(fraction=0.2, name="svm-val-sample").partition_by(
        name="svm-validation"
    ).cache()
    # One load job materializes both cached splits; the validation set
    # is then untouched until the final evaluation (a long-distance
    # reference that distance-aware policies handle and LRU does not).
    train.union(validation).count(name="svm-load")

    for it in range(iters):
        grads = train.map_partitions(
            size_factor=0.02, cpu_per_mb=0.08, name=f"svm-grad-{it}"
        )
        agg = grads.reduce_by_key(size_factor=0.5, name=f"svm-agg-{it}")
        agg.collect(name=f"svm-iter-{it}")

    # Final evaluation touches the held-out validation set cached at the
    # very beginning: one long-distance reference.
    score = validation.map(size_factor=0.05, cpu_per_mb=0.05, name="svm-score")
    score.collect(name="svm-eval")


SPEC = WorkloadSpec(
    name="SVM",
    full_name="SVM",
    suite="sparkbench",
    category="Machine Learning",
    job_type="CPU intensive",
    input_mb=380.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_svm,
)
