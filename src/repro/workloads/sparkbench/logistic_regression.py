"""Logistic Regression (LogR) — SparkBench CPU-intensive workload.

Paper shape (Table 3): 7 jobs / 10 stages, 11.1 GB input, CPU
intensive.  Same gradient-descent skeleton as LinR with one more
iteration and a slightly heavier per-MB cost (logistic loss).
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    gradient_descent_loop,
    iterations_or_default,
    scaled,
)

DEFAULT_ITERATIONS = 6


def build_logistic_regression(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 1110.0)
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("logr-input", size_mb=size, num_partitions=params.partitions)
    data = raw.map(size_factor=1.0, cpu_per_mb=0.02, name="logr-points").cache()
    data.count(name="logr-load")

    # 3 tree-aggregated iterations (2 stages) + the rest single-stage:
    # 1 + 3*2 + 3*1 = 10 stages, 7 jobs at defaults.
    tree_iters = min(3, iters - 1)
    if tree_iters > 0:
        gradient_descent_loop(
            ctx, data, iterations=tree_iters, stages_per_iteration=2,
            cpu_per_mb=0.07, name="logr-tree",
        )
    plain_iters = (iters - 1) - tree_iters
    if plain_iters > 0:
        gradient_descent_loop(
            ctx, data, iterations=plain_iters, stages_per_iteration=1,
            cpu_per_mb=0.07, name="logr-plain",
        )


SPEC = WorkloadSpec(
    name="LogR",
    full_name="Logistic Regression",
    suite="sparkbench",
    category="Machine Learning",
    job_type="CPU intensive",
    input_mb=1110.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_logistic_regression,
)
