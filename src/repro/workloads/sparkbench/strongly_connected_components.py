"""Strongly Connected Components (SCC) — SparkBench workload.

Paper shape (Tables 1 and 3): 26 jobs / 839 stages with 93 active /
560 RDDs — the most iterative workload of the suite, with the largest
reference distances after LP (avg stage distance 29.96, max 90) and the
paper's single biggest win: full MRD reduces SCC's runtime to **20 %**
of LRU's.  GraphX SCC nests forward- and backward-reachability Pregel
phases inside an outer trimming loop; every outer round re-creates the
whole history as skipped stages.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    iterations_or_default,
    pregel_superstep_loop,
    scaled,
)

DEFAULT_ITERATIONS = 4  # outer trimming rounds


def build_scc(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 90.0)
    parts = params.partitions
    outer_rounds = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("scc-edges", size_mb=size, num_partitions=parts)
    edges = raw.map(size_factor=1.0, cpu_per_mb=0.002, name="scc-edges").cache()
    colors = edges.map(size_factor=0.4, cpu_per_mb=0.002, name="scc-colors-0").cache()
    colors.count(name="scc-init")

    current = colors
    for rnd in range(outer_rounds):
        # Forward reachability phase.
        current = pregel_superstep_loop(
            ctx, edges, current, supersteps=3,
            msg_factor=0.5, vertex_keep=2, stages_per_superstep=3,
            cpu_per_mb=0.002, unpersist_tail=True, name=f"scc-fwd-{rnd}",
        )
        # Backward reachability phase on the transposed graph (another
        # shuffle hop per superstep).
        current = pregel_superstep_loop(
            ctx, edges, current, supersteps=2,
            msg_factor=0.5, vertex_keep=2, stages_per_superstep=4,
            cpu_per_mb=0.002, unpersist_tail=True, name=f"scc-bwd-{rnd}",
        )
        # Trim: peel off the identified component (one job).
        trimmed = current.zip_partitions(
            edges, size_factor=0.8, cpu_per_mb=0.002, name=f"scc-trim-{rnd}"
        ).cache()
        trimmed.count(name=f"scc-trim-job-{rnd}")
        ctx.unpersist(current)
        current = trimmed

    summary = current.reduce_by_key(size_factor=0.05, name="scc-summary")
    summary.collect(name="scc-final")


SPEC = WorkloadSpec(
    name="SCC",
    full_name="Strongly Connected Component",
    suite="sparkbench",
    category="Other Workloads",
    job_type="I/O intensive",
    input_mb=90.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_scc,
)
