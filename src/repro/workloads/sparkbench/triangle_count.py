"""Triangle Count (TC) — SparkBench graph-computation workload.

Paper shape (Table 3): only 2 jobs / 11 stages, 74 RDDs with just 0.8
references per RDD — most cached RDDs are never re-read, which is why
the paper finds caching policy makes little difference here (§5.8:
"the overall low performance of TriangleCount ... is due to its
workload characteristic of low average references per RDD").  The
structure is a canonicalize-join-count pipeline: many intermediate
cached RDDs, nearly all referenced zero or one times.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import WorkloadParams, WorkloadSpec, scaled


def build_triangle_count(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 270.0)
    parts = params.partitions

    raw = ctx.text_file("tc-edges", size_mb=size, num_partitions=parts)
    edges = raw.map(size_factor=0.9, cpu_per_mb=0.003, name="tc-edges").cache()
    canon = edges.map(size_factor=1.0, cpu_per_mb=0.003, name="tc-canonical").cache()
    # Job 1: build the adjacency sets (several chained shuffles, each
    # producing a cached-but-rarely-reused intermediate).
    neighbors = canon.group_by_key(size_factor=1.1, name="tc-neighbors").cache()
    by_src = neighbors.map(size_factor=1.0, name="tc-by-src").cache()
    by_dst = canon.partition_by(name="tc-by-dst").cache()
    adjacency = by_src.join(by_dst, size_factor=1.4, name="tc-adjacency").cache()
    adjacency.count(name="tc-build")
    # Job 2: count triangles by intersecting neighbor sets.
    triads = adjacency.join(neighbors, size_factor=0.8, name="tc-triads")
    counts = triads.reduce_by_key(size_factor=0.1, name="tc-counts")
    counts.collect(name="tc-count")


SPEC = WorkloadSpec(
    name="TC",
    full_name="Triangle Count",
    suite="sparkbench",
    category="Graph Computation",
    job_type="Mixed",
    input_mb=270.0,
    default_iterations=1,
    builder=build_triangle_count,
    iterations_effective=False,
)
