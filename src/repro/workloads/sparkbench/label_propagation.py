"""Label Propagation (LP) — SparkBench workload.

Paper shape (Tables 1 and 3): 23 jobs / 858 stages with only 87 active
/ 377 RDDs, **I/O intensive**, and the *largest* reference distances of
the suite (avg stage distance 28.37, max 85).  The huge stage distances
come from the skipped-stage explosion: each superstep's job re-creates
the entire lineage of every earlier superstep as skipped stages, so in
raw ``StageID`` units consecutive references to the long-lived edge RDD
are dozens of IDs apart.  LP is MRD's best case (Fig. 11).
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    iterations_or_default,
    pregel_superstep_loop,
    scaled,
)

DEFAULT_ITERATIONS = 21


def build_label_propagation(ctx: SparkContext, params: WorkloadParams) -> None:
    # LP's raw input is tiny (1.3 MB in the paper) but the per-superstep
    # working set is amplified by the community-label payloads.
    size = scaled(params, 40.0)
    parts = params.partitions
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("lp-edges", size_mb=size, num_partitions=parts)
    edges = raw.flat_map(size_factor=8.0, cpu_per_mb=0.002, name="lp-edges").cache()
    labels = edges.map(size_factor=0.5, cpu_per_mb=0.002, name="lp-labels-0").cache()
    labels.count(name="lp-init")

    final = pregel_superstep_loop(
        ctx, edges, labels, supersteps=iters,
        msg_factor=0.6, vertex_keep=3, stages_per_superstep=3,
        cpu_per_mb=0.002, name="lp",
    )
    hist = final.reduce_by_key(size_factor=0.05, name="lp-histogram")
    hist.collect(name="lp-final")


SPEC = WorkloadSpec(
    name="LP",
    full_name="Label Propagation",
    suite="sparkbench",
    category="Other Workloads",
    job_type="I/O intensive",
    input_mb=40.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_label_propagation,
)
