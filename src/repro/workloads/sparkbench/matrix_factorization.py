"""Matrix Factorization (MF / ALS) — SparkBench machine-learning workload.

Paper shape (Table 3): 8 jobs / 64 stages with only 22 active / 103
RDDs, 1.1 GB input, mixed CPU+I/O with ~1.9 GB of shuffle.  ALS
alternates between solving user factors (joining cached ratings with
item factors) and item factors (the mirror join).  Each half-iteration
extends the factor lineage, so later jobs re-create — and skip — the
whole earlier chain, producing the large skipped-stage count.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    iterations_or_default,
    scaled,
)

DEFAULT_ITERATIONS = 3


def build_matrix_factorization(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 110.0)
    parts = params.partitions
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("mf-ratings", size_mb=size, num_partitions=parts)
    ratings_by_user = raw.map(cpu_per_mb=0.01, name="mf-by-user").partition_by(
        name="mf-user-part"
    ).cache()
    ratings_by_item = raw.map(cpu_per_mb=0.01, name="mf-by-item").partition_by(
        name="mf-item-part"
    ).cache()
    users = ratings_by_user.map(size_factor=0.4, name="mf-users-0").cache()
    items = ratings_by_item.map(size_factor=0.4, name="mf-items-0").cache()
    users.count(name="mf-init")

    for it in range(iters):
        # Solve item factors from user factors + ratings (shuffle join).
        new_items = ratings_by_item.join(
            users, size_factor=0.35, cpu_per_mb=0.02, name=f"mf-items-{it + 1}"
        ).cache()
        new_items.count(name=f"mf-item-solve-{it}")
        ctx.unpersist(items)
        items = new_items
        # Solve user factors from item factors + ratings.
        new_users = ratings_by_user.join(
            items, size_factor=0.35, cpu_per_mb=0.02, name=f"mf-users-{it + 1}"
        ).cache()
        new_users.count(name=f"mf-user-solve-{it}")
        ctx.unpersist(users)
        users = new_users

    rmse = users.zip_partitions(
        ratings_by_user, size_factor=0.02, cpu_per_mb=0.02, name="mf-rmse"
    )
    rmse.collect(name="mf-eval")


SPEC = WorkloadSpec(
    name="MF",
    full_name="Matrix Factorization",
    suite="sparkbench",
    category="Machine Learning",
    job_type="Mixed",
    input_mb=110.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_matrix_factorization,
)
