"""Shortest Paths (SP) — SparkBench workload.

Paper shape (Table 3): 3 jobs / 8 stages / 34 RDDs with 1.33 refs per
RDD and near-zero job distance — a short Bellman-Ford-style relaxation
with very few supersteps, so little opportunity for any DAG-aware
policy (avg stage distance 1.19 in Table 1).
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    iterations_or_default,
    pregel_superstep_loop,
    scaled,
)

DEFAULT_ITERATIONS = 2


def build_shortest_paths(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 290.0)
    parts = params.partitions
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("sp-edges", size_mb=size, num_partitions=parts)
    edges = raw.map(size_factor=0.9, cpu_per_mb=0.003, name="sp-edges").cache()
    dists = edges.map(size_factor=0.2, cpu_per_mb=0.003, name="sp-dist-0").cache()
    dists.count(name="sp-init")

    final = pregel_superstep_loop(
        ctx, edges, dists, supersteps=iters,
        msg_factor=0.3, vertex_keep=2, stages_per_superstep=1,
        cpu_per_mb=0.003, name="sp",
    )
    # No separate final job: the last superstep's result is the answer.


SPEC = WorkloadSpec(
    name="SP",
    full_name="Shortest Paths",
    suite="sparkbench",
    category="Other Workloads",
    job_type="Mixed",
    input_mb=290.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_shortest_paths,
)
