"""Connected Components (CC) — SparkBench workload.

Paper shape (Table 3): 6 jobs / 50 stages with 19 active / 85 RDDs,
**I/O intensive**.  CC is the paper's motivating example (Fig. 2) and
its best case against LRC (Fig. 5, 45 % improvement): label-exchange
supersteps over a long-lived cached edge RDD, with per-superstep
component-label RDDs whose references straddle several stages.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    iterations_or_default,
    pregel_superstep_loop,
    scaled,
)

DEFAULT_ITERATIONS = 4


def build_connected_components(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 240.0)
    parts = params.partitions
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("cc-edges", size_mb=size, num_partitions=parts)
    edges = raw.map(size_factor=0.9, cpu_per_mb=0.002, name="cc-edges").cache()
    components = edges.map(size_factor=0.3, cpu_per_mb=0.002, name="cc-labels-0").cache()
    components.count(name="cc-init")

    final = pregel_superstep_loop(
        ctx, edges, components, supersteps=iters,
        msg_factor=0.5, vertex_keep=2, stages_per_superstep=3,
        cpu_per_mb=0.002, name="cc",
    )
    sizes = final.reduce_by_key(size_factor=0.05, name="cc-sizes")
    sizes.collect(name="cc-final")


SPEC = WorkloadSpec(
    name="CC",
    full_name="Connected Component",
    suite="sparkbench",
    category="Other Workloads",
    job_type="I/O intensive",
    input_mb=240.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_connected_components,
)
