"""SVD++ — SparkBench graph-computation workload.

Paper shape (Table 3): 14 jobs / 103 stages with 27 active / 105 RDDs,
**I/O intensive** with 9.4 GB of shuffle.  SVD++ is the workload the
paper uses for the cache-size sweep (Fig. 7).  GraphX implementation:
per iteration, *two* jobs update user and item latent factors against
the long-lived cached edge (ratings) RDD.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    iterations_or_default,
    pregel_superstep_loop,
    scaled,
)

DEFAULT_ITERATIONS = 6


def build_svdpp(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 450.0)
    parts = params.partitions
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("svdpp-ratings", size_mb=size, num_partitions=parts)
    edges = raw.map(size_factor=1.0, cpu_per_mb=0.003, name="svdpp-edges").cache()
    factors = edges.reduce_by_key(
        size_factor=0.4, cpu_per_mb=0.003, name="svdpp-factors-0"
    ).cache()
    factors.count(name="svdpp-init")

    final = pregel_superstep_loop(
        ctx, edges, factors, supersteps=iters,
        msg_factor=0.7, vertex_keep=2, jobs_per_superstep=2,
        stages_per_superstep=2, cpu_per_mb=0.003, name="svdpp",
    )
    err = final.zip_partitions(edges, size_factor=0.02, cpu_per_mb=0.003, name="svdpp-err")
    err.collect(name="svdpp-eval")


SPEC = WorkloadSpec(
    name="SVD++",
    full_name="SVD++",
    suite="sparkbench",
    category="Graph Computation",
    job_type="I/O intensive",
    input_mb=450.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_svdpp,
)
