"""K-Means (KM) — SparkBench machine-learning workload.

Paper shape (Table 3): 17 jobs / 20 stages (none skipped) / 37 RDDs,
mixed CPU+I/O, 5.5 GB input.  MLlib-style structure: an initialization
job samples initial centroids, each Lloyd iteration is one job mapping
over the cached training set, and a final job evaluates the clustering
cost.  The training set and point norms are cached and re-referenced by
every iteration; the initialization sample is cached early and touched
again only by the final evaluation, giving KM its mix of short and long
reference gaps.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    iterations_or_default,
    scaled,
)

DEFAULT_ITERATIONS = 15


def build_kmeans(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 550.0)
    parts = params.partitions
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("km-input", size_mb=size, num_partitions=parts)
    data = raw.map(size_factor=0.9, cpu_per_mb=0.01, name="km-points").cache()
    norms = data.map(size_factor=0.1, cpu_per_mb=0.005, name="km-norms").cache()

    # Initialization: k-means|| style sampling with a collect per round.
    sample = data.sample(fraction=0.05, name="km-sample").cache()
    centers = sample.distinct(size_factor=0.5, name="km-init-centers")
    centers.collect(name="km-init")

    # Lloyd iterations: one job each, mapping over cached points+norms.
    for it in range(iters):
        assigned = data.zip_partitions(
            norms, size_factor=0.05, cpu_per_mb=0.02, name=f"km-assign-{it}"
        )
        assigned.collect(name=f"km-iter-{it}")

    # Final cost evaluation touches the training set, the norms and the
    # early sample again (long job-distance reference).
    cost = data.zip_partitions(norms, size_factor=0.02, cpu_per_mb=0.02, name="km-cost")
    scored = cost.union(sample.map(size_factor=0.02, name="km-sample-cost"))
    scored.reduce_by_key(size_factor=0.5, name="km-cost-agg").collect(name="km-eval")


SPEC = WorkloadSpec(
    name="KM",
    full_name="K-Means",
    suite="sparkbench",
    category="Machine Learning",
    job_type="Mixed",
    input_mb=550.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_kmeans,
)
