"""Linear Regression (LinR) — SparkBench CPU-intensive workload.

Paper shape (Table 3): 6 jobs / 9 stages, 7.7 GB input, CPU intensive.
Structure: one data-loading job followed by gradient-descent iterations
over a cached training set, with a tree-aggregation shuffle in the
early iterations (MLlib's ``treeAggregate``).  High per-MB CPU cost is
what makes the workload compute-bound: cache misses are cheap relative
to the gradient computation, so (as the paper observes) DAG-aware
caching buys little here.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    gradient_descent_loop,
    iterations_or_default,
    scaled,
)

DEFAULT_ITERATIONS = 5


def build_linear_regression(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 770.0)
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("linr-input", size_mb=size, num_partitions=params.partitions)
    data = raw.map(size_factor=1.0, cpu_per_mb=0.02, name="linr-points").cache()
    data.count(name="linr-load")

    # Tree aggregation (2 stages) for the first iterations, plain
    # aggregation afterwards: 1 + 3*2 + 2*1 = 9 stages, 6 jobs at the
    # default 5 iterations.
    tree_iters = min(3, iters)
    gradient_descent_loop(
        ctx, data, iterations=tree_iters, stages_per_iteration=2,
        cpu_per_mb=0.06, name="linr-tree",
    )
    if iters > tree_iters:
        gradient_descent_loop(
            ctx, data, iterations=iters - tree_iters, stages_per_iteration=1,
            cpu_per_mb=0.06, name="linr-plain",
        )


SPEC = WorkloadSpec(
    name="LinR",
    full_name="Linear Regression",
    suite="sparkbench",
    category="Other Workloads",
    job_type="CPU intensive",
    input_mb=770.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_linear_regression,
)
