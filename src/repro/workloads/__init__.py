"""Synthetic SparkBench and HiBench workload generators."""

from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    gradient_descent_loop,
    pregel_superstep_loop,
)
from repro.workloads.registry import (
    ALL_WORKLOADS,
    HIBENCH_WORKLOADS,
    SPARKBENCH_WORKLOADS,
    build_workload,
    get_workload,
    workload_names,
)

__all__ = [
    "ALL_WORKLOADS",
    "HIBENCH_WORKLOADS",
    "SPARKBENCH_WORKLOADS",
    "WorkloadParams",
    "WorkloadSpec",
    "build_workload",
    "get_workload",
    "gradient_descent_loop",
    "pregel_superstep_loop",
    "workload_names",
]
