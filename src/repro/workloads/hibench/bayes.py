"""HiBench Bayes — Naive Bayes training with moderate reference gaps.

Table 1: avg job distance 2.09 / stage distance 3.23 — HiBench's only
workload besides K-Means with any reuse: term frequencies are cached
during the vectorization jobs and re-read by the model-fitting job a
few jobs later.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import WorkloadParams, WorkloadSpec, scaled


def build_bayes(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 400.0)
    parts = params.partitions

    raw = ctx.text_file("bayes-docs", size_mb=size, num_partitions=parts)
    tokens = raw.flat_map(size_factor=1.1, cpu_per_mb=0.01, name="bayes-tokens").cache()
    # Job 0: document frequencies.
    df = tokens.reduce_by_key(size_factor=0.2, name="bayes-df")
    df.collect(name="bayes-df-job")
    # Job 1: term frequencies, cached for the training job.
    tf = tokens.map(size_factor=0.8, cpu_per_mb=0.01, name="bayes-tf").cache()
    tf.count(name="bayes-tf-job")
    # Job 2: vectorize (no reuse of tokens from here on).
    vectors = tf.map(size_factor=0.5, cpu_per_mb=0.02, name="bayes-vectors").cache()
    vectors.count(name="bayes-vectorize")
    # Job 3: label statistics.
    labels = vectors.reduce_by_key(size_factor=0.1, name="bayes-labels")
    labels.collect(name="bayes-labels-job")
    # Job 4: model fit re-reads tf (distance ≈ 3 jobs) and the vectors.
    model = vectors.zip_partitions(tf, size_factor=0.1, cpu_per_mb=0.03, name="bayes-model")
    model.collect(name="bayes-train")


SPEC = WorkloadSpec(
    name="Bayes",
    full_name="Bayes",
    suite="hibench",
    category="Machine Learning",
    job_type="Mixed",
    input_mb=400.0,
    default_iterations=1,
    builder=build_bayes,
    iterations_effective=False,
)
