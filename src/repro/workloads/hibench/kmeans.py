"""HiBench K-Means — the one HiBench workload with real reuse.

Table 1: avg job distance 6.08 / stage distance 6.60 — comparable to
SparkBench's KM because it is the same MLlib algorithm; the distances
are slightly larger since HiBench's runner interleaves evaluation jobs
that do not touch the cached points.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    iterations_or_default,
    scaled,
)

DEFAULT_ITERATIONS = 8


def build_hibench_kmeans(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 450.0)
    parts = params.partitions
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("hkm-input", size_mb=size, num_partitions=parts)
    points = raw.map(size_factor=0.9, cpu_per_mb=0.01, name="hkm-points").cache()
    points.count(name="hkm-load")

    for it in range(iters):
        # The assignment job touches the cached points...
        assign = points.map_partitions(size_factor=0.05, cpu_per_mb=0.02, name=f"hkm-assign-{it}")
        assign.collect(name=f"hkm-iter-{it}")
        # ...followed by a bookkeeping job on driver-side data that does
        # NOT touch the cache, stretching the reference gaps.
        probe = ctx.parallelize(f"hkm-centers-{it}", size_mb=1.0, num_partitions=parts)
        probe.collect(name=f"hkm-probe-job-{it}")

    final = points.map(size_factor=0.02, cpu_per_mb=0.02, name="hkm-cost")
    final.collect(name="hkm-eval")


SPEC = WorkloadSpec(
    name="HiKMeans",
    full_name="K-Means (HiBench)",
    suite="hibench",
    category="Machine Learning",
    job_type="Mixed",
    input_mb=450.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_hibench_kmeans,
)
