"""HiBench workload generators (Sort, WordCount, TeraSort, …).

The paper profiled HiBench and dropped it for near-zero reference
distances; these builders reproduce that property (EXPERIMENTS.md,
Table 1 notes).
"""
