"""HiBench WordCount — one map+reduce job, no caching (Table 1: all zeros)."""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import WorkloadParams, WorkloadSpec, scaled


def build_wordcount(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 600.0)
    raw = ctx.text_file("wc-input", size_mb=size, num_partitions=params.partitions)
    words = raw.flat_map(size_factor=1.2, cpu_per_mb=0.004, name="wc-words")
    counts = words.reduce_by_key(size_factor=0.1, name="wc-counts")
    counts.save(name="wordcount")


SPEC = WorkloadSpec(
    name="WordCount",
    full_name="WordCount",
    suite="hibench",
    category="Micro Benchmark",
    job_type="CPU intensive",
    input_mb=600.0,
    default_iterations=1,
    builder=build_wordcount,
    iterations_effective=False,
)
