"""HiBench PageRank — MapReduce-ported iteration, barely any caching.

Unlike SparkBench's GraphX PageRank, the HiBench port chains shuffle
iterations inside very few jobs without persisting intermediates, so
reference distances are nearly zero (Table 1: avg job distance 0.00,
avg stage distance 0.09, max 2) — a structural contrast the preliminary
study used to justify dropping HiBench.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import (
    WorkloadParams,
    WorkloadSpec,
    iterations_or_default,
    scaled,
)

DEFAULT_ITERATIONS = 3


def build_hibench_pagerank(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 500.0)
    iters = iterations_or_default(params, DEFAULT_ITERATIONS)

    raw = ctx.text_file("hpr-edges", size_mb=size, num_partitions=params.partitions)
    links = raw.map(size_factor=0.9, cpu_per_mb=0.003, name="hpr-links").cache()
    ranks = links.map(size_factor=0.2, cpu_per_mb=0.003, name="hpr-ranks-0")
    # All iterations chain into ONE lineage; only the final action runs a
    # job, so the cached links RDD is referenced once with distance ~2.
    for it in range(iters):
        contribs = links.zip_partitions(
            ranks, size_factor=0.3, cpu_per_mb=0.003, name=f"hpr-contribs-{it}"
        )
        ranks = contribs.reduce_by_key(size_factor=0.7, name=f"hpr-ranks-{it + 1}")
    ranks.save(name="hpr-final")


SPEC = WorkloadSpec(
    name="HiPageRank",
    full_name="PageRank (HiBench)",
    suite="hibench",
    category="Web Search",
    job_type="I/O intensive",
    input_mb=500.0,
    default_iterations=DEFAULT_ITERATIONS,
    builder=build_hibench_pagerank,
)
