"""HiBench TeraSort — sample job + sort job sharing one cached input.

The parsed input is cached and read by both the range-sampling job and
the sort job in the *next* job, producing Table 1's tiny-but-nonzero
distances (avg job distance 0.22, max 1).
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import WorkloadParams, WorkloadSpec, scaled


def build_terasort(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 900.0)
    raw = ctx.text_file("ts-input", size_mb=size, num_partitions=params.partitions)
    records = raw.map(size_factor=1.0, cpu_per_mb=0.002, name="ts-records").cache()
    # Job 0: sample the key distribution to build range partitions.
    sample = records.sample(fraction=0.01, name="ts-sample")
    sample.collect(name="ts-sample-job")
    # Job 1: the actual range-partitioned sort re-reads the cached input.
    records.sort_by_key(cpu_per_mb=0.002, name="ts-sorted").save(name="terasort")


SPEC = WorkloadSpec(
    name="TeraSort",
    full_name="TeraSort",
    suite="hibench",
    category="Micro Benchmark",
    job_type="I/O intensive",
    input_mb=900.0,
    default_iterations=1,
    builder=build_terasort,
    iterations_effective=False,
)
