"""HiBench Sort — single shuffle job, no caching.

Table 1 shows zero reference distances for Sort: there is nothing to
re-reference, which is why the paper drops HiBench from the main
experiments — MRD has no DAG structure to exploit.
"""

from __future__ import annotations

from repro.dag.context import SparkContext
from repro.workloads.base import WorkloadParams, WorkloadSpec, scaled


def build_sort(ctx: SparkContext, params: WorkloadParams) -> None:
    size = scaled(params, 800.0)
    raw = ctx.text_file("sort-input", size_mb=size, num_partitions=params.partitions)
    raw.sort_by_key(cpu_per_mb=0.002, name="sort-sorted").save(name="sort")


SPEC = WorkloadSpec(
    name="Sort",
    full_name="Sort",
    suite="hibench",
    category="Micro Benchmark",
    job_type="I/O intensive",
    input_mb=800.0,
    default_iterations=1,
    builder=build_sort,
    iterations_effective=False,
)
