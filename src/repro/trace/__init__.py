"""Trace subsystem: event-log ingestion, run recording, and replay.

Three capabilities around one event vocabulary (:mod:`~repro.trace.events`):

* **Ingest** real Spark event logs into simulator-ready application
  DAGs (:func:`ingest_eventlog`).
* **Record** simulator runs as structured cache-management traces
  (:class:`TraceRecorder`), exportable as JSONL or Chrome trace_event
  JSON for ``chrome://tracing`` / Perfetto.
* **Replay** either kind of trace under any cache scheme
  (:func:`replay`) and compare runs event-by-event (:func:`diff_traces`).
"""

from repro.trace.events import (
    BlockMigrate,
    CacheHit,
    CacheMiss,
    Eviction,
    JobStart,
    PrefetchCancel,
    PrefetchComplete,
    PrefetchIssue,
    Purge,
    StageEnd,
    StageStart,
    TraceEvent,
    TraceFormatError,
    WorkerDeregisterEvent,
    WorkerRegisterEvent,
    event_from_dict,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.trace.spark_schema import EventLogError, UnsupportedEventError

#: Names resolved lazily (PEP 562): ingestion and replay import the
#: simulator stack, which itself imports :mod:`repro.trace.events` for
#: instrumentation — eager imports here would be circular.  The
#: :func:`~repro.trace.replay.replay` function itself is *not* re-exported:
#: it would collide with the ``repro.trace.replay`` submodule attribute
#: the import system installs on this package.
_LAZY = {
    "IngestedTrace": "repro.trace.eventlog",
    "ingest_eventlog": "repro.trace.eventlog",
    "profile_from_trace": "repro.trace.eventlog",
    "ReplayResult": "repro.trace.replay",
    "SCHEME_BUILDERS": "repro.trace.replay",
    "TraceDiff": "repro.trace.replay",
    "TraceWorkloadSpec": "repro.trace.replay",
    "build_scheme": "repro.trace.replay",
    "detect_format": "repro.trace.replay",
    "diff_trace_files": "repro.trace.replay",
    "diff_traces": "repro.trace.replay",
    "replay_trace": "repro.trace.replay",
    "workload_from_eventlog": "repro.trace.replay",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "BlockMigrate",
    "CacheHit",
    "CacheMiss",
    "Eviction",
    "EventLogError",
    "IngestedTrace",
    "JobStart",
    "NULL_RECORDER",
    "NullRecorder",
    "PrefetchCancel",
    "PrefetchComplete",
    "PrefetchIssue",
    "Purge",
    "ReplayResult",
    "SCHEME_BUILDERS",
    "StageEnd",
    "StageStart",
    "TraceDiff",
    "TraceEvent",
    "TraceFormatError",
    "TraceRecorder",
    "TraceWorkloadSpec",
    "UnsupportedEventError",
    "WorkerDeregisterEvent",
    "WorkerRegisterEvent",
    "build_scheme",
    "detect_format",
    "diff_trace_files",
    "diff_traces",
    "event_from_dict",
    "ingest_eventlog",
    "profile_from_trace",
    "read_jsonl",
    "replay_trace",
    "to_chrome_trace",
    "workload_from_eventlog",
    "write_chrome_trace",
    "write_jsonl",
]
