"""Trace replay: run ingested or recorded traces under any cache scheme.

Three entry points:

* :func:`replay` — take a trace file (a Spark event log *or* a JSONL
  trace recorded by :class:`~repro.trace.recorder.TraceRecorder`),
  reconstruct the application it describes, and simulate it under a
  chosen scheme while recording a fresh trace.  Replaying the same file
  under two schemes is how policies are compared on real applications.
* :func:`diff_traces` — first divergence between two recorded traces.
  Replays are deterministic, so two runs of the same (file, scheme,
  cache) must produce byte-identical event streams; a non-empty diff
  localizes the first simulator tick where behaviour differed.
* :class:`TraceWorkloadSpec` — wraps an event log as a registry
  workload, so experiments and the harness treat a real application's
  trace exactly like a synthetic SparkBench program.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.app_profiler import ProfileStore
from repro.core.policy import MrdScheme
from repro.policies.scheme import (
    BeladyScheme,
    CacheScheme,
    FifoScheme,
    LfuScheme,
    LrcScheme,
    LruScheme,
    MemTuneScheme,
    RandomScheme,
)
from repro.simulator.config import CLUSTERS, ClusterConfig
from repro.simulator.engine import simulate
from repro.simulator.metrics import RunMetrics
from repro.trace.eventlog import IngestedTrace, ingest_eventlog, profile_from_trace
from repro.trace.events import TraceEvent, TraceFormatError, read_jsonl
from repro.trace.recorder import TraceRecorder
from repro.workloads.base import WorkloadParams, WorkloadSpec

#: Scheme factories keyed by the lowercase names the trace CLI accepts.
SCHEME_BUILDERS: dict[str, Callable[[], CacheScheme]] = {
    "lru": LruScheme,
    "fifo": FifoScheme,
    "lfu": LfuScheme,
    "random": RandomScheme,
    "lrc": LrcScheme,
    "memtune": MemTuneScheme,
    "belady": BeladyScheme,
    "mrd": MrdScheme,
    "mrd-evict": lambda: MrdScheme(prefetch=False),
    "mrd-prefetch": lambda: MrdScheme(evict=False),
}


def build_scheme(name: str) -> CacheScheme:
    """Scheme instance for a (case-insensitive) policy name."""
    try:
        factory = SCHEME_BUILDERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(SCHEME_BUILDERS)}"
        ) from None
    return factory()


def detect_format(path: str | Path) -> str:
    """``"eventlog"`` (Spark listener JSON) or ``"recorded"`` (our JSONL)."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}: first line is not JSON ({exc.msg})"
                ) from None
            if isinstance(record, dict) and "Event" in record:
                return "eventlog"
            if isinstance(record, dict) and "type" in record:
                return "recorded"
            raise TraceFormatError(
                f"{path}: neither a Spark event log (no 'Event' field) nor "
                "a recorded trace (no 'type' field)"
            )
    raise TraceFormatError(f"{path}: file is empty")


@dataclass
class ReplayResult:
    """Outcome of one :func:`replay` call."""

    source: str  # "eventlog" | "recorded"
    scheme: str
    cache_mb_per_node: float
    metrics: RunMetrics
    recorder: TraceRecorder
    #: Present when the source was a Spark event log.
    ingested: IngestedTrace | None = None

    @property
    def events(self) -> list[TraceEvent]:
        return self.recorder.events


def _cluster_config(name: str) -> ClusterConfig:
    try:
        return CLUSTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown cluster {name!r}; choose from {sorted(CLUSTERS)}"
        ) from None


def replay(
    path: str | Path,
    scheme: str | CacheScheme = "lru",
    cluster: str | None = None,
    cache_mb: float | None = None,
    cache_fraction: float = 0.5,
    profile_store: ProfileStore | None = None,
) -> ReplayResult:
    """Reconstruct the application behind ``path`` and simulate it.

    ``path`` may be a Spark event log (ingested via
    :func:`~repro.trace.eventlog.ingest_eventlog`) or a JSONL trace
    previously recorded by ``repro trace record`` (replayed by
    rebuilding the workload named in its meta header).  The run is
    always recorded; the fresh trace is in ``result.recorder``.

    When ``profile_store`` is given and the source is an event log, a
    complete reference-distance profile is derived from the ingested
    DAG and put into the store *before* the run — an ``MrdScheme`` in
    recurring mode sharing that store then starts fully informed, the
    paper's recurring-application scenario.
    """
    from repro.experiments.harness import cache_mb_for

    source = detect_format(path)
    ingested: IngestedTrace | None = None
    meta: dict = {}
    if source == "eventlog":
        ingested = ingest_eventlog(path)
        dag = ingested.dag
        app_label = ingested.app_name
    else:
        header, _ = read_jsonl(path)
        meta = header or {}
        workload = meta.get("workload")
        if not workload:
            raise TraceFormatError(
                f"{path}: recorded trace has no 'workload' meta field; "
                "cannot rebuild the application it came from"
            )
        from repro.workloads.registry import build_workload
        from repro.dag.dag_builder import build_dag

        params = {
            k: meta[k]
            for k in ("scale", "iterations", "partitions", "seed")
            if meta.get(k) is not None
        }
        dag = build_dag(build_workload(workload, **params))
        app_label = workload

    if isinstance(scheme, str):
        scheme = build_scheme(scheme)
    if profile_store is not None:
        if ingested is not None:
            profile_from_trace(ingested, store=profile_store)
        if isinstance(scheme, MrdScheme) and scheme.profile_store is None:
            scheme.profile_store = profile_store

    # An unspecified cluster/cache falls back to what the recorded
    # trace's meta header says, so a bare replay reproduces the
    # original run exactly.
    config = _cluster_config(cluster or meta.get("cluster") or "main")
    if cache_mb is None:
        cache_mb = (
            float(meta["cache_mb"]) if meta.get("cache_mb") is not None
            else cache_mb_for(dag, cache_fraction, config)
        )
    config = config.with_cache(cache_mb)

    recorder = TraceRecorder(meta={
        "workload": app_label,
        "scheme": scheme.name,
        "cluster": config.name,
        "cache_mb": cache_mb,
        "source": source,
        "source_path": str(path),
    })
    metrics = simulate(dag, config, scheme, recorder=recorder)
    return ReplayResult(
        source=source,
        scheme=scheme.name,
        cache_mb_per_node=cache_mb,
        metrics=metrics,
        recorder=recorder,
        ingested=ingested,
    )


#: Package-level alias (``repro.trace.replay_trace``): the bare name
#: ``replay`` on the package is taken by this submodule itself.
replay_trace = replay


# ----------------------------------------------------------------------
# event summaries
# ----------------------------------------------------------------------
#: Every declared event kind, pivoted into the display group the CLI
#: summary reports under.  This table is a *complete* mirror of the
#: ``TraceEvent`` hierarchy and the EVT301 lint rule keeps it that way:
#: adding an event kind without extending this dict (or keeping a key
#: whose class was removed) fails ``repro lint``.
EVENT_GROUPS: dict[str, str] = {
    "job_start": "lifecycle",
    "stage_start": "lifecycle",
    "stage_end": "lifecycle",
    "cache_hit": "cache",
    "cache_miss": "cache",
    "eviction": "cache",
    "purge": "cache",
    "prefetch_issue": "prefetch",
    "prefetch_complete": "prefetch",
    "prefetch_cancel": "prefetch",
    "worker_register": "cluster",
    "worker_deregister": "cluster",
    "block_migrate": "cluster",
    "msg_send": "control",
    "msg_deliver": "control",
    "msg_drop": "control",
}

#: Group display order for :func:`summarize_events` consumers.
GROUP_ORDER = ("lifecycle", "cache", "prefetch", "cluster", "control")


def summarize_events(events: list[TraceEvent]) -> dict[str, dict[str, int]]:
    """Per-group, per-kind event counts (only groups/kinds that occur).

    The pivot the ``repro trace record/replay`` summary prints: group →
    kind → count, groups in :data:`GROUP_ORDER`, kinds sorted within
    each group.  An event whose kind is missing from
    :data:`EVENT_GROUPS` raises — that is schema drift, and the lint
    rule (EVT301) should have caught it before any trace got this far.
    """
    counts: dict[str, dict[str, int]] = {}
    for event in events:
        try:
            group = EVENT_GROUPS[event.kind]
        except KeyError:
            raise TraceFormatError(
                f"event kind {event.kind!r} is missing from "
                "repro.trace.replay.EVENT_GROUPS (schema drift)"
            ) from None
        kinds = counts.setdefault(group, {})
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    return {
        group: dict(sorted(counts[group].items()))
        for group in GROUP_ORDER if group in counts
    }


# ----------------------------------------------------------------------
# trace diffing
# ----------------------------------------------------------------------
@dataclass
class TraceDiff:
    """First divergence between two event streams."""

    index: int
    left: dict | None
    right: dict | None
    len_left: int
    len_right: int

    def describe(self) -> str:
        if self.left is None or self.right is None:
            shorter = "left" if self.left is None else "right"
            return (
                f"traces diverge at event {self.index}: {shorter} trace ends "
                f"early ({self.len_left} vs {self.len_right} events)"
            )
        return (
            f"traces diverge at event {self.index}:\n"
            f"  left:  {json.dumps(self.left, sort_keys=True)}\n"
            f"  right: {json.dumps(self.right, sort_keys=True)}"
        )


def diff_traces(
    left: list[TraceEvent], right: list[TraceEvent]
) -> TraceDiff | None:
    """First event where two traces differ, or ``None`` if identical."""
    for i, (a, b) in enumerate(zip(left, right)):
        da, db = a.to_dict(), b.to_dict()
        if da != db:
            return TraceDiff(
                index=i, left=da, right=db,
                len_left=len(left), len_right=len(right),
            )
    if len(left) != len(right):
        i = min(len(left), len(right))
        return TraceDiff(
            index=i,
            left=left[i].to_dict() if i < len(left) else None,
            right=right[i].to_dict() if i < len(right) else None,
            len_left=len(left), len_right=len(right),
        )
    return None


def diff_trace_files(
    left: str | Path, right: str | Path
) -> TraceDiff | None:
    """File-level :func:`diff_traces` (reads both JSONL traces)."""
    _, a = read_jsonl(left)
    _, b = read_jsonl(right)
    return diff_traces(a, b)


# ----------------------------------------------------------------------
# event logs as registry workloads
# ----------------------------------------------------------------------
def _no_builder(ctx, params) -> None:  # pragma: no cover - never called
    raise RuntimeError("TraceWorkloadSpec builds from its event log")


@dataclass(frozen=True)
class TraceWorkloadSpec(WorkloadSpec):
    """A Spark event log exposed as an ordinary registry workload.

    ``build()`` re-ingests the log every time, so each simulation gets a
    fresh, isolated RDD graph — exactly like synthetic builders that
    re-record their program.  ``WorkloadParams`` are accepted but do not
    reshape the trace (a recorded application has one fixed shape); the
    spec reports ``iterations_effective=False`` accordingly.
    """

    eventlog_path: str = ""

    def build(self, params: WorkloadParams | None = None, first_rdd_id: int = 0):
        if not self.eventlog_path:
            raise ValueError("TraceWorkloadSpec requires eventlog_path")
        return ingest_eventlog(self.eventlog_path, first_rdd_id=first_rdd_id).application


def workload_from_eventlog(
    path: str | Path, name: str | None = None
) -> TraceWorkloadSpec:
    """Ingest ``path`` once and wrap it as a registerable workload spec."""
    trace = ingest_eventlog(path)
    return TraceWorkloadSpec(
        name=name or trace.app_name,
        full_name=f"trace of {trace.app_name}",
        suite="trace",
        category="Ingested trace",
        job_type="Recorded",
        input_mb=sum(r.size_mb for r in trace.application.rdds if r.is_input),
        default_iterations=1,
        builder=_no_builder,
        iterations_effective=False,
        eventlog_path=str(path),
    )
