"""Low-overhead event sink wired into the engine and block managers.

Two implementations share one tiny interface:

* :class:`TraceRecorder` — collects :class:`~repro.trace.events.TraceEvent`
  instances in memory and exports them as JSONL or Chrome trace JSON.
* :data:`NULL_RECORDER` — the default no-op sink.  Its ``enabled`` flag
  is ``False``, and every instrumentation site guards event
  *construction* behind that flag, so a run without recording allocates
  nothing on the hot path (the only residual cost is the branch).

The recorder is deliberately dumb: it owns a simulated-time cursor
(``now``) that the engine advances, and an optional reference-distance
lookup that distance-tracking schemes install so eviction events can
carry the victim's distance at the moment of eviction.
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

from repro.trace.events import (
    TraceEvent,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


class TraceRecorder:
    """In-memory event sink for one simulation run."""

    enabled = True

    def __init__(self, meta: dict | None = None) -> None:
        self.events: list[TraceEvent] = []
        self.meta: dict = dict(meta or {})
        #: Simulated-time cursor, advanced by the engine so that block
        #: managers (which have no clock) can stamp their events.
        self.now: float = 0.0
        #: Installed by distance-tracking schemes (MRD): rdd_id -> the
        #: scheme's current reference distance, or None when untracked.
        self.distance_of: Callable[[int], float] | None = None

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    def lookup_distance(self, rdd_id: int) -> float | None:
        """Current reference distance of ``rdd_id``, if anyone tracks it."""
        return self.distance_of(rdd_id) if self.distance_of is not None else None

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All recorded events with the given wire tag (test convenience)."""
        return [ev for ev in self.events if ev.kind == kind]

    # ------------------------------------------------------------------
    # export / import
    # ------------------------------------------------------------------
    def to_jsonl(self, path: str | Path) -> None:
        write_jsonl(path, self.events, meta=self.meta or None)

    def to_chrome(self, path: str | Path) -> None:
        write_chrome_trace(path, self.events, meta=self.meta or None)

    def chrome_trace(self) -> dict:
        return to_chrome_trace(self.events, meta=self.meta or None)

    @classmethod
    def from_jsonl(cls, path: str | Path) -> TraceRecorder:
        meta, events = read_jsonl(path)
        rec = cls(meta=meta)
        rec.events = events
        return rec


class NullRecorder(TraceRecorder):
    """Disabled sink: instrumentation sites skip event construction.

    ``emit`` still exists (and discards) so that a site that forgot the
    ``enabled`` guard stays correct — just not allocation-free.
    """

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - guard
        pass


#: Shared default sink; assigning per-run state to it is a bug, so the
#: engine never touches ``now``/``distance_of`` on a disabled recorder.
NULL_RECORDER = NullRecorder()
