"""Spark event-log ingestion: JSON lines → :class:`ApplicationDAG`.

A real Spark application's history (as written by
``spark.eventLog.enabled=true``) contains everything the MRD machinery
needs: the per-job DAGs (``SparkListenerJobStart`` stage infos carry the
full RDD lineage with storage levels), the stage execution order, and
runtime cost signals (stage wall times, per-task executor metrics).
:func:`ingest_eventlog` streams a log once, reconstructs the RDD
lineage graph as a :class:`~repro.dag.context.SparkApplication`, and
compiles it through the ordinary :func:`~repro.dag.dag_builder.build_dag`
pipeline — so an ingested trace is a first-class citizen everywhere a
synthetic workload is (simulation, profiling, experiments).

Reconstruction rules
--------------------
* RDD identity: Spark RDD ids are remapped densely (registration
  order = ascending Spark id); ``IngestedTrace.rdd_id_map`` keeps the
  correspondence.
* Dependency kind: an edge ``child → parent`` is *narrow* when some
  stage's RDD-info list contains both endpoints (they were pipelined
  together), otherwise it crossed a stage boundary and becomes a
  *shuffle* dependency.
* Sizes: the largest ``Memory Size``/``Disk Size`` sighting of an RDD
  (Spark reports live sizes on stage completion), falling back to
  input/shuffle byte counts and finally a small default.
* Costs: each stage's mean task executor time is spread over the RDDs
  the stage computed, giving per-RDD compute costs that reproduce the
  log's relative stage weights.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import ApplicationDAG, build_dag
from repro.dag.rdd import NarrowDependency, RDD, ShuffleDependency
from repro.trace.spark_schema import (
    EVENT_APP_END,
    EVENT_APP_START,
    EVENT_JOB_END,
    EVENT_JOB_START,
    EVENT_LOG_START,
    EVENT_STAGE_COMPLETED,
    EVENT_STAGE_SUBMITTED,
    EVENT_TASK_END,
    EVENT_UNPERSIST_RDD,
    EventLogError,
    HANDLED_EVENTS,
    IGNORED_EVENTS,
    JobRecord,
    RddInfoRecord,
    StageHint,
    StageInfoRecord,
    UnsupportedEventError,
    check_version,
    parse_job_start,
    parse_stage_info,
    parse_task_end,
)

#: Partition size assumed when the log never reports a materialized size.
DEFAULT_PARTITION_MB = 4.0

#: Compute cost per MB assumed when the log has no task metrics.
DEFAULT_CPU_PER_MB = 0.002

_BYTES_PER_MB = 1024.0 * 1024.0


@dataclass
class IngestedTrace:
    """Everything reconstructed from one Spark event log."""

    app_name: str
    spark_version: str | None
    application: SparkApplication
    dag: ApplicationDAG
    #: Spark RDD id -> repro RDD id (dense registration order).
    rdd_id_map: dict[int, int]
    #: Spark stage id -> cost hints distilled from runtime metrics.
    stage_hints: dict[int, StageHint] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)
    num_events: int = 0

    @property
    def signature(self) -> str:
        return self.application.signature

    def summary(self) -> str:
        dag = self.dag
        version = self.spark_version or "unknown"
        lines = [
            f"application  {self.app_name!r} (Spark {version}, "
            f"{self.num_events} events)",
            f"jobs         {dag.num_jobs}",
            f"stages       {dag.num_stages} total, {dag.num_active_stages} active",
            f"cached RDDs  {len(dag.profiles)}",
        ]
        if self.stage_hints:
            timed = [h for h in self.stage_hints.values() if h.wall_time_ms]
            if timed:
                total_s = sum(h.wall_time_ms for h in timed) / 1000.0
                lines.append(
                    f"recorded     {len(timed)} stage timings, "
                    f"{total_s:.1f}s total stage wall time"
                )
        if self.warnings:
            lines.append(f"warnings     {len(self.warnings)} (see .warnings)")
        return "\n".join(lines)


def iter_raw_events(path: str | Path):
    """Yield ``(lineno, record)`` for each JSON line of an event log."""
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise EventLogError(
                    f"{path}:{lineno}: not valid JSON ({exc.msg})"
                ) from None
            if not isinstance(record, dict) or "Event" not in record:
                raise EventLogError(
                    f"{path}:{lineno}: not a Spark listener event "
                    "(missing 'Event' field)"
                )
            yield lineno, record


class _LogCollector:
    """Single streaming pass over the log, accumulating typed records."""

    def __init__(self, path: str | Path) -> None:
        self.path = path
        self.app_name: str | None = None
        self.spark_version: str | None = None
        self.jobs: list[JobRecord] = []
        #: Stream-ordered (kind, payload) for order-sensitive replay:
        #: ("job", JobRecord) and ("unpersist", spark_rdd_id).
        self.timeline: list[tuple[str, object]] = []
        self.stage_infos: dict[int, StageInfoRecord] = {}
        self.submitted_stage_ids: set[int] = set()
        self.stage_hints: dict[int, StageHint] = {}
        self.num_events = 0

    # ------------------------------------------------------------------
    def collect(self) -> _LogCollector:
        for lineno, raw in iter_raw_events(self.path):
            self.num_events += 1
            event = raw["Event"]
            if event in IGNORED_EVENTS:
                continue
            if event not in HANDLED_EVENTS:
                raise UnsupportedEventError(
                    f"{self.path}:{lineno}: unsupported event type {event!r}; "
                    "add it to IGNORED_EVENTS if it carries no cache state"
                )
            self._dispatch(event, raw)
        if not self.jobs:
            raise EventLogError(f"{self.path}: log contains no job-start events")
        return self

    def _dispatch(self, event: str, raw: dict) -> None:
        if event == EVENT_LOG_START:
            self.spark_version = check_version(raw.get("Spark Version", ""))
        elif event == EVENT_APP_START:
            self.app_name = str(raw.get("App Name", "")) or None
        elif event == EVENT_JOB_START:
            job = parse_job_start(raw)
            self.jobs.append(job)
            self.timeline.append(("job", job))
            for info in job.stage_infos:
                self._merge_stage_info(info)
        elif event in (EVENT_STAGE_SUBMITTED, EVENT_STAGE_COMPLETED):
            info = parse_stage_info(raw.get("Stage Info", {}))
            self._merge_stage_info(info)
            self.submitted_stage_ids.add(info.stage_id)
            if info.submission_time_ms and info.completion_time_ms:
                hint = self._hint(info.stage_id)
                hint.num_tasks = info.num_tasks
                hint.wall_time_ms = info.completion_time_ms - info.submission_time_ms
        elif event == EVENT_TASK_END:
            metrics = parse_task_end(raw)
            if metrics is not None:
                hint = self._hint(metrics.stage_id)
                hint.executor_run_time_ms += metrics.executor_run_time_ms
                hint.tasks_seen += 1
        elif event == EVENT_UNPERSIST_RDD:
            rdd_id = raw.get("RDD ID")
            if rdd_id is None:
                raise EventLogError(f"{EVENT_UNPERSIST_RDD} without 'RDD ID'")
            self.timeline.append(("unpersist", int(rdd_id)))
        # EVENT_APP_END / EVENT_JOB_END carry no DAG state.

    def _hint(self, stage_id: int) -> StageHint:
        hint = self.stage_hints.get(stage_id)
        if hint is None:
            hint = self.stage_hints[stage_id] = StageHint(stage_id=stage_id)
        return hint

    def _merge_stage_info(self, info: StageInfoRecord) -> None:
        """Keep the richest sighting of each stage (completion > start)."""
        existing = self.stage_infos.get(info.stage_id)
        if existing is None:
            self.stage_infos[info.stage_id] = info
            return
        # Later sightings refresh sizes/levels; merge RDD infos by id,
        # preferring records that report materialized bytes.
        by_id = {r.rdd_id: r for r in existing.rdd_infos}
        for rdd in info.rdd_infos:
            old = by_id.get(rdd.rdd_id)
            if old is None or rdd.memory_size_bytes >= old.memory_size_bytes:
                by_id[rdd.rdd_id] = rdd
        existing.rdd_infos = sorted(by_id.values(), key=lambda r: r.rdd_id)
        if info.submission_time_ms:
            existing.submission_time_ms = info.submission_time_ms
        if info.completion_time_ms:
            existing.completion_time_ms = info.completion_time_ms


# ----------------------------------------------------------------------
# DAG reconstruction
# ----------------------------------------------------------------------
class _DagReconstructor:
    """Turn collected records into a :class:`SparkApplication`."""

    def __init__(self, collected: _LogCollector, app_name: str | None) -> None:
        self.c = collected
        self.app_name = app_name or collected.app_name or "ingested-app"
        self.warnings: list[str] = []
        # Best sighting of every RDD across all stages.
        self.rdd_infos: dict[int, RddInfoRecord] = {}
        # Spark stage id -> set of Spark RDD ids pipelined in that stage.
        self.stage_members: dict[int, frozenset[int]] = {}
        for stage in collected.stage_infos.values():
            self.stage_members[stage.stage_id] = frozenset(
                r.rdd_id for r in stage.rdd_infos
            )
            for rdd in stage.rdd_infos:
                old = self.rdd_infos.get(rdd.rdd_id)
                if old is None:
                    self.rdd_infos[rdd.rdd_id] = rdd
                else:
                    # Cache flags and sizes are sticky: an RDD counted
                    # cached in any sighting was cached in the program.
                    old.use_memory = old.use_memory or rdd.use_memory
                    old.use_disk = old.use_disk or rdd.use_disk
                    old.memory_size_bytes = max(old.memory_size_bytes, rdd.memory_size_bytes)
                    old.disk_size_bytes = max(old.disk_size_bytes, rdd.disk_size_bytes)

    # ------------------------------------------------------------------
    def build(self, first_rdd_id: int = 0) -> tuple[SparkApplication, dict[int, int]]:
        ctx = SparkContext(self.app_name, first_rdd_id=first_rdd_id)
        mapping: dict[int, int] = {}
        rdds: dict[int, RDD] = {}
        for spark_id in sorted(self.rdd_infos):
            info = self.rdd_infos[spark_id]
            rdd = self._build_rdd(ctx, info, rdds)
            rdds[spark_id] = rdd
            mapping[spark_id] = rdd.id
            if info.is_cached:
                rdd.cache()
        self._apply_cost_hints(rdds)
        # Replay jobs and unpersists in stream order so unpersist events
        # land after the correct job, exactly like the driver emitted them.
        for kind, payload in self.c.timeline:
            if kind == "job":
                job = payload
                target = self._result_rdd(job, rdds)
                ctx.run_job(
                    target,
                    action="collect",
                    name=job.description or f"job-{job.job_id}",
                )
            else:
                spark_id = payload
                rdd = rdds.get(spark_id)
                if rdd is None:
                    self.warnings.append(
                        f"unpersist of unknown RDD {spark_id} ignored"
                    )
                elif not ctx.jobs:
                    self.warnings.append(
                        f"unpersist of RDD {spark_id} before any job ignored"
                    )
                else:
                    ctx.unpersist(rdd)
        return SparkApplication(ctx=ctx, signature=self.app_name), mapping

    def _build_rdd(
        self, ctx: SparkContext, info: RddInfoRecord, built: dict[int, RDD]
    ) -> RDD:
        deps = []
        for parent_id in info.parent_ids:
            parent = built.get(parent_id)
            if parent is None:
                if parent_id not in self.rdd_infos:
                    self.warnings.append(
                        f"RDD {info.rdd_id} ({info.name!r}) references parent "
                        f"{parent_id} never described by any stage; edge dropped"
                    )
                    continue
                raise EventLogError(
                    f"RDD {info.rdd_id} depends on RDD {parent_id} with a "
                    "higher id; event log is not topologically ordered"
                )
            if self._is_narrow(info.rdd_id, parent_id):
                deps.append(NarrowDependency(parent=parent))
            else:
                deps.append(
                    ShuffleDependency(parent=parent, shuffle_id=ctx._next_shuffle_id())
                )
        size_mb = max(info.memory_size_bytes, info.disk_size_bytes) / _BYTES_PER_MB
        partition_mb = (
            size_mb / info.num_partitions if size_mb > 0 else DEFAULT_PARTITION_MB
        )
        return RDD(
            ctx,
            deps=deps,
            num_partitions=max(info.num_partitions, 1),
            partition_size_mb=partition_mb,
            compute_cost=DEFAULT_CPU_PER_MB * partition_mb,
            name=info.name or f"rdd-{info.rdd_id}",
            op=info.callsite or "ingested",
            is_input=not info.parent_ids,
        )

    def _is_narrow(self, child_id: int, parent_id: int) -> bool:
        """Pipelined together in at least one stage → narrow dependency."""
        return any(
            child_id in members and parent_id in members
            for members in self.stage_members.values()
        )

    def _result_rdd(self, job: JobRecord, rdds: dict[int, RDD]) -> RDD:
        """The RDD the job's action materialized (its result stage's top)."""
        if not job.stage_infos:
            raise EventLogError(f"job {job.job_id} has no stage infos")
        parents_of_others = {
            pid for s in job.stage_infos for pid in s.parent_ids
        }
        result_stages = [
            s for s in job.stage_infos if s.stage_id not in parents_of_others
        ]
        result = max(
            result_stages or job.stage_infos, key=lambda s: s.stage_id
        )
        members = {r.rdd_id for r in result.rdd_infos}
        if not members:
            raise EventLogError(
                f"job {job.job_id}: result stage {result.stage_id} lists no RDDs"
            )
        # The stage's output RDD is the one no other member depends on
        # (highest id breaks the tie, matching Spark's creation order).
        narrow_parents = {
            pid
            for rid in members
            for pid in self.rdd_infos[rid].parent_ids
            if pid in members
        }
        candidates = members - narrow_parents or members
        return rdds[max(candidates)]

    def _apply_cost_hints(self, rdds: dict[int, RDD]) -> None:
        """Spread each stage's mean task time over the RDDs it computed.

        An RDD is attributed to the first stage whose member set contains
        it (creation order), so shared cached RDDs are not double-billed
        by every stage that merely read them.
        """
        attributed: set[int] = set()
        for stage_id in sorted(self.stage_members):
            hint = self.c.stage_hints.get(stage_id)
            members = [
                rid for rid in self.stage_members[stage_id] if rid not in attributed
            ]
            attributed.update(members)
            if hint is None or hint.mean_task_seconds <= 0 or not members:
                continue
            per_rdd = hint.mean_task_seconds / len(members)
            for rid in members:
                rdds[rid].compute_cost = per_rdd


def ingest_eventlog(path: str | Path, first_rdd_id: int = 0) -> IngestedTrace:
    """Parse a Spark event log and compile it into an application DAG.

    ``first_rdd_id`` offsets the remapped RDD ids (multi-tenant
    namespacing), exactly like :class:`SparkContext`'s parameter.
    """
    collected = _LogCollector(path).collect()
    reconstructor = _DagReconstructor(collected, collected.app_name)
    application, mapping = reconstructor.build(first_rdd_id)
    dag = build_dag(application)
    return IngestedTrace(
        app_name=reconstructor.app_name,
        spark_version=collected.spark_version,
        application=application,
        dag=dag,
        rdd_id_map=mapping,
        stage_hints=collected.stage_hints,
        warnings=reconstructor.warnings,
        num_events=collected.num_events,
    )


def profile_from_trace(trace: IngestedTrace, store=None):
    """Build a complete reference-distance profile from an ingested trace.

    The returned :class:`~repro.core.app_profiler.ApplicationProfile` is
    marked complete, so a recurring-mode :class:`AppProfiler` keyed by
    the same signature consumes it exactly as if a previous real run had
    been profiled (paper §4.1).  When ``store`` is given the profile is
    also persisted there.
    """
    from repro.core.app_profiler import ApplicationProfile
    from repro.core.reference_distance import parse_application_references

    profile = ApplicationProfile(
        signature=trace.signature,
        references=parse_application_references(trace.dag),
        num_jobs_profiled=trace.dag.num_jobs,
        complete=True,
    )
    if store is not None:
        store.put(profile)
    return profile
