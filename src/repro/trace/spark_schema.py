"""Spark event-log schema: field names, versioning, raw-record parsing.

Spark writes its event log as JSON lines, one ``SparkListener*`` event
per line.  This module knows the (stable-across-2.x/3.x/4.x) field
layout of the events the trace subsystem consumes and converts raw
dictionaries into light typed records; :mod:`repro.trace.eventlog`
assembles those records into an application DAG.

The schema here deliberately models only what cache management needs:
job submissions with their stage infos, stage lifecycle with
submission/completion times, per-task executor metrics, RDD storage
levels and sizes, and unpersist events.  Everything else that a real
log contains (executor/block-manager topology, environment dumps,
SQL-plan events, ...) is explicitly listed as ignorable; an event type
in neither set raises, so silently-misparsed logs cannot happen.
"""

from __future__ import annotations

from dataclasses import dataclass


class EventLogError(ValueError):
    """The event log is malformed (bad JSON, missing fields, bad refs)."""


class UnsupportedEventError(EventLogError):
    """The log contains an event type or version this parser rejects."""


#: Major Spark versions whose event-log layout this parser understands.
SUPPORTED_MAJOR_VERSIONS = (1, 2, 3, 4)

#: Events this subsystem consumes.
EVENT_LOG_START = "SparkListenerLogStart"
EVENT_APP_START = "SparkListenerApplicationStart"
EVENT_APP_END = "SparkListenerApplicationEnd"
EVENT_JOB_START = "SparkListenerJobStart"
EVENT_JOB_END = "SparkListenerJobEnd"
EVENT_STAGE_SUBMITTED = "SparkListenerStageSubmitted"
EVENT_STAGE_COMPLETED = "SparkListenerStageCompleted"
EVENT_TASK_END = "SparkListenerTaskEnd"
EVENT_UNPERSIST_RDD = "SparkListenerUnpersistRDD"

HANDLED_EVENTS = frozenset({
    EVENT_LOG_START, EVENT_APP_START, EVENT_APP_END,
    EVENT_JOB_START, EVENT_JOB_END,
    EVENT_STAGE_SUBMITTED, EVENT_STAGE_COMPLETED,
    EVENT_TASK_END, EVENT_UNPERSIST_RDD,
})

#: Events that carry no cache-management information; skipped silently.
IGNORED_EVENTS = frozenset({
    "SparkListenerEnvironmentUpdate",
    "SparkListenerBlockManagerAdded",
    "SparkListenerBlockManagerRemoved",
    "SparkListenerExecutorAdded",
    "SparkListenerExecutorRemoved",
    "SparkListenerExecutorMetricsUpdate",
    "SparkListenerExecutorBlacklisted",
    "SparkListenerExecutorExcluded",
    "SparkListenerNodeBlacklisted",
    "SparkListenerNodeExcluded",
    "SparkListenerTaskStart",
    "SparkListenerTaskGettingResult",
    "SparkListenerSpeculativeTaskSubmitted",
    "SparkListenerBlockUpdated",
    "SparkListenerStageExecutorMetrics",
    "SparkListenerResourceProfileAdded",
    "org.apache.spark.sql.execution.ui.SparkListenerSQLExecutionStart",
    "org.apache.spark.sql.execution.ui.SparkListenerSQLExecutionEnd",
    "org.apache.spark.sql.execution.ui.SparkListenerDriverAccumUpdates",
    "org.apache.spark.sql.execution.ui.SparkListenerSQLAdaptiveExecutionUpdate",
})


def check_version(version: str) -> str:
    """Validate a ``Spark Version`` string; returns it unchanged."""
    try:
        major = int(str(version).split(".", 1)[0])
    except (ValueError, AttributeError):
        raise UnsupportedEventError(
            f"unparseable Spark version {version!r} in {EVENT_LOG_START}"
        ) from None
    if major not in SUPPORTED_MAJOR_VERSIONS:
        raise UnsupportedEventError(
            f"unsupported Spark major version {major} (log version {version!r}); "
            f"supported: {list(SUPPORTED_MAJOR_VERSIONS)}"
        )
    return str(version)


def _require(record: dict, key: str, context: str):
    try:
        return record[key]
    except KeyError:
        raise EventLogError(f"{context}: missing required field {key!r}") from None


# ----------------------------------------------------------------------
# typed views of raw records
# ----------------------------------------------------------------------
@dataclass
class RddInfoRecord:
    """One entry of a stage info's ``RDD Info`` list."""

    rdd_id: int
    name: str
    parent_ids: tuple[int, ...]
    num_partitions: int
    use_memory: bool
    use_disk: bool
    memory_size_bytes: int
    disk_size_bytes: int
    callsite: str = ""

    @property
    def is_cached(self) -> bool:
        return self.use_memory or self.use_disk


@dataclass
class StageInfoRecord:
    """One ``Stage Info`` object (from job start or stage lifecycle)."""

    stage_id: int
    name: str
    num_tasks: int
    parent_ids: tuple[int, ...]
    rdd_infos: list[RddInfoRecord]
    submission_time_ms: int | None = None
    completion_time_ms: int | None = None


@dataclass
class JobRecord:
    """One ``SparkListenerJobStart`` event."""

    job_id: int
    stage_infos: list[StageInfoRecord]
    stage_ids: tuple[int, ...]
    description: str = ""


@dataclass
class TaskMetricsRecord:
    """The slice of ``Task Metrics`` used for cost hints."""

    stage_id: int
    executor_run_time_ms: int = 0
    bytes_read: int = 0
    shuffle_read_bytes: int = 0


@dataclass
class StageHint:
    """Per-stage cost hints distilled from the log's runtime metrics."""

    stage_id: int
    num_tasks: int = 0
    wall_time_ms: int = 0
    executor_run_time_ms: int = 0
    tasks_seen: int = 0

    @property
    def mean_task_seconds(self) -> float:
        if self.tasks_seen == 0:
            return 0.0
        return self.executor_run_time_ms / self.tasks_seen / 1000.0


# ----------------------------------------------------------------------
# raw-record parsing
# ----------------------------------------------------------------------
def parse_rdd_info(raw: dict) -> RddInfoRecord:
    ctx = "RDD Info"
    level = raw.get("Storage Level", {})
    return RddInfoRecord(
        rdd_id=int(_require(raw, "RDD ID", ctx)),
        name=str(raw.get("Name", "")),
        parent_ids=tuple(int(p) for p in raw.get("Parent IDs", ())),
        num_partitions=int(_require(raw, "Number of Partitions", ctx)),
        use_memory=bool(level.get("Use Memory", False)),
        use_disk=bool(level.get("Use Disk", False)),
        memory_size_bytes=int(raw.get("Memory Size", 0)),
        disk_size_bytes=int(raw.get("Disk Size", 0)),
        callsite=str(raw.get("Callsite", "")),
    )


def parse_stage_info(raw: dict) -> StageInfoRecord:
    ctx = "Stage Info"
    return StageInfoRecord(
        stage_id=int(_require(raw, "Stage ID", ctx)),
        name=str(raw.get("Stage Name", "")),
        num_tasks=int(raw.get("Number of Tasks", 0)),
        parent_ids=tuple(int(p) for p in raw.get("Parent IDs", ())),
        rdd_infos=[parse_rdd_info(r) for r in raw.get("RDD Info", ())],
        submission_time_ms=raw.get("Submission Time"),
        completion_time_ms=raw.get("Completion Time"),
    )


def parse_job_start(raw: dict) -> JobRecord:
    ctx = EVENT_JOB_START
    props = raw.get("Properties") or {}
    return JobRecord(
        job_id=int(_require(raw, "Job ID", ctx)),
        stage_infos=[parse_stage_info(s) for s in raw.get("Stage Infos", ())],
        stage_ids=tuple(int(s) for s in raw.get("Stage IDs", ())),
        description=str(props.get("spark.job.description", "")),
    )


def parse_task_end(raw: dict) -> TaskMetricsRecord | None:
    """Task metrics, or ``None`` for failed tasks (no useful metrics)."""
    reason = (raw.get("Task End Reason") or {}).get("Reason", "Success")
    if reason != "Success":
        return None
    metrics = raw.get("Task Metrics") or {}
    input_metrics = metrics.get("Input Metrics") or {}
    shuffle_read = metrics.get("Shuffle Read Metrics") or {}
    return TaskMetricsRecord(
        stage_id=int(_require(raw, "Stage ID", EVENT_TASK_END)),
        executor_run_time_ms=int(metrics.get("Executor Run Time", 0)),
        bytes_read=int(input_metrics.get("Bytes Read", 0)),
        shuffle_read_bytes=int(
            shuffle_read.get("Remote Bytes Read", 0)
            + shuffle_read.get("Local Bytes Read", 0)
        ),
    )
