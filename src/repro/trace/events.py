"""Structured simulation events: the trace subsystem's vocabulary.

Every observable decision the engine and the block managers make maps
to one frozen dataclass here.  Events serialize losslessly to JSON
dictionaries (``to_dict`` / ``event_from_dict``) so a recorded run can
be written as JSONL, diffed against another run, or exported in Chrome's
``trace_event`` format for timeline inspection in ``chrome://tracing``
or Perfetto.

The ``kind`` string on each class is the stable wire tag; adding a new
event type means adding a dataclass and listing it in
:data:`EVENT_TYPES`.  All timestamps are simulated seconds.
"""

from __future__ import annotations

import dataclasses
import json
import math
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path
from typing import IO


class TraceFormatError(ValueError):
    """A serialized trace line could not be decoded."""


@dataclass(frozen=True)
class TraceEvent:
    """Base class: every event carries the simulated time ``t``."""

    kind = "event"

    t: float

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["type"] = self.kind
        return data


# ----------------------------------------------------------------------
# scheduler-level events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobStart(TraceEvent):
    """The DAGScheduler submitted a job (its DAG became visible)."""

    kind = "job_start"

    job_id: int


@dataclass(frozen=True)
class StageStart(TraceEvent):
    """An active stage began executing."""

    kind = "stage_start"

    seq: int
    stage_id: int
    job_id: int
    num_tasks: int


@dataclass(frozen=True)
class StageEnd(TraceEvent):
    """An active stage finished (its last task completed)."""

    kind = "stage_end"

    seq: int
    stage_id: int
    job_id: int


# ----------------------------------------------------------------------
# block-level events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CacheHit(TraceEvent):
    """A cached-block read was served from memory (or a fetch buffer)."""

    kind = "cache_hit"

    rdd_id: int
    partition: int
    node_id: int
    #: "memory" for a resident block, "buffer" for a read consumed
    #: straight from an arriving prefetch that was denied admission.
    source: str = "memory"


@dataclass(frozen=True)
class CacheMiss(TraceEvent):
    """A cached-block read missed memory."""

    kind = "cache_miss"

    rdd_id: int
    partition: int
    node_id: int
    #: "disk" when the spilled copy is re-read, "missing" when the
    #: block exists nowhere (failure-recovery path).
    where: str = "disk"


@dataclass(frozen=True)
class Eviction(TraceEvent):
    """Capacity pressure evicted a block.

    ``distance`` is the victim's reference distance at eviction time as
    the managing scheme saw it (``inf`` for dead blocks, ``None`` for
    schemes that do not track distances).
    """

    kind = "eviction"

    rdd_id: int
    partition: int
    node_id: int
    size_mb: float
    distance: float | None = None
    #: "insert" for demand insertions, "prefetch" when a prefetch
    #: forced the pressure, "promote" for read-through promotions.
    cause: str = "insert"


@dataclass(frozen=True)
class Purge(TraceEvent):
    """A manager-ordered purge dropped a block (not capacity pressure)."""

    kind = "purge"

    rdd_id: int
    node_id: int
    dropped_blocks: int
    drop_disk: bool = False


@dataclass(frozen=True)
class PrefetchIssue(TraceEvent):
    """A prefetch order entered a node's disk channel."""

    kind = "prefetch_issue"

    rdd_id: int
    partition: int
    node_id: int
    size_mb: float
    #: Predicted completion time on the serialized disk channel.
    eta: float = 0.0


@dataclass(frozen=True)
class PrefetchComplete(TraceEvent):
    """An in-flight prefetch finished its transfer."""

    kind = "prefetch_complete"

    rdd_id: int
    partition: int
    node_id: int
    #: False when cache admission refused the block (the transfer still
    #: happened; a waiting task may consume it as a buffered hit).
    admitted: bool = True


@dataclass(frozen=True)
class PrefetchCancel(TraceEvent):
    """An in-flight prefetch was abandoned before promotion."""

    kind = "prefetch_cancel"

    rdd_id: int
    partition: int
    node_id: int
    reason: str = "unpersisted"


# ----------------------------------------------------------------------
# membership events (elastic clusters and §4.4 replacements)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerRegisterEvent(TraceEvent):
    """A worker (re-)registered with the driver.

    ``reason`` distinguishes a §4.4 ``"replacement"`` after a failure
    from an elastic ``"join"``.  Startup registrations are not traced —
    they happen identically in every run before time starts.
    """

    kind = "worker_register"

    node_id: int
    reason: str = "join"


@dataclass(frozen=True)
class WorkerDeregisterEvent(TraceEvent):
    """A worker left the driver's view (failure or decommission)."""

    kind = "worker_deregister"

    node_id: int
    reason: str = "failure"


@dataclass(frozen=True)
class BlockMigrate(TraceEvent):
    """A decommissioned node's block was migrated to its new home."""

    kind = "block_migrate"

    rdd_id: int
    partition: int
    from_node: int
    to_node: int
    size_mb: float


# ----------------------------------------------------------------------
# control-plane events (rpc transport only; instant mode emits none —
# direct calls have no messages)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MessageSend(TraceEvent):
    """A control message entered the modeled network."""

    kind = "msg_send"

    #: Message wire tag (e.g. "purge_order", "cache_status").
    msg: str
    #: Worker endpoint: destination for driver→worker messages, source
    #: for worker→driver ones.
    node_id: int
    #: Scheduled delivery time (latency + jitter already applied).
    deliver_at: float = 0.0


@dataclass(frozen=True)
class MessageDeliver(TraceEvent):
    """A control message reached its receiver.

    ``stale`` marks messages that were out of date on arrival: a purge
    for a resurrected RDD, a prefetch landing after the stage that
    wanted it, or a table broadcast older than the worker's view.
    """

    kind = "msg_deliver"

    msg: str
    node_id: int
    sent_at: float = 0.0
    stale: bool = False


@dataclass(frozen=True)
class MessageDrop(TraceEvent):
    """A control message was lost (loss rate or an outage window)."""

    kind = "msg_drop"

    msg: str
    node_id: int
    reason: str = "loss"


#: Wire tag -> event class, the round-trip registry.
EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        JobStart, StageStart, StageEnd,
        CacheHit, CacheMiss, Eviction, Purge,
        PrefetchIssue, PrefetchComplete, PrefetchCancel,
        WorkerRegisterEvent, WorkerDeregisterEvent, BlockMigrate,
        MessageSend, MessageDeliver, MessageDrop,
    )
}


def event_from_dict(data: dict) -> TraceEvent:
    """Rebuild an event from its ``to_dict`` form."""
    try:
        kind = data["type"]
    except KeyError:
        raise TraceFormatError(f"trace record has no 'type' field: {data!r}") from None
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise TraceFormatError(
            f"unknown trace event type {kind!r}; known: {sorted(EVENT_TYPES)}"
        )
    fields = {f.name for f in dataclasses.fields(cls)}
    try:
        return cls(**{k: v for k, v in data.items() if k in fields})
    except TypeError as exc:
        raise TraceFormatError(f"malformed {kind!r} record: {exc}") from None


# ----------------------------------------------------------------------
# JSONL serialization
# ----------------------------------------------------------------------
def write_jsonl(
    path: str | Path,
    events: Iterable[TraceEvent],
    meta: dict | None = None,
) -> None:
    """Write a trace file: one optional meta header line, then events.

    The meta line (``{"type": "meta", ...}``) carries whatever the
    recorder knows about the run (workload, scheme, cluster) so a
    recorded trace is self-describing enough to be replayed.
    """
    with open(path, "w") as fh:
        if meta is not None:
            fh.write(json.dumps({"type": "meta", **meta}) + "\n")
        for ev in events:
            fh.write(json.dumps(ev.to_dict()) + "\n")


def read_jsonl(path: str | Path) -> tuple[dict, list[TraceEvent]]:
    """Read a trace file back; returns ``(meta, events)``.

    ``meta`` is ``{}`` when the file has no header line.  Raises
    :class:`TraceFormatError` on undecodable lines, naming the line.
    """
    meta: dict = {}
    events: list[TraceEvent] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"{path}:{lineno}: not valid JSON ({exc})") from None
            if lineno == 1 and data.get("type") == "meta":
                meta = {k: v for k, v in data.items() if k != "type"}
                continue
            events.append(event_from_dict(data))
    return meta, events


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------
#: Event kind -> Chrome trace category (for per-category filtering).
_CHROME_CATEGORIES = {
    "job_start": "scheduler",
    "stage_start": "scheduler",
    "stage_end": "scheduler",
    "cache_hit": "cache",
    "cache_miss": "cache",
    "eviction": "cache",
    "purge": "cache",
    "prefetch_issue": "prefetch",
    "prefetch_complete": "prefetch",
    "prefetch_cancel": "prefetch",
    "worker_register": "membership",
    "worker_deregister": "membership",
    "block_migrate": "membership",
    "msg_send": "control",
    "msg_deliver": "control",
    "msg_drop": "control",
}


def _finite(value: float | None) -> float | str | None:
    """Chrome's JSON parser rejects Infinity; stringify it."""
    if value is not None and isinstance(value, float) and math.isinf(value):
        return "inf"
    return value


def to_chrome_trace(events: Iterable[TraceEvent], meta: dict | None = None) -> dict:
    """Convert a recorded event stream into Chrome ``trace_event`` JSON.

    Stages become duration ("X") events on the scheduler track (pid 0,
    tid 0); block-level events become instant ("i") events on one track
    per node (tid = node_id + 1).  Timestamps are microseconds, so one
    simulated second reads as one millisecond-scale span in the viewer.
    """
    out: list[dict] = []
    open_stages: dict[int, StageStart] = {}
    for ev in events:
        ts = ev.t * 1e6
        if isinstance(ev, StageStart):
            open_stages[ev.seq] = ev
            continue
        if isinstance(ev, StageEnd):
            start = open_stages.pop(ev.seq, None)
            begin = start.t * 1e6 if start else ts
            out.append({
                "name": f"stage {ev.stage_id} (seq {ev.seq})",
                "cat": "scheduler",
                "ph": "X",
                "ts": begin,
                "dur": max(ts - begin, 0.0),
                "pid": 0,
                "tid": 0,
                "args": {"job_id": ev.job_id, "seq": ev.seq},
            })
            continue
        record = ev.to_dict()
        kind = record.pop("type")
        record.pop("t")
        node_id = record.pop("node_id", None)
        args = {k: _finite(v) for k, v in record.items()}
        out.append({
            "name": kind,
            "cat": _CHROME_CATEGORIES.get(kind, "misc"),
            "ph": "i",
            "s": "t",
            "ts": ts,
            "pid": 0,
            "tid": 0 if node_id is None else node_id + 1,
            "args": args,
        })
    # A stage still open at the end of the stream renders as zero-width.
    for start in open_stages.values():
        out.append({
            "name": f"stage {start.stage_id} (seq {start.seq})",
            "cat": "scheduler", "ph": "X", "ts": start.t * 1e6, "dur": 0.0,
            "pid": 0, "tid": 0, "args": {"job_id": start.job_id, "seq": start.seq},
        })
    trace: dict = {"traceEvents": out, "displayTimeUnit": "ms"}
    if meta:
        trace["otherData"] = meta
    return trace


def write_chrome_trace(
    path: str | Path,
    events: Iterable[TraceEvent],
    meta: dict | None = None,
) -> None:
    """Write the Chrome ``trace_event`` JSON file for ``events``."""
    Path(path).write_text(json.dumps(to_chrome_trace(events, meta)))
