"""MRD reproduction: DAG-aware cache management for Spark, in simulation.

Reproduces Perez, Zhou & Cheng, "Reference-distance Eviction and
Prefetching for Cache Management in Spark" (ICPP 2018) as a pure-Python
discrete-event simulator plus the paper's policy (MRD) and baselines.

Subpackages
-----------
``repro.dag``
    RDD lineage, job/stage compilation, reference profiles, analysis.
``repro.cluster``
    Blocks, memory/disk stores, nodes, block managers, cluster configs.
``repro.simulator``
    The execution engine, cost model, metrics, failures, reporting.
``repro.policies``
    LRU/FIFO/LFU/Random, LRC, MemTune, Belady-MIN, True-MIN, schemes.
``repro.core``
    The paper's contribution: AppProfiler, MRDmanager, CacheMonitor,
    the MRD_Table and the pluggable ``MrdScheme``.
``repro.workloads``
    SparkBench/HiBench DAG generators and the synthetic random family.
``repro.experiments``
    One driver per paper table/figure plus the sweep harness.

Quick start
-----------
>>> from repro.dag import SparkContext, SparkApplication, build_dag
>>> from repro.core import MrdScheme
>>> from repro.simulator import MAIN_CLUSTER, simulate
>>> ctx = SparkContext("app")
>>> data = ctx.text_file("in", size_mb=100, num_partitions=8).map().cache()
>>> _ = data.count(); _ = data.collect()
>>> metrics = simulate(build_dag(SparkApplication(ctx)),
...                    MAIN_CLUSTER.with_cache(16.0), MrdScheme())
>>> metrics.hit_ratio > 0
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
