"""Event-driven execution engine.

Replays an :class:`ApplicationDAG` on a simulated cluster under a
pluggable :class:`CacheScheme`:

* active stages execute in sequence (stage barrier, like Spark's
  DAGScheduler for a single app);
* within a stage, tasks queue on per-node executor slots and are
  processed in global start-time order, so cache state (insertions,
  evictions, prefetch completions) evolves *during* the stage and is
  observed consistently by later tasks;
* cached-block reads hit memory, wait for an in-flight prefetch, or
  synchronously re-read the spilled copy through the home node's
  serialized disk channel;
* prefetch orders issued at a stage boundary occupy the same disk
  channel and complete asynchronously — the overlap of this I/O with
  computation is exactly the mechanism the paper credits for MRD's
  prefetching gains.

Two interchangeable scheduling cores implement the start-time order
(see ``docs/performance.md``):

* ``"event"`` (default) — one global heap of ``(slot_free_time,
  node_id)`` entries plus a time-ordered prefetch-completion heap;
  O(log slots) per task and O(log inflight) per completion.
* ``"reference"`` — the original loops (a ``min()`` over every node per
  task, a scan of every manager's in-flight dict per task), kept as the
  executable specification: the equivalence suite asserts both cores
  produce identical :class:`RunMetrics` on every registered workload,
  and the ``repro bench`` harness measures the speedup between them.

Every driver↔worker interaction — purge orders, prefetch orders, table
broadcasts, cache-status reports, worker (de)registration — travels
through a :class:`~repro.control.plane.ControlPlane` as a typed
:mod:`~repro.control.messages` message.  The default ``"instant"``
plane delivers synchronously in send order and reproduces the old
direct-call semantics exactly; the ``"rpc"`` plane delays delivery by
modeled network latency (plus optional jitter and loss), so workers act
on possibly-stale reference-distance state — see the "Control plane"
section of ``docs/architecture.md``.
"""

from __future__ import annotations

import heapq
import math
from collections import deque

from repro.cluster.block import Block, BlockId, block_of
from repro.cluster.block_manager import AccessOutcome, BlockManager
from repro.cluster.cluster import Cluster, ClusterConfig, build_cluster, make_worker
from repro.cluster.node import WorkerNode
from repro.cluster.placement import PLACEMENTS
from repro.cluster.rebalance import RebalancePolicy, build_rebalance
from repro.control.messages import (
    CacheStatusReport,
    ControlMessage,
    PrefetchOrder,
    PurgeOrder,
    StageBoundary,
    WorkerDeregister,
    WorkerRegister,
)
from repro.control.plane import (
    CONTROL_PLANES,
    ControlPlane,
    RpcConfig,
    build_control_plane,
)
from repro.dag.dag_builder import ApplicationDAG
from repro.dag.rdd import RDD, ShuffleDependency
from repro.dag.structures import Stage
from repro.policies.scheme import CacheScheme, StageOrders
from repro.simulator.costmodel import CostModel
from repro.simulator.failures import (
    FailurePlan,
    MembershipEvent,
    NodeDecommission,
    NodeJoin,
)
from repro.simulator.metrics import RunMetrics, StageRecord
from repro.trace.events import (
    BlockMigrate,
    JobStart,
    PrefetchCancel,
    PrefetchComplete,
    PrefetchIssue,
    StageEnd,
    StageStart,
    WorkerDeregisterEvent,
    WorkerRegisterEvent,
)
from repro.trace.recorder import NULL_RECORDER, TraceRecorder


class SimulationError(RuntimeError):
    """Internal inconsistency (a referenced block that nowhere exists)."""


#: Scheduling cores understood by :class:`SparkSimulator`.
SCHEDULERS = ("event", "reference")

#: Shared frozenset for write-only tasks (nothing to protect).
_EMPTY_FROZENSET: frozenset[BlockId] = frozenset()


class SparkSimulator:
    """Runs one application under one cache-management scheme."""

    def __init__(
        self,
        dag: ApplicationDAG,
        cluster_config: ClusterConfig,
        scheme: CacheScheme,
        cost_model: CostModel | None = None,
        promote_on_miss: bool = True,
        failure_plan: FailurePlan | None = None,
        recorder: TraceRecorder | None = None,
        scheduler: str = "event",
        control_plane: str | ControlPlane = "instant",
        control_config: RpcConfig | None = None,
        placement: str = "stride",
        rebalance: str | RebalancePolicy = "drop",
    ) -> None:
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}"
            )
        if isinstance(control_plane, str) and control_plane not in CONTROL_PLANES:
            raise ValueError(
                f"control_plane must be one of {CONTROL_PLANES}, got {control_plane!r}"
            )
        if placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {placement!r}"
            )
        self.dag = dag
        self.cluster_config = cluster_config
        self.scheme = scheme
        self.scheduler = scheduler
        #: Structured-event sink; the shared no-op recorder by default,
        #: so an unrecorded run constructs no event objects at all.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.cost = cost_model or CostModel(
            network=cluster_config.network,
            disk=cluster_config.disk,
            cpu_speed=cluster_config.cpu_speed,
        )
        self.promote_on_miss = promote_on_miss
        self.failure_plan = failure_plan
        #: Partition → node scheme ("stride" legacy, "rendezvous" sticky).
        self.placement = placement
        #: What happens to a decommissioned node's cache (drop/migrate).
        self.rebalance: RebalancePolicy = (
            rebalance
            if isinstance(rebalance, RebalancePolicy)
            else build_rebalance(rebalance)
        )
        self.cluster: Cluster | None = None
        #: The run's control-plane transport (reset at every run start).
        self.control_config = control_config
        self.control: ControlPlane = (
            control_plane
            if isinstance(control_plane, ControlPlane)
            else build_control_plane(
                control_plane, control_config, cluster_config.network
            )
        )
        #: Active-stage seq the driver is currently processing; receiver
        #: callbacks compare it against a message's ``issued_seq`` to
        #: judge staleness.
        self._current_seq = 0
        #: Time-ordered prefetch completions: ``(done, seq, node_id,
        #: block_id)``.  ``seq`` is a monotone issue counter so entries
        #: with equal completion times pop in issue order and block ids
        #: are never compared.  Entries are invalidated lazily — a
        #: prefetch completed early (a task waited on it) or cancelled
        #: (node failure) no longer matches the manager's in-flight dict
        #: and is dropped on pop.
        self._prefetch_heap: list[tuple[float, int, int, BlockId]] = []
        self._prefetch_seq = 0
        self._unpersist_by_job: dict[int, list[int]] = {}
        for ev in dag.app.ctx.unpersist_events:
            self._unpersist_by_job.setdefault(ev.after_job_id, []).append(ev.rdd.id)
        #: Memoized per-partition recompute costs (failure-recovery path).
        self._recompute_cost: dict[int, float] = {}
        #: One-entry memo of the current stage's compiled task plan
        #: (per-partition read/write lists); plans themselves are cached
        #: on the DAG so repeated runs skip replanning entirely.
        self._plan_stage: Stage | None = None
        self._plan: tuple[list, list, bool] | None = None
        #: Application id stamped on every control message; 0 for the
        #: single-application engine, per-app under the tenancy layer.
        self.app_id = 0
        #: ``RunMetrics.app_id`` value (None marks a standalone run).
        self._metrics_app_id: int | None = None
        # Per-run state initialized by _start_run().
        self._records: list[StageRecord] = []
        self._lost_blocks = 0
        self._current_job = -1
        self._last_seq = 0
        self._t_origin = 0.0
        #: Per-run compiled plans for dynamic membership, keyed
        #: ``(stage.seq, epoch)``.  Sticky placement is a function of
        #: the run's membership *history*, so these plans must never be
        #: shared across runs the way ``dag.engine_plans`` is.
        self._plan_cache: dict[tuple[int, int], tuple[list, list, bool]] = {}
        # Membership churn accounting (all zero for static runs).
        self._membership_changed = False
        self._nodes_joined = 0
        self._nodes_decommissioned = 0
        self._rebalanced_blocks = 0
        self._rebalanced_mb = 0.0
        self._decommission_dropped = 0
        self._live_since: list[float] = []
        self._live_time: list[float] = []

    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        """Simulate the whole application; returns the collected metrics."""
        self._start_run(0.0)
        now = 0.0
        for stage in self.dag.active_stages:
            self._begin_stage(stage, now)
            start = now
            now = self._run_stage(stage, start)
            self._record_stage(stage, start, now)
        return self._finish_run(now)

    # ------------------------------------------------------------------
    # run lifecycle (each phase is reusable: the multi-tenant engine
    # drives per-app copies of these around its own global event loop)
    # ------------------------------------------------------------------
    def _start_run(self, now: float) -> None:
        """(Re)initialize per-run state; ``now`` is the application's
        start time (0.0 standalone, the arrival time under tenancy)."""
        self.scheme.prepare(self.dag)
        rec = self.recorder
        if rec.enabled:
            rec.now = now
            rec.distance_of = self.scheme.reference_distance
        self.cluster = self._build_cluster()
        self._prefetch_heap = []
        self._prefetch_seq = 0
        self._current_seq = 0
        self._records = []
        self._lost_blocks = 0
        self._current_job = -1
        self._last_seq = 0
        self._t_origin = now
        self._plan_stage = None
        self._plan = None
        self._plan_cache = {}
        self._membership_changed = False
        self._nodes_joined = 0
        self._nodes_decommissioned = 0
        self._rebalanced_blocks = 0
        self._rebalanced_mb = 0.0
        self._decommission_dropped = 0
        self._live_since = [now] * self.cluster.num_nodes
        self._live_time = [0.0] * self.cluster.num_nodes
        for mgr in self.cluster.master.managers:
            # Eviction trace events resolve reference distances through
            # the scheme owning this manager's blocks (correct per-app
            # tables under tenancy, where each app has its own managers).
            mgr.distance_source = self.scheme.reference_distance
        if rec.enabled:
            for mgr in self.cluster.master.managers:
                mgr.recorder = rec
        control = self.control
        control.reset()
        control.recorder = rec
        plan = self.failure_plan
        control.outage_loss = (
            (lambda msg: plan.control_loss(self._current_seq, msg.node_id))
            if plan is not None and plan.outages
            else None
        )
        if plan is not None and plan.autoscaler is not None:
            plan.autoscaler.reset()
        self._register_workers(now)

    def _build_cluster(self) -> Cluster:
        """Cluster for this run (tenancy overrides with a shared view)."""
        return build_cluster(
            self.cluster_config, self.scheme.policy_factory,
            placement=self.placement,
        )

    def _make_worker(self, node_id: int) -> WorkerNode:
        """Node for an elastic join (tenancy overrides the policy)."""
        return make_worker(self.cluster_config, node_id, self.scheme.policy_factory)

    def _register_workers(self, now: float) -> None:
        # Initial worker registration is synchronous on every plane:
        # Spark blocks on executor registration before scheduling work.
        for node in self.cluster.nodes:
            self.control.send_local(
                WorkerRegister(sent_at=now, node_id=node.node_id, app_id=self.app_id),
                self._deliver_register,
            )

    def _begin_stage(self, stage: Stage, now: float) -> None:
        """Stage-boundary driver work: job submits, failures, reports,
        control pump, and the scheme's purge/prefetch orders."""
        rec = self.recorder
        control = self.control
        self._current_seq = self._last_seq = stage.seq
        if stage.job_id != self._current_job:
            # Previous jobs finished: apply their unpersist events.
            for j in range(max(self._current_job, 0), stage.job_id):
                self._apply_unpersists(j)
            # Newly submitted jobs reveal their DAGs to the scheme.
            for j in range(self._current_job + 1, stage.job_id + 1):
                self.scheme.on_job_submit(j)
                if rec.enabled:
                    rec.emit(JobStart(t=now, job_id=j))
            self._current_job = stage.job_id
        plan = self.failure_plan
        if plan is not None and plan.elastic:
            # Membership first: a failure scheduled against a node that
            # just decommissioned is skipped by the plan's liveness guard.
            self._apply_memberships(stage, now)
        if plan is not None:
            failed = plan.failures_at(stage.seq)
            self._lost_blocks += plan.apply(stage.seq, self.cluster)
            # The replacement re-registers through the control plane;
            # on (possibly delayed) delivery the driver re-issues the
            # distance-table snapshot (paper §4.4).
            for failure in failed:
                control.send(
                    WorkerDeregister(
                        sent_at=now, node_id=failure.node_id, app_id=self.app_id
                    ),
                    self._deliver_deregister,
                )
                control.send(
                    WorkerRegister(
                        sent_at=now, node_id=failure.node_id,
                        reason="replacement", app_id=self.app_id,
                    ),
                    self._deliver_register,
                )
        # Reports are sent before the pump so a zero-latency rpc
        # plane delivers them (deliver_at == now) before the scheme
        # plans the boundary — exactly the instant plane's ordering.
        self._send_status_reports(now)
        control.pump(now)
        if rec.enabled:
            rec.now = now
            rec.emit(StageStart(
                t=now, seq=stage.seq, stage_id=stage.id,
                job_id=stage.job_id, num_tasks=stage.num_tasks,
            ))
        orders = self.scheme.on_stage_start(stage.seq, self.cluster)
        self._dispatch_stage_orders(stage.seq, orders, now)

    def _record_stage(self, stage: Stage, start: float, end: float) -> None:
        rec = self.recorder
        if rec.enabled:
            rec.now = end
            rec.emit(StageEnd(
                t=end, seq=stage.seq, stage_id=stage.id, job_id=stage.job_id,
            ))
        self._records.append(
            StageRecord(
                seq=stage.seq,
                stage_id=stage.id,
                job_id=stage.job_id,
                start=start,
                end=end,
                num_tasks=stage.num_tasks,
            )
        )

    def _finish_run(self, now: float) -> RunMetrics:
        """Drain the control plane, finalize the scheme, collect metrics.

        JCT is measured from the run's start time, so under tenancy it
        is the application's *sojourn* (completion − arrival)."""
        # Drain messages still in flight when the application ended, so
        # sent == delivered + dropped and late orders are counted stale.
        self._current_seq = self._last_seq + 1
        self.control.pump(math.inf)
        self._apply_unpersists(self._current_job)
        self.scheme.finalize()
        master = self.cluster.master
        # Presence fractions stay empty for static runs, keeping their
        # metrics byte-identical to the pre-elastic engine.
        per_node_presence: list[float] = []
        if self._membership_changed:
            duration = now - self._t_origin
            for i in master.live_node_ids:
                self._live_time[i] += now - self._live_since[i]
                self._live_since[i] = now
            per_node_presence = [
                min(t / duration, 1.0) if duration > 0 else 1.0
                for t in self._live_time
            ]
        return RunMetrics(
            scheme=self.scheme.name,
            workload=self.dag.app.signature,
            jct=now - self._t_origin,
            stats=master.total_stats(),
            stage_records=self._records,
            per_node_hit_ratio=[m.stats.hit_ratio for m in master.managers],
            cache_mb_per_node=self.cluster_config.cache_mb_per_node,
            failure_lost_blocks=self._lost_blocks,
            control_plane=self.control.name,
            control=self.control.stats,
            app_id=self._metrics_app_id,
            arrival_time=self._t_origin,
            nodes_joined=self._nodes_joined,
            nodes_decommissioned=self._nodes_decommissioned,
            rebalanced_blocks=self._rebalanced_blocks,
            rebalanced_mb=self._rebalanced_mb,
            decommission_dropped_blocks=self._decommission_dropped,
            per_node_presence=per_node_presence,
        )

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def _apply_memberships(self, stage: Stage, now: float) -> None:
        """Scheduled joins/decommissions first, then the autoscaler.

        The autoscaler sees the *post-event* live set and the upcoming
        stage's slot pressure (runnable tasks / live slots), so a
        scheduled decommission can immediately provoke a reactive join
        at the next boundary — but never at the same one (cooldown
        semantics belong to the scaler, ordering to the engine).
        """
        assert self.cluster is not None
        plan = self.failure_plan
        assert plan is not None
        events: list[MembershipEvent] = list(plan.memberships_at(stage.seq))
        scaler = plan.autoscaler
        if scaler is not None:
            master = self.cluster.master
            nodes = self.cluster.nodes
            slots = sum(nodes[i].num_slots for i in master.live_node_ids)
            pressure = stage.num_tasks / slots if slots else math.inf
            action = scaler.decide(stage.seq, pressure, len(master.live_node_ids))
            if action == "join":
                events.append(NodeJoin(at_seq=stage.seq))
            elif action == "decommission":
                events.append(NodeDecommission(at_seq=stage.seq))
        for event in events:
            if isinstance(event, NodeJoin):
                self._join_node(event.node_id, now)
            else:
                self._decommission_node(event.node_id, now)
        if events:
            # Placement may have moved: drop the current-stage plan memo.
            self._plan_stage = None
            self._plan = None

    def _join_node(self, node_id: int | None, now: float) -> None:
        """Grow the live set; the node registers through the §4.4 path."""
        assert self.cluster is not None
        master = self.cluster.master
        if node_id is None:
            node_id = master.num_nodes
        if node_id < master.num_nodes:
            if master.is_live(node_id):
                return  # pinned join of a live node: nothing to do
            node = self.cluster.nodes[node_id]  # a decommissioned slot rejoins
        else:
            node = self._make_worker(node_id)
        mgr = master.add_node(node)
        mgr.distance_source = self.scheme.reference_distance
        rec = self.recorder
        if rec.enabled:
            mgr.recorder = rec
        while len(self._live_time) < master.num_nodes:
            self._live_time.append(0.0)
            self._live_since.append(now)
        self._live_since[node_id] = now
        self._membership_changed = True
        self._nodes_joined += 1
        # On (possibly delayed) delivery the driver re-issues the current
        # distance table to the new worker, exactly like a replacement.
        self.control.send(
            WorkerRegister(
                sent_at=now, node_id=node_id, reason="join", app_id=self.app_id
            ),
            self._deliver_register,
        )

    def _decommission_node(self, node_id: int | None, now: float) -> None:
        """Shrink the live set, rebalancing the node's cache on the way
        out: the run's :class:`RebalancePolicy` picks which resident
        blocks are worth copying to their new homes (priced through the
        destination's storage channel), the rest die with the node."""
        assert self.cluster is not None
        master = self.cluster.master
        live = master.live_node_ids
        if node_id is None:
            node_id = live[-1]  # autoscaler shape: shed the newest node
        if not master.is_live(node_id) or len(live) <= 1:
            return  # already gone, or the last live node must stay
        mgr = master.managers[node_id]
        node = mgr.node
        rec = self.recorder
        if rec.enabled:
            rec.now = now
        # In-flight prefetches die with the node.
        for bid in list(mgr.inflight_prefetch):
            mgr.cancel_inflight(bid, reason="decommissioned")
        resident = list(node.memory.blocks())
        master.decommission_node(node_id)  # placement now excludes the node
        selected = self.rebalance.select(
            resident, lambda b: self.scheme.reference_distance(b.id.rdd_id)
        )
        network = self.cost.network
        for block in selected:
            dest_id = master.home_node_id(block.id)
            dest = master.managers[dest_id]
            # The copy crosses the network and lands through the
            # destination's serialized storage channel, delaying that
            # node's subsequent disk reads and prefetches — migration
            # is priced, not free.
            dest.node.io_free_at = (
                max(dest.node.io_free_at, now) + network.transfer_time(block.size_mb)
            )
            dest.insert_cached(block, _EMPTY_FROZENSET)
            self._rebalanced_blocks += 1
            self._rebalanced_mb += block.size_mb
            if rec.enabled:
                rec.emit(BlockMigrate(
                    t=now, rdd_id=block.id.rdd_id, partition=block.id.partition,
                    from_node=node_id, to_node=dest_id, size_mb=block.size_mb,
                ))
        self._decommission_dropped += len(resident) - len(selected)
        # The node's stores leave with it.
        for bid in list(node.memory.block_ids()):
            node.memory.remove(bid)
        for bid in list(node.disk.block_ids()):
            node.disk.remove(bid)
        node.io_free_at = 0.0
        self._live_time[node_id] += now - self._live_since[node_id]
        self._membership_changed = True
        self._nodes_decommissioned += 1
        self.control.send(
            WorkerDeregister(
                sent_at=now, node_id=node_id,
                reason="decommission", app_id=self.app_id,
            ),
            self._deliver_deregister,
        )

    # ------------------------------------------------------------------
    # stage execution
    # ------------------------------------------------------------------
    def _stage_costs(self, stage: Stage) -> list[float]:
        """Cache-independent per-node task cost: I/O shares are
        cluster-wide, compute scales with the node's CPU factor."""
        fixed_io = (
            self.cost.task_overhead_s
            + self.cost.shuffle_read_time(stage)
            + self.cost.input_read_time(stage)
        )
        base_compute = self.cost.compute_time(stage)
        return [
            fixed_io + base_compute / node.cpu_factor for node in self.cluster.nodes
        ]

    def _pending_by_node(self, stage: Stage) -> list[deque[int]]:
        master = self.cluster.master
        pending: list[deque[int]] = [deque() for _ in range(master.num_nodes)]
        for p in range(stage.num_tasks):
            pending[master.task_node_id(p)].append(p)
        return pending

    def _run_stage(self, stage: Stage, start: float) -> float:
        assert self.cluster is not None
        stage_end = (
            self._run_stage_reference(stage, start)
            if self.scheduler == "reference"
            else self._run_stage_event(stage, start)
        )
        for rdd in stage.cache_writes:
            self.scheme.on_block_created(rdd.id)
        return stage_end

    def _run_stage_event(self, stage: Stage, start: float) -> float:
        """Event-queue core: one global heap of free executor slots.

        Each entry is ``(free_time, node_id)``; tuple order makes ties
        resolve to the lowest node id, matching the reference core's
        ``min()`` scan.  Slots of nodes whose task queue has drained are
        retired lazily on pop — task placement is fixed up front, so a
        drained queue never refills within the stage.  O(log slots) per
        task instead of O(nodes).

        A popped slot *runs until preempted*: after each task it keeps
        executing its node's next task at ``t_end`` unless another slot
        in the heap is strictly earlier (or ties with a lower node id,
        which the heap order would schedule first).  Same-stage
        completions on one slot thus batch through the core in one step
        — no push/pop per task — while preserving the reference core's
        global start-time order exactly.
        """
        per_node_fixed = self._stage_costs(stage)
        pending = self._pending_by_node(stage)
        ready: list[tuple[float, int]] = [
            (start, node_id)
            for node_id, node in enumerate(self.cluster.nodes)
            if pending[node_id]
            for _ in range(node.num_slots)
        ]
        heapq.heapify(ready)

        # Hot loop: bind everything invariant to locals.  The prefetch
        # and control heaps are stable objects for the whole run (only
        # mutated in place), so the peek guards replace a method call
        # per task; the instant plane's heap is permanently empty.
        heappop, heappush = heapq.heappop, heapq.heappush
        prefetch_heap = self._prefetch_heap
        control = self.control
        control_heap = control.heap
        run_task = self._run_task
        stage_end = start
        remaining = stage.num_tasks
        while remaining:
            t0, node_id = heappop(ready)
            queue = pending[node_id]
            if not queue:
                continue  # node drained while this slot was busy: retire it
            fixed = per_node_fixed[node_id]
            while True:
                # Control deliveries first: a delivered prefetch order may
                # push an already-due completion onto the prefetch heap.
                if control_heap and control_heap[0][0] <= t0:
                    control.pump(t0)
                if prefetch_heap and prefetch_heap[0][0] <= t0:
                    self._apply_due_prefetches(t0)
                p = queue.popleft()
                t_end = run_task(stage, p, node_id, t0, fixed)
                if t_end > stage_end:
                    stage_end = t_end
                remaining -= 1
                if not queue:
                    break  # node drained: retire this slot
                if ready and (
                    ready[0][0] < t_end
                    or (ready[0][0] == t_end and ready[0][1] < node_id)
                ):
                    # Another slot is scheduled ahead of (t_end, node_id):
                    # yield to it and requeue this slot.
                    heappush(ready, (t_end, node_id))
                    break
                t0 = t_end
        return stage_end

    def _run_stage_reference(self, stage: Stage, start: float) -> float:
        """Reference core: per-node slot heaps + a ``min()`` over all
        nodes per task — O(tasks × nodes), the executable specification
        the event core is verified against."""
        num_nodes = self.cluster.master.num_nodes
        per_node_fixed = self._stage_costs(stage)
        pending = self._pending_by_node(stage)
        slots: list[list[float]] = [
            [start] * node.num_slots for node in self.cluster.nodes
        ]
        for heap in slots:
            heapq.heapify(heap)

        stage_end = start
        remaining = stage.num_tasks
        while remaining:
            # Next task = node with pending work whose earliest slot frees first.
            node_id = min(
                (n for n in range(num_nodes) if pending[n]),
                key=lambda n: slots[n][0],
            )
            t0 = heapq.heappop(slots[node_id])
            self.control.pump(t0)
            self._apply_due_prefetches(t0)
            p = pending[node_id].popleft()
            t_end = self._run_task(stage, p, node_id, t0, per_node_fixed[node_id])
            heapq.heappush(slots[node_id], t_end)
            stage_end = max(stage_end, t_end)
            remaining -= 1
        return stage_end

    def _stage_plan(self, stage: Stage) -> tuple[list, list, bool]:
        """Compiled per-partition block plan for one stage.

        Reads stride partitions exactly like writes: task ``p`` of a
        T-task stage touches blocks ``p, p+T, p+2T, …`` of every read
        RDD, so a stage with fewer tasks than an input RDD has
        partitions still accesses (and accounts) the tail partitions.
        The plan resolves block ids, home-node indices and sizes once
        per (stage, cluster size) — cached on the DAG while membership
        is static, so repeated runs (bench repeats, sweep cells) reuse
        it — instead of rebuilding ``BlockId``/``Block`` objects inside
        every task.  Once membership changed (or under sticky
        placement, which depends on this run's membership *history*),
        plans move to a per-run cache keyed by membership epoch: they
        would poison other runs on the shared DAG.
        """
        master = self.cluster.master
        if master.static_members:
            key = (stage.seq, master.num_nodes)
            plan = self.dag.engine_plans.get(key)
            if plan is None:
                plan = self._compile_plan(stage)
                self.dag.engine_plans[key] = plan
            return plan
        dyn_key = (stage.seq, master.epoch)
        plan = self._plan_cache.get(dyn_key)
        if plan is None:
            plan = self._compile_plan(stage)
            self._plan_cache[dyn_key] = plan
        return plan

    def _compile_plan(self, stage: Stage) -> tuple[list, list, bool]:
        place = self.cluster.master.placement.place
        num_tasks = stage.num_tasks
        reads: list[tuple] = []
        writes: list[tuple] = []
        for p in range(num_tasks):
            task_reads = [
                (BlockId(rdd.id, q), place(q), rdd.partition_size_mb)
                for rdd in stage.cache_reads
                for q in range(p, rdd.num_partitions, num_tasks)
            ]
            task_writes = [
                (block_of(rdd, q), place(q))
                for rdd in stage.cache_writes
                for q in range(p, rdd.num_partitions, num_tasks)
            ]
            reads.append(tuple(task_reads))
            writes.append(tuple(task_writes))
        return (reads, writes, bool(stage.cache_writes))

    def _run_task(
        self, stage: Stage, partition: int, node_id: int, t0: float, fixed: float
    ) -> float:
        assert self.cluster is not None
        plan = self._plan
        if plan is None or stage is not self._plan_stage:
            plan = self._stage_plan(stage)
            self._plan = plan
            self._plan_stage = stage
        reads, writes, has_writes = plan
        managers = self.cluster.master.managers
        t = t0 + fixed
        protect: set[BlockId] = set()

        task_reads = reads[partition]
        if task_reads:
            acquire = self._acquire_block
            remote = self.cost.remote_transfer_time
            for bid, home, size in task_reads:
                mgr = managers[home]
                t = acquire(mgr, bid, size, t, protect)
                if home != node_id:
                    t += remote(size)
                protect.add(bid)

        if has_writes:
            if self.recorder.enabled:
                self.recorder.now = t
            frozen_protect = frozenset(protect) if protect else _EMPTY_FROZENSET
            for block, home in writes[partition]:
                managers[home].insert_cached(block, frozen_protect)
        return t

    def _acquire_block(
        self,
        mgr: BlockManager,
        bid: BlockId,
        size_mb: float,
        t: float,
        protect: set[BlockId],
    ) -> float:
        """Make ``bid`` readable at the returned time; accounts hit/miss."""
        if self.recorder.enabled:
            self.recorder.now = t
        inflight = mgr.inflight_prefetch.get(bid)
        if inflight is not None:
            # Wait for the in-flight prefetch, then complete it.  Even
            # if cache admission refuses the block, the transfer already
            # happened — the task consumes it from the fetch buffer.
            t = max(t, inflight)
            self._complete_prefetch(mgr, bid)
            if bid in mgr.node.memory:
                mgr.access(bid)
            else:
                mgr.record_buffered_hit(bid)
            return t
        outcome = mgr.access(bid)
        if outcome is AccessOutcome.MEMORY_HIT:
            return t
        if outcome is AccessOutcome.DISK_READ:
            t = mgr.node.reserve_io(t, size_mb)
            if self.promote_on_miss:
                block = mgr.node.disk.get(bid)
                assert block is not None
                mgr.promote_from_disk(block, frozenset(protect))
            return t
        # Neither in memory nor on disk.  Without failure injection or
        # membership churn this is a DAG-contract violation; with lost
        # disks or decommissioned nodes it is Spark's lineage-recovery
        # path: recompute the partition and re-persist.  (Tenancy churn
        # arrives outside any failure plan, hence the second gate.)
        if self.failure_plan is None and not self._membership_changed:
            raise SimulationError(
                f"block {bid} referenced but neither in memory nor on disk "
                f"on node {mgr.node.node_id}"
            )
        return self._recompute_block(mgr, bid, size_mb, t, protect)

    def _recompute_block(
        self,
        mgr: BlockManager,
        bid: BlockId,
        size_mb: float,
        t: float,
        protect: set[BlockId],
    ) -> float:
        """Lineage recovery: rebuild a lost partition and re-persist it.

        The cost approximates recomputing the narrow pipeline above the
        RDD: CPU for every narrow ancestor, a storage read for input
        ancestors and a network fetch for each crossed shuffle (shuffle
        files survive node loss on the paper's clusters because they are
        spread over all nodes).
        """
        rdd = self.dag.app.rdd_by_id(bid.rdd_id)
        t += self._partition_recompute_time(rdd)
        block = Block(id=bid, size_mb=size_mb, rdd_name=rdd.name)
        # Re-persist through the manager so recovery-driven insertions
        # and the evictions they force are counted, recorded, and kept
        # consistent with the prefetched-unread bookkeeping.
        if self.recorder.enabled:
            self.recorder.now = t
        mgr.insert_cached(block, frozenset(protect))
        return t

    def _partition_recompute_time(self, rdd: RDD) -> float:
        cached = self._recompute_cost.get(rdd.id)
        if cached is not None:
            return cached
        cpu = 0.0
        io = 0.0
        for ancestor in rdd.narrow_ancestors():
            cpu += ancestor.compute_cost
            if ancestor.is_input:
                io += self.cost.disk.read_time(ancestor.partition_size_mb)
            for dep in ancestor.deps:
                if isinstance(dep, ShuffleDependency):
                    share = dep.parent.size_mb / max(ancestor.num_partitions, 1)
                    io += self.cost.network.transfer_time(share)
        total = cpu / self.cost.cpu_speed + io
        self._recompute_cost[rdd.id] = total
        return total

    # ------------------------------------------------------------------
    # control-plane dispatch and delivery
    # ------------------------------------------------------------------
    def _dispatch_stage_orders(
        self, seq: int, orders: StageOrders, now: float
    ) -> None:
        """Turn a scheme's stage-boundary orders into control messages.

        Send order (which under instant is also apply order, matching
        the old direct-call path exactly): the table broadcast first —
        workers must evict against post-advance distances — then purge
        orders fanned out one message per (rdd, node) in node order,
        then prefetch orders in the scheme's selection order.
        """
        assert self.cluster is not None
        control = self.control
        master = self.cluster.master
        snap = orders.table_snapshot
        if snap is not None:
            for node in master.live_nodes():
                control.send(
                    StageBoundary(
                        sent_at=now, node_id=node.node_id, seq=seq,
                        distances=snap, app_id=self.app_id,
                    ),
                    self._deliver_table,
                )
        for rdd_id in orders.purge_rdds:
            for node_id in master.live_node_ids:
                control.send(
                    PurgeOrder(
                        sent_at=now, node_id=node_id, rdd_id=rdd_id,
                        issued_seq=seq, app_id=self.app_id,
                    ),
                    self._deliver_purge,
                )
        for block in orders.prefetches:
            control.send(
                PrefetchOrder(
                    sent_at=now,
                    node_id=master.home_node_id(block.id),
                    rdd_id=block.id.rdd_id,
                    partition=block.id.partition,
                    size_mb=block.size_mb,
                    rdd_name=block.rdd_name,
                    issued_seq=seq,
                    app_id=self.app_id,
                ),
                self._deliver_prefetch,
            )

    def _send_status_reports(self, now: float) -> None:
        """Every worker reports its cache status (``reportCacheStatus``).

        Sent before ``on_stage_start`` each boundary: under the instant
        plane the manager therefore selects prefetches from exactly the
        live free-memory values it used to read directly; under rpc the
        report lands a boundary late and the driver plans on stale data.
        """
        for mgr in self.cluster.master.live_managers():
            node = mgr.node
            self.control.send(
                CacheStatusReport(
                    sent_at=now,
                    node_id=node.node_id,
                    used_mb=node.memory.used_mb,
                    free_mb=node.memory.free_mb,
                    hit_ratio=mgr.stats.hit_ratio,
                    num_blocks=len(node.memory),
                    app_id=self.app_id,
                ),
                self._deliver_status,
            )

    def _deliver_status(self, msg: ControlMessage, t: float) -> bool:
        assert isinstance(msg, CacheStatusReport)
        self.scheme.on_cache_status(msg)
        return False  # out-of-order reports are ignored, not stale-counted

    def _deliver_purge(self, msg: ControlMessage, t: float) -> bool:
        assert isinstance(msg, PurgeOrder)
        # Stale when the RDD's distance turned finite again after the
        # order was issued (new references resurrected it, ad-hoc mode):
        # the worker refuses to purge live data.
        dist = self.scheme.reference_distance(msg.rdd_id)
        if dist is not None and not math.isinf(dist):
            return True
        rec = self.recorder
        if rec.enabled:
            rec.now = t
        assert self.cluster is not None
        self.cluster.master.purge_rdd_on(
            msg.node_id, msg.rdd_id, drop_disk=msg.drop_disk
        )
        return False

    def _deliver_prefetch(self, msg: ControlMessage, t: float) -> bool:
        assert isinstance(msg, PrefetchOrder)
        block = Block(
            id=BlockId(msg.rdd_id, msg.partition),
            size_mb=msg.size_mb,
            rdd_name=msg.rdd_name,
        )
        # A late order (its boundary already passed) is stale but still
        # attempted: the block may serve a later stage.
        stale = self._current_seq > msg.issued_seq
        self._issue_one_prefetch(block, t)
        return stale

    def _deliver_table(self, msg: ControlMessage, t: float) -> bool:
        assert isinstance(msg, StageBoundary)
        assert self.cluster is not None
        policy = self.cluster.nodes[msg.node_id].policy
        applied = policy.on_table_update(msg.seq, msg.distances)
        return applied is False  # an older-than-held broadcast is stale

    def _deliver_register(self, msg: ControlMessage, t: float) -> bool:
        assert isinstance(msg, WorkerRegister)
        rec = self.recorder
        if rec.enabled and msg.reason != "startup":
            # Startup registrations are not traced: they happen the same
            # way in every run, before simulated time starts.
            rec.now = t
            rec.emit(WorkerRegisterEvent(t=t, node_id=msg.node_id, reason=msg.reason))
        # Fault-tolerance story (§4.4): the driver re-issues its current
        # distance table to the (re-)registered worker.
        snap = self.scheme.table_snapshot()
        if snap is not None:
            self.control.send(
                StageBoundary(
                    sent_at=t,
                    node_id=msg.node_id,
                    seq=self._current_seq,
                    distances=snap,
                    app_id=self.app_id,
                ),
                self._deliver_table,
            )
        return False

    def _deliver_deregister(self, msg: ControlMessage, t: float) -> bool:
        assert isinstance(msg, WorkerDeregister)
        rec = self.recorder
        if rec.enabled:
            rec.now = t
            rec.emit(WorkerDeregisterEvent(
                t=t, node_id=msg.node_id, reason=msg.reason,
            ))
        self.scheme.on_worker_deregister(msg.node_id)
        return False

    # ------------------------------------------------------------------
    # prefetching
    # ------------------------------------------------------------------
    def _issue_one_prefetch(self, block: Block, now: float) -> None:
        assert self.cluster is not None
        mgr = self.cluster.master.manager_for(block.id)
        if block.id in mgr.node.memory or block.id in mgr.inflight_prefetch:
            return
        if block.id not in mgr.node.disk:
            return  # nothing to fetch from (defensive)
        done = mgr.node.reserve_io(now, block.size_mb)
        mgr.inflight_prefetch[block.id] = done
        self._prefetch_seq += 1
        heapq.heappush(
            self._prefetch_heap,
            (done, self._prefetch_seq, mgr.node.node_id, block.id),
        )
        mgr.stats.prefetches_issued += 1
        rec = self.recorder
        if rec.enabled:
            rec.emit(PrefetchIssue(
                t=now, rdd_id=block.id.rdd_id, partition=block.id.partition,
                node_id=mgr.node.node_id, size_mb=block.size_mb, eta=done,
            ))

    def _apply_due_prefetches(self, t: float) -> None:
        assert self.cluster is not None
        if self.scheduler == "reference":
            for mgr in self.cluster.master.managers:
                if not mgr.inflight_prefetch:
                    continue
                due = [bid for bid, done in mgr.inflight_prefetch.items() if done <= t]
                for bid in due:
                    self._complete_prefetch(mgr, bid)
            return
        heap = self._prefetch_heap
        managers = self.cluster.master.managers
        while heap and heap[0][0] <= t:
            done, _, node_id, bid = heapq.heappop(heap)
            mgr = managers[node_id]
            # Lazy invalidation: skip entries whose transfer was already
            # consumed by a waiting task or cancelled by a node failure.
            if mgr.inflight_prefetch.get(bid) == done:
                self._complete_prefetch(mgr, bid)

    def _complete_prefetch(self, mgr: BlockManager, bid: BlockId) -> None:
        done = mgr.inflight_prefetch.pop(bid, None)
        block = mgr.node.disk.get(bid)
        rec = self.recorder
        if rec.enabled and done is not None:
            rec.now = done
        if block is None:
            # Unpersisted while in flight: the transfer is abandoned.
            if rec.enabled:
                rec.emit(PrefetchCancel(
                    t=rec.now, rdd_id=bid.rdd_id, partition=bid.partition,
                    node_id=mgr.node.node_id, reason="unpersisted",
                ))
            return
        admitted = mgr.promote_from_disk(block, prefetch=True)
        if rec.enabled:
            rec.emit(PrefetchComplete(
                t=rec.now, rdd_id=bid.rdd_id, partition=bid.partition,
                node_id=mgr.node.node_id, admitted=admitted,
            ))

    # ------------------------------------------------------------------
    def _apply_unpersists(self, job_id: int) -> None:
        assert self.cluster is not None
        for rdd_id in self._unpersist_by_job.get(job_id, ()):
            self.cluster.master.purge_rdd(rdd_id, drop_disk=True)


def simulate(
    dag: ApplicationDAG,
    cluster_config: ClusterConfig,
    scheme: CacheScheme,
    **kwargs,
) -> RunMetrics:
    """One-shot convenience wrapper around :class:`SparkSimulator`."""
    return SparkSimulator(dag, cluster_config, scheme, **kwargs).run()
