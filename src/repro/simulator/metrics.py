"""Run metrics: what the paper's figures report.

Job Completion Time (JCT), cache hit ratio, eviction/prefetch counters,
plus a per-stage timeline for debugging and Figure-2 style traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.block_manager import BlockManagerStats
from repro.control.plane import ControlPlaneStats


@dataclass(frozen=True)
class StageRecord:
    """Timing of one executed stage."""

    seq: int
    stage_id: int
    job_id: int
    start: float
    end: float
    num_tasks: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RunMetrics:
    """Everything measured during one simulated application run."""

    scheme: str
    workload: str
    jct: float = 0.0
    stats: BlockManagerStats = field(default_factory=BlockManagerStats)
    stage_records: list[StageRecord] = field(default_factory=list)
    #: Per-node hit fraction; ``None`` marks a node that served no
    #: cached reads at all (idle for accounting purposes).
    per_node_hit_ratio: list[float | None] = field(default_factory=list)
    cache_mb_per_node: float = 0.0
    #: Memory blocks dropped by injected node failures (0 without a plan).
    failure_lost_blocks: int = 0
    #: Which control-plane transport carried driver↔worker messages.
    control_plane: str = "instant"
    #: Control-traffic counters (messages sent/delivered/dropped, stale
    #: orders, mean order-to-apply delay).
    control: ControlPlaneStats = field(default_factory=ControlPlaneStats)
    #: Multi-tenant identity: which application of a shared-cluster run
    #: these metrics belong to (``None`` for a standalone run).
    app_id: int | None = None
    #: Simulated time the application entered the cluster.  Under
    #: tenancy ``jct`` is the sojourn (completion − arrival); stage
    #: records keep absolute simulation times.
    arrival_time: float = 0.0
    #: Membership churn during the run (0 for static clusters).
    nodes_joined: int = 0
    nodes_decommissioned: int = 0
    #: Scale-down rebalancing: blocks migrated to surviving nodes vs
    #: dropped with their node.
    rebalanced_blocks: int = 0
    rebalanced_mb: float = 0.0
    decommission_dropped_blocks: int = 0
    #: Fraction of the run each node slot was live (parallel to
    #: ``per_node_hit_ratio``).  Empty means "all nodes present the
    #: whole run" — the static case, kept empty so static-membership
    #: metrics stay byte-identical to the pre-elastic engine.
    per_node_presence: list[float] = field(default_factory=list)

    @property
    def hit_ratio(self) -> float:
        """Cluster-wide hit fraction (0.0 when the run had no accesses)."""
        ratio = self.stats.hit_ratio
        return 0.0 if ratio is None else ratio

    @property
    def mean_node_hit_ratio(self) -> float | None:
        """Presence-weighted average per-node hit ratio.

        Idle nodes (``None`` ratio) are excluded instead of counted as
        0.0 hits, so the cluster average reflects caching quality, not
        task placement; ``None`` when every node was idle.  Under
        elastic membership each node's ratio is weighted by the
        fraction of the run it was live (``per_node_presence``) — a
        node that joined for the last stage should not drag the mean
        like a full-run node would.  Static runs leave the presence
        list empty (all weights 1.0), reducing to the plain average.
        """
        presence = self.per_node_presence
        total = 0.0
        weight = 0.0
        for i, ratio in enumerate(self.per_node_hit_ratio):
            if ratio is None:
                continue
            w = presence[i] if i < len(presence) else 1.0
            total += w * ratio
            weight += w
        if weight <= 0.0:
            return None
        return total / weight

    @property
    def num_stages_executed(self) -> int:
        return len(self.stage_records)

    def normalized_jct(self, baseline: RunMetrics) -> float:
        """This run's JCT as a fraction of ``baseline``'s (Fig. 4 y-axis)."""
        if baseline.jct <= 0:
            raise ValueError("baseline JCT must be positive")
        return self.jct / baseline.jct

    def summary(self) -> str:
        s = self.stats
        return (
            f"{self.workload:>6s} | {self.scheme:<14s} | JCT {self.jct:9.2f}s | "
            f"hit {self.hit_ratio * 100:5.1f}% ({s.hits}/{s.accesses}) | "
            f"evict {s.evictions:4d} | purge {s.purged:4d} | "
            f"prefetch {s.prefetches_used}/{s.prefetches_issued}"
        )
