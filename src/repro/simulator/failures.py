"""Failure and membership injection: cache loss, churn, autoscaling.

The paper's fault-tolerance story (§4.4): when a worker fails, its
local reference-distance profile is lost and the MRDmanager re-issues
the MRD_Table to the replacement node.  In the simulator a failure
empties the node's memory store (and optionally its spilled disk
blocks); the replacement registers with the same block-manager identity
so placement is unchanged, and the centralized manager state is
re-delivered by construction (policies read the shared manager).

Beyond in-place failures, a plan also schedules *membership* changes:
:class:`NodeJoin` grows the live set (a fresh node registers through
the §4.4 path and starts taking placement), :class:`NodeDecommission`
permanently removes a node (its cache is rebalanced or dropped by the
engine's :class:`~repro.cluster.rebalance.RebalancePolicy`).  An
optional reactive :class:`Autoscaler` emits the same events from slot
pressure observed *inside* the run — seeded and deterministic, so
elastic runs replay byte-identically.

Injected failures let the tests assert the two properties that matter:
the run still completes with correct accounting, and the policy's
*relative* advantage survives the hit-ratio dip.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class NodeFailure:
    """Lose node ``node_id``'s cache before active stage ``at_seq``.

    ``lose_disk`` also drops the spilled copies (a machine replacement
    rather than an executor restart); blocks whose only copy lived
    there must then be recomputed — the engine charges the lineage's
    recompute cost through the normal miss path once the blocks are
    rewritten by their next computing stage, or fails loudly if a
    referenced block becomes unrecoverable (which the DAG contract
    forbids for executor restarts).
    """

    at_seq: int
    node_id: int
    lose_disk: bool = False

    def __post_init__(self) -> None:
        if self.at_seq < 0:
            raise ValueError("at_seq must be non-negative")
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")


@dataclass(frozen=True)
class ControlOutage:
    """Control-plane disruption: message loss over a stage window.

    While the current active-stage seq lies in ``[from_seq, to_seq]``,
    control messages to/from worker ``node_id`` (every worker when
    ``None``) are dropped with probability ``loss_rate`` on top of the
    rpc plane's configured base loss.  The instant plane ignores
    outages — direct calls cannot be lost — so outage experiments
    require ``control_plane="rpc"``.
    """

    from_seq: int
    to_seq: int
    node_id: int | None = None
    loss_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.from_seq < 0 or self.to_seq < self.from_seq:
            raise ValueError("outage window must satisfy 0 <= from_seq <= to_seq")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")

    def covers(self, seq: int, node_id: int | None) -> bool:
        if not self.from_seq <= seq <= self.to_seq:
            return False
        return self.node_id is None or node_id is None or self.node_id == node_id


@dataclass(frozen=True)
class NodeJoin:
    """Grow the live set before active stage ``at_seq``.

    ``node_id`` pins the joining node's id; ``None`` lets the engine
    assign the next free slot.  Joins flow through the control plane's
    ``WorkerRegister`` path, so under MRD the new node receives the
    current MRD_Table exactly like a §4.4 replacement does.
    """

    at_seq: int
    node_id: int | None = None

    def __post_init__(self) -> None:
        if self.at_seq < 0:
            raise ValueError("at_seq must be non-negative")
        if self.node_id is not None and self.node_id < 0:
            raise ValueError("node_id must be non-negative")


@dataclass(frozen=True)
class NodeDecommission:
    """Permanently remove a node before active stage ``at_seq``.

    ``None`` lets the engine pick the highest live node id — the shape
    an autoscaler produces, and robust to plans built before the run's
    membership history is known.  Unlike :class:`NodeFailure` the node
    does not come back: its cached blocks are handed to the engine's
    rebalance policy (migrate the most-urgent, drop the rest) and it
    stops being a placement target.
    """

    at_seq: int
    node_id: int | None = None

    def __post_init__(self) -> None:
        if self.at_seq < 0:
            raise ValueError("at_seq must be non-negative")
        if self.node_id is not None and self.node_id < 0:
            raise ValueError("node_id must be non-negative")


MembershipEvent = NodeJoin | NodeDecommission


@dataclass
class Autoscaler:
    """Reactive membership policy: slot pressure in, churn events out.

    At every stage boundary the engine reports the *slot pressure* of
    the upcoming stage — runnable tasks divided by live slots — and the
    autoscaler answers with ``"join"``, ``"decommission"`` or ``None``.
    Pressure above ``scale_up_at`` adds a node (until ``max_nodes``),
    below ``scale_down_at`` removes one (until ``min_nodes``), with a
    ``cooldown`` of stage boundaries between actions so one burst does
    not trigger a join cascade.

    Optional ``jitter`` perturbs both thresholds per decision through a
    seeded :class:`random.Random` — deterministic for a given ``seed``,
    so autoscaled runs still replay byte-identically.
    """

    min_nodes: int = 1
    max_nodes: int = 16
    scale_up_at: float = 1.5
    scale_down_at: float = 0.25
    cooldown: int = 2
    jitter: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, compare=False)
    _last_action: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ValueError("min_nodes must be at least 1")
        if self.max_nodes < self.min_nodes:
            raise ValueError("max_nodes must be >= min_nodes")
        if self.scale_down_at >= self.scale_up_at:
            raise ValueError("scale_down_at must be below scale_up_at")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.reset()

    def reset(self) -> None:
        """Rearm for a fresh run (the engine calls this at run start, so
        one plan object drives identical decisions in every run)."""
        self._rng = random.Random(self.seed)
        self._last_action = -(10**9)

    def decide(self, seq: int, pressure: float, live_count: int) -> str | None:
        """``"join"``, ``"decommission"`` or ``None`` for this boundary."""
        if seq - self._last_action <= self.cooldown:
            return None
        up, down = self.scale_up_at, self.scale_down_at
        if self.jitter > 0:
            up *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
            down *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        if pressure > up and live_count < self.max_nodes:
            self._last_action = seq
            return "join"
        if pressure < down and live_count > self.min_nodes:
            self._last_action = seq
            return "decommission"
        return None


@dataclass
class FailurePlan:
    """A schedule of failures and membership changes, applied at stage
    boundaries."""

    failures: list[NodeFailure] = field(default_factory=list)
    outages: list[ControlOutage] = field(default_factory=list)
    memberships: list[MembershipEvent] = field(default_factory=list)
    autoscaler: Autoscaler | None = None

    def add(self, at_seq: int, node_id: int, lose_disk: bool = False) -> FailurePlan:
        self.failures.append(NodeFailure(at_seq=at_seq, node_id=node_id, lose_disk=lose_disk))
        return self

    def add_outage(
        self,
        from_seq: int,
        to_seq: int,
        node_id: int | None = None,
        loss_rate: float = 1.0,
    ) -> FailurePlan:
        self.outages.append(ControlOutage(
            from_seq=from_seq, to_seq=to_seq, node_id=node_id, loss_rate=loss_rate
        ))
        return self

    def add_join(self, at_seq: int, node_id: int | None = None) -> FailurePlan:
        self.memberships.append(NodeJoin(at_seq=at_seq, node_id=node_id))
        return self

    def add_decommission(self, at_seq: int, node_id: int | None = None) -> FailurePlan:
        self.memberships.append(NodeDecommission(at_seq=at_seq, node_id=node_id))
        return self

    def failures_at(self, seq: int) -> list[NodeFailure]:
        return [f for f in self.failures if f.at_seq == seq]

    def memberships_at(self, seq: int) -> list[MembershipEvent]:
        """Scheduled membership events for stage ``seq``, in plan order."""
        return [m for m in self.memberships if m.at_seq == seq]

    @property
    def elastic(self) -> bool:
        """True if this plan can change membership (events or autoscaler)."""
        return bool(self.memberships) or self.autoscaler is not None

    def control_loss(self, seq: int, node_id: int | None) -> float:
        """Worst outage loss rate covering (``seq``, ``node_id``)."""
        return max(
            (o.loss_rate for o in self.outages if o.covers(seq, node_id)),
            default=0.0,
        )

    def apply(self, seq: int, cluster: Cluster) -> int:
        """Apply all failures scheduled for stage ``seq``.

        Returns the number of memory blocks lost.  In-flight prefetches
        targeting the failed node are cancelled (their transfer dies
        with the node).
        """
        lost = 0
        for failure in self.failures_at(seq):
            if failure.node_id >= cluster.num_nodes:
                raise ValueError(
                    f"failure targets node {failure.node_id} but the cluster "
                    f"has {cluster.num_nodes} nodes"
                )
            if not cluster.master.is_live(failure.node_id):
                # The target was decommissioned before its failure came
                # due (possible under autoscaled churn): nothing to lose.
                continue
            mgr = cluster.master.managers[failure.node_id]
            node = mgr.node
            for bid in list(node.memory.block_ids()):
                node.memory.remove(bid)
                lost += 1
            mgr.inflight_prefetch.clear()
            node.io_free_at = 0.0  # the replacement's disk starts idle
            if failure.lose_disk:
                for bid in list(node.disk.block_ids()):
                    node.disk.remove(bid)
        return lost


def build_churn_plan(num_stages: int, rate: float, seed: int = 0) -> FailurePlan:
    """Random membership churn for a ``num_stages``-stage workload.

    Each interior stage boundary independently hosts a membership event
    with probability ``rate`` — a join or a decommission with equal
    odds, targets left to the engine (joins take the next free slot,
    decommissions drop the highest live id).  All draws come from one
    ``random.Random(seed)``, so a (num_stages, rate, seed) triple names
    exactly one churn history — the sweep axis ``fig_elastic`` runs
    over.
    """
    if num_stages < 0:
        raise ValueError("num_stages must be non-negative")
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    plan = FailurePlan()
    rng = random.Random(seed)
    for seq in range(1, num_stages):
        if rng.random() < rate:
            if rng.random() < 0.5:
                plan.add_join(seq)
            else:
                plan.add_decommission(seq)
    return plan
