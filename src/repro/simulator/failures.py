"""Failure injection: worker-node cache loss during a run.

The paper's fault-tolerance story (§4.4): when a worker fails, its
local reference-distance profile is lost and the MRDmanager re-issues
the MRD_Table to the replacement node.  In the simulator a failure
empties the node's memory store (and optionally its spilled disk
blocks); the replacement registers with the same block-manager identity
so placement is unchanged, and the centralized manager state is
re-delivered by construction (policies read the shared manager).

Injected failures let the tests assert the two properties that matter:
the run still completes with correct accounting, and the policy's
*relative* advantage survives the hit-ratio dip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class NodeFailure:
    """Lose node ``node_id``'s cache before active stage ``at_seq``.

    ``lose_disk`` also drops the spilled copies (a machine replacement
    rather than an executor restart); blocks whose only copy lived
    there must then be recomputed — the engine charges the lineage's
    recompute cost through the normal miss path once the blocks are
    rewritten by their next computing stage, or fails loudly if a
    referenced block becomes unrecoverable (which the DAG contract
    forbids for executor restarts).
    """

    at_seq: int
    node_id: int
    lose_disk: bool = False

    def __post_init__(self) -> None:
        if self.at_seq < 0:
            raise ValueError("at_seq must be non-negative")
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")


@dataclass
class FailurePlan:
    """A schedule of failures, applied at stage boundaries."""

    failures: list[NodeFailure] = field(default_factory=list)

    def add(self, at_seq: int, node_id: int, lose_disk: bool = False) -> "FailurePlan":
        self.failures.append(NodeFailure(at_seq=at_seq, node_id=node_id, lose_disk=lose_disk))
        return self

    def failures_at(self, seq: int) -> list[NodeFailure]:
        return [f for f in self.failures if f.at_seq == seq]

    def apply(self, seq: int, cluster: Cluster) -> int:
        """Apply all failures scheduled for stage ``seq``.

        Returns the number of memory blocks lost.  In-flight prefetches
        targeting the failed node are cancelled (their transfer dies
        with the node).
        """
        lost = 0
        for failure in self.failures_at(seq):
            if failure.node_id >= cluster.num_nodes:
                raise ValueError(
                    f"failure targets node {failure.node_id} but the cluster "
                    f"has {cluster.num_nodes} nodes"
                )
            mgr = cluster.master.managers[failure.node_id]
            node = mgr.node
            for bid in list(node.memory.block_ids()):
                node.memory.remove(bid)
                lost += 1
            mgr.inflight_prefetch.clear()
            node.io_free_at = 0.0  # the replacement's disk starts idle
            if failure.lose_disk:
                for bid in list(node.disk.block_ids()):
                    node.disk.remove(bid)
        return lost
