"""Failure injection: worker-node cache loss during a run.

The paper's fault-tolerance story (§4.4): when a worker fails, its
local reference-distance profile is lost and the MRDmanager re-issues
the MRD_Table to the replacement node.  In the simulator a failure
empties the node's memory store (and optionally its spilled disk
blocks); the replacement registers with the same block-manager identity
so placement is unchanged, and the centralized manager state is
re-delivered by construction (policies read the shared manager).

Injected failures let the tests assert the two properties that matter:
the run still completes with correct accounting, and the policy's
*relative* advantage survives the hit-ratio dip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class NodeFailure:
    """Lose node ``node_id``'s cache before active stage ``at_seq``.

    ``lose_disk`` also drops the spilled copies (a machine replacement
    rather than an executor restart); blocks whose only copy lived
    there must then be recomputed — the engine charges the lineage's
    recompute cost through the normal miss path once the blocks are
    rewritten by their next computing stage, or fails loudly if a
    referenced block becomes unrecoverable (which the DAG contract
    forbids for executor restarts).
    """

    at_seq: int
    node_id: int
    lose_disk: bool = False

    def __post_init__(self) -> None:
        if self.at_seq < 0:
            raise ValueError("at_seq must be non-negative")
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")


@dataclass(frozen=True)
class ControlOutage:
    """Control-plane disruption: message loss over a stage window.

    While the current active-stage seq lies in ``[from_seq, to_seq]``,
    control messages to/from worker ``node_id`` (every worker when
    ``None``) are dropped with probability ``loss_rate`` on top of the
    rpc plane's configured base loss.  The instant plane ignores
    outages — direct calls cannot be lost — so outage experiments
    require ``control_plane="rpc"``.
    """

    from_seq: int
    to_seq: int
    node_id: int | None = None
    loss_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.from_seq < 0 or self.to_seq < self.from_seq:
            raise ValueError("outage window must satisfy 0 <= from_seq <= to_seq")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")

    def covers(self, seq: int, node_id: int | None) -> bool:
        if not self.from_seq <= seq <= self.to_seq:
            return False
        return self.node_id is None or node_id is None or self.node_id == node_id


@dataclass
class FailurePlan:
    """A schedule of failures, applied at stage boundaries."""

    failures: list[NodeFailure] = field(default_factory=list)
    outages: list[ControlOutage] = field(default_factory=list)

    def add(self, at_seq: int, node_id: int, lose_disk: bool = False) -> FailurePlan:
        self.failures.append(NodeFailure(at_seq=at_seq, node_id=node_id, lose_disk=lose_disk))
        return self

    def add_outage(
        self,
        from_seq: int,
        to_seq: int,
        node_id: int | None = None,
        loss_rate: float = 1.0,
    ) -> FailurePlan:
        self.outages.append(ControlOutage(
            from_seq=from_seq, to_seq=to_seq, node_id=node_id, loss_rate=loss_rate
        ))
        return self

    def failures_at(self, seq: int) -> list[NodeFailure]:
        return [f for f in self.failures if f.at_seq == seq]

    def control_loss(self, seq: int, node_id: int | None) -> float:
        """Worst outage loss rate covering (``seq``, ``node_id``)."""
        return max(
            (o.loss_rate for o in self.outages if o.covers(seq, node_id)),
            default=0.0,
        )

    def apply(self, seq: int, cluster: Cluster) -> int:
        """Apply all failures scheduled for stage ``seq``.

        Returns the number of memory blocks lost.  In-flight prefetches
        targeting the failed node are cancelled (their transfer dies
        with the node).
        """
        lost = 0
        for failure in self.failures_at(seq):
            if failure.node_id >= cluster.num_nodes:
                raise ValueError(
                    f"failure targets node {failure.node_id} but the cluster "
                    f"has {cluster.num_nodes} nodes"
                )
            mgr = cluster.master.managers[failure.node_id]
            node = mgr.node
            for bid in list(node.memory.block_ids()):
                node.memory.remove(bid)
                lost += 1
            mgr.inflight_prefetch.clear()
            node.io_free_at = 0.0  # the replacement's disk starts idle
            if failure.lose_disk:
                for bid in list(node.disk.block_ids()):
                    node.disk.remove(bid)
        return lost
