"""Task time model: how compute and I/O turn into simulated seconds.

All engine timing flows through :class:`CostModel` so the assumptions
live in one place:

* compute — the stage's aggregated per-task CPU cost, divided by the
  node's relative CPU speed;
* shuffle read — each task pulls its share of the parents' map output
  over the network;
* input read — each task streams its share of the HDFS-like input at
  disk bandwidth;
* cached-block I/O — misses re-read the spilled copy from the home
  node's disk (serialized on that node's I/O channel, handled by the
  engine) and remote cache reads pay a network transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import DiskModel, NetworkModel
from repro.dag.structures import Stage


@dataclass(frozen=True)
class CostModel:
    """Deterministic task-duration arithmetic."""

    network: NetworkModel
    disk: DiskModel
    #: Relative CPU speed of the cluster's cores (1.0 = reference vCPU).
    cpu_speed: float = 1.0
    #: Fixed per-task overhead (scheduling/serialization), seconds.
    task_overhead_s: float = 0.01

    def __post_init__(self) -> None:
        if self.cpu_speed <= 0:
            raise ValueError("cpu_speed must be positive")
        if self.task_overhead_s < 0:
            raise ValueError("task_overhead_s must be non-negative")

    # ------------------------------------------------------------------
    def compute_time(self, stage: Stage) -> float:
        """Pure CPU seconds for one task of ``stage``."""
        return stage.compute_cost_per_task / self.cpu_speed

    def shuffle_read_time(self, stage: Stage) -> float:
        """Seconds one task spends fetching its shuffle input share."""
        total = stage.shuffle_read_mb
        if total == 0 or stage.num_tasks == 0:
            return 0.0
        return self.network.transfer_time(total / stage.num_tasks)

    def input_read_time(self, stage: Stage) -> float:
        """Seconds one task spends reading its storage-input share."""
        total = stage.input_read_mb
        if total == 0 or stage.num_tasks == 0:
            return 0.0
        return self.disk.read_time(total / stage.num_tasks)

    def remote_transfer_time(self, size_mb: float) -> float:
        """Cross-node block transfer (cache read off the home node)."""
        return self.network.transfer_time(size_mb)

    def fixed_task_time(self, stage: Stage) -> float:
        """Everything a task pays regardless of cache state."""
        return (
            self.task_overhead_s
            + self.compute_time(stage)
            + self.shuffle_read_time(stage)
            + self.input_read_time(stage)
        )
