"""Cluster presets mirroring the paper's Table 4.

The absolute hardware is scaled to simulation units, but the *relative*
differences the paper's comparisons rely on are preserved: node count,
cores per node, link speed, and per-core speed.

======================  ====  =====  =====  =========  =================
Cluster                 VMs   vCPU   RAM    Network    Equivalency
======================  ====  =====  =====  =========  =================
Main cluster             25      4   8 GB   500 Mbps   (university VMs)
LRC cluster              20      2   8 GB   450 Mbps   EC2 m4.large
MemTune cluster           6      8   8 GB   1 Gbps     System G
======================  ====  =====  =====  =========  =================

Per-node cache size is *not* fixed here: the paper sweeps it via
``spark.memory.fraction`` / ``spark.executor.memory``; experiments pass
the cache size per run (usually as a fraction of the workload's cached
working set).
"""

from __future__ import annotations

from repro.cluster.cluster import ClusterConfig
from repro.cluster.network import DiskModel, NetworkModel

#: Default per-node cache used when an experiment does not sweep it.
DEFAULT_CACHE_MB = 1024.0

MAIN_CLUSTER = ClusterConfig(
    name="main",
    num_nodes=25,
    slots_per_node=4,
    cache_mb_per_node=DEFAULT_CACHE_MB,
    network=NetworkModel(bandwidth_mbps=500.0),
    disk=DiskModel(),
    cpu_speed=1.0,
)

LRC_CLUSTER = ClusterConfig(
    name="lrc",
    num_nodes=20,
    slots_per_node=2,
    cache_mb_per_node=DEFAULT_CACHE_MB,
    network=NetworkModel(bandwidth_mbps=450.0),
    disk=DiskModel(),
    cpu_speed=1.0,
)

MEMTUNE_CLUSTER = ClusterConfig(
    name="memtune",
    num_nodes=6,
    slots_per_node=8,
    cache_mb_per_node=DEFAULT_CACHE_MB,
    network=NetworkModel(bandwidth_mbps=1000.0),
    disk=DiskModel(),
    cpu_speed=1.2,
)

#: Small cluster for unit/integration tests: fast, still multi-node.
TEST_CLUSTER = ClusterConfig(
    name="test",
    num_nodes=4,
    slots_per_node=2,
    cache_mb_per_node=256.0,
    network=NetworkModel(bandwidth_mbps=500.0),
    disk=DiskModel(),
    cpu_speed=1.0,
)

CLUSTERS = {
    "main": MAIN_CLUSTER,
    "lrc": LRC_CLUSTER,
    "memtune": MEMTUNE_CLUSTER,
    "test": TEST_CLUSTER,
}
