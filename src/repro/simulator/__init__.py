"""Discrete-event Spark execution simulator."""

from repro.simulator.config import (
    CLUSTERS,
    DEFAULT_CACHE_MB,
    LRC_CLUSTER,
    MAIN_CLUSTER,
    MEMTUNE_CLUSTER,
    TEST_CLUSTER,
)
from repro.simulator.costmodel import CostModel
from repro.simulator.engine import SimulationError, SparkSimulator, simulate
from repro.simulator.failures import (
    Autoscaler,
    ControlOutage,
    FailurePlan,
    NodeDecommission,
    NodeFailure,
    NodeJoin,
    build_churn_plan,
)
from repro.simulator.metrics import RunMetrics, StageRecord

__all__ = [
    "Autoscaler",
    "CLUSTERS",
    "ControlOutage",
    "CostModel",
    "DEFAULT_CACHE_MB",
    "FailurePlan",
    "LRC_CLUSTER",
    "MAIN_CLUSTER",
    "MEMTUNE_CLUSTER",
    "NodeDecommission",
    "NodeFailure",
    "NodeJoin",
    "RunMetrics",
    "SimulationError",
    "SparkSimulator",
    "StageRecord",
    "TEST_CLUSTER",
    "build_churn_plan",
    "simulate",
]
