"""Discrete-event Spark execution simulator."""

from repro.simulator.config import (
    CLUSTERS,
    DEFAULT_CACHE_MB,
    LRC_CLUSTER,
    MAIN_CLUSTER,
    MEMTUNE_CLUSTER,
    TEST_CLUSTER,
)
from repro.simulator.costmodel import CostModel
from repro.simulator.engine import SimulationError, SparkSimulator, simulate
from repro.simulator.failures import ControlOutage, FailurePlan, NodeFailure
from repro.simulator.metrics import RunMetrics, StageRecord

__all__ = [
    "CLUSTERS",
    "ControlOutage",
    "CostModel",
    "DEFAULT_CACHE_MB",
    "FailurePlan",
    "LRC_CLUSTER",
    "MAIN_CLUSTER",
    "MEMTUNE_CLUSTER",
    "NodeFailure",
    "RunMetrics",
    "SimulationError",
    "SparkSimulator",
    "StageRecord",
    "TEST_CLUSTER",
    "simulate",
]
