"""Result export: JSON/CSV serialization of run metrics.

Experiment pipelines that post-process results (plotting, regression
tracking) consume these instead of parsing the human-readable tables.
:func:`metrics_to_dict` / :func:`metrics_from_dict` form a *lossless*
round trip — the sweep result store (``repro.sweep.store``) relies on
it to serve cached cells as full :class:`RunMetrics` objects and to
compare parallel and serial sweep runs byte-for-byte.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Iterable
from pathlib import Path

from repro.cluster.block_manager import BlockManagerStats
from repro.control.plane import ControlPlaneStats
from repro.simulator.metrics import RunMetrics, StageRecord


def metrics_to_dict(metrics: RunMetrics) -> dict:
    """Flatten one run into JSON-serializable primitives."""
    s = metrics.stats
    return {
        "workload": metrics.workload,
        "scheme": metrics.scheme,
        "jct": metrics.jct,
        "cache_mb_per_node": metrics.cache_mb_per_node,
        "hit_ratio": metrics.hit_ratio,
        "hits": s.hits,
        "misses": s.misses,
        "accesses": s.accesses,
        "insertions": s.insertions,
        "failed_insertions": s.failed_insertions,
        "evictions": s.evictions,
        "evicted_mb": s.evicted_mb,
        "purged": s.purged,
        "prefetches_issued": s.prefetches_issued,
        "prefetches_used": s.prefetches_used,
        "prefetched_mb": s.prefetched_mb,
        "failure_lost_blocks": metrics.failure_lost_blocks,
        "num_stages_executed": metrics.num_stages_executed,
        # Per-node entries may be null: a node that served no cached
        # reads has no defined hit ratio (it is excluded from the mean
        # below rather than counted as 0.0).
        "per_node_hit_ratio": list(metrics.per_node_hit_ratio),
        "mean_node_hit_ratio": metrics.mean_node_hit_ratio,
        "control_plane": metrics.control_plane,
        # Multi-tenant identity (None / 0.0 for standalone runs).
        "app_id": metrics.app_id,
        "arrival_time": metrics.arrival_time,
        # Elastic membership (all zero / empty for static clusters).
        "nodes_joined": metrics.nodes_joined,
        "nodes_decommissioned": metrics.nodes_decommissioned,
        "rebalanced_blocks": metrics.rebalanced_blocks,
        "rebalanced_mb": metrics.rebalanced_mb,
        "decommission_dropped_blocks": metrics.decommission_dropped_blocks,
        "per_node_presence": list(metrics.per_node_presence),
        "control": {
            "sent": metrics.control.sent,
            "delivered": metrics.control.delivered,
            "dropped": metrics.control.dropped,
            "stale_orders": metrics.control.stale_orders,
            "orders_applied": metrics.control.orders_applied,
            "order_delay_total": metrics.control.order_delay_total,
        },
        "stages": [
            {
                "seq": r.seq,
                "stage_id": r.stage_id,
                "job_id": r.job_id,
                "start": r.start,
                "end": r.end,
                "num_tasks": r.num_tasks,
            }
            for r in metrics.stage_records
        ],
    }


def metrics_from_dict(data: dict) -> RunMetrics:
    """Rebuild a :class:`RunMetrics` from :func:`metrics_to_dict` output.

    Derived quantities (``accesses``, ``hit_ratio``, mean ratios) are
    recomputed from the stored counters, so a round-tripped object
    answers every query the live one did.
    """
    stats = BlockManagerStats(
        hits=data["hits"],
        misses=data["misses"],
        insertions=data["insertions"],
        failed_insertions=data["failed_insertions"],
        evictions=data["evictions"],
        purged=data["purged"],
        prefetches_issued=data["prefetches_issued"],
        prefetches_used=data["prefetches_used"],
        prefetched_mb=data["prefetched_mb"],
        evicted_mb=data["evicted_mb"],
    )
    control = ControlPlaneStats(**data.get("control", {}))
    return RunMetrics(
        scheme=data["scheme"],
        workload=data["workload"],
        jct=data["jct"],
        stats=stats,
        stage_records=[
            StageRecord(
                seq=r["seq"],
                stage_id=r["stage_id"],
                job_id=r["job_id"],
                start=r["start"],
                end=r["end"],
                num_tasks=r["num_tasks"],
            )
            for r in data["stages"]
        ],
        per_node_hit_ratio=list(data["per_node_hit_ratio"]),
        cache_mb_per_node=data["cache_mb_per_node"],
        failure_lost_blocks=data["failure_lost_blocks"],
        control_plane=data.get("control_plane", "instant"),
        control=control,
        app_id=data.get("app_id"),
        arrival_time=data.get("arrival_time", 0.0),
        nodes_joined=data.get("nodes_joined", 0),
        nodes_decommissioned=data.get("nodes_decommissioned", 0),
        rebalanced_blocks=data.get("rebalanced_blocks", 0),
        rebalanced_mb=data.get("rebalanced_mb", 0.0),
        decommission_dropped_blocks=data.get("decommission_dropped_blocks", 0),
        per_node_presence=list(data.get("per_node_presence", [])),
    )


def save_metrics_json(metrics_list: Iterable[RunMetrics], path: Path | str) -> Path:
    """Write one or more runs as a JSON array."""
    path = Path(path)
    payload = [metrics_to_dict(m) for m in metrics_list]
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_metrics_json(path: Path | str) -> list[dict]:
    """Read back what :func:`save_metrics_json` wrote."""
    return json.loads(Path(path).read_text())


def save_stage_timeline_csv(metrics: RunMetrics, path: Path | str) -> Path:
    """Per-stage timeline of one run as CSV (for Gantt-style plots)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["seq", "stage_id", "job_id", "start", "end", "duration", "num_tasks"]
        )
        for r in metrics.stage_records:
            writer.writerow(
                [r.seq, r.stage_id, r.job_id, r.start, r.end, r.duration, r.num_tasks]
            )
    return path


def render_timeline(metrics: RunMetrics, width: int = 72) -> str:
    """ASCII Gantt of the run: one bar per executed stage.

    Bars are positioned on a shared time axis; the glyph encodes the
    job (cycling a-z), so job boundaries and relative stage durations
    are visible at a glance in a terminal.
    """
    if not metrics.stage_records:
        return "(no stages executed)"
    total = metrics.jct if metrics.jct > 0 else 1.0
    lines = [
        f"timeline: {metrics.workload} under {metrics.scheme} "
        f"(JCT {metrics.jct:.2f}s, {len(metrics.stage_records)} stages)"
    ]
    for r in metrics.stage_records:
        start_col = int(r.start / total * width)
        end_col = max(int(r.end / total * width), start_col + 1)
        glyph = chr(ord("a") + r.job_id % 26)
        bar = " " * start_col + glyph * (end_col - start_col)
        lines.append(
            f"seq {r.seq:3d} job {r.job_id:3d} |{bar.ljust(width)}| "
            f"{r.duration:7.3f}s"
        )
    return "\n".join(lines)


def save_comparison_csv(metrics_list: Iterable[RunMetrics], path: Path | str) -> Path:
    """One row per run: the headline quantities across schemes."""
    path = Path(path)
    rows = [metrics_to_dict(m) for m in metrics_list]
    fields = [
        "workload", "scheme", "cache_mb_per_node", "jct", "hit_ratio",
        "hits", "misses", "evictions", "purged",
        "prefetches_issued", "prefetches_used",
    ]
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields, extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)
    return path
