"""Control-plane transports: instant (direct-call) and rpc (modeled).

A :class:`ControlPlane` carries every driver↔worker message of one
simulation run.  The engine hands each ``send`` a *deliver* callback —
the receiver-side action — and the plane decides when to invoke it:

* :class:`InstantControlPlane` — today's direct-call semantics: every
  message is delivered synchronously at its send time, in send order.
  Its delivery heap is permanently empty, so the engine's hot-loop peek
  costs one truthiness check and nothing else.
* :class:`RpcControlPlane` — delivery is delayed by the configured
  latency (defaulting to the cluster :class:`NetworkModel`'s
  latency-dominated ``message_time``) plus optional per-message jitter,
  and messages can be lost outright (config loss rate, or a
  :class:`~repro.simulator.failures.ControlOutage` window installed by
  the engine).  Jitter is also the reordering knob: two messages sent
  back-to-back may land out of order; ties on delivery time break by
  send sequence.

Receiver callbacks return ``True`` when the message turned out to be
*stale* on arrival (a purge for a resurrected RDD, a prefetch landing
after its stage, an out-of-date table broadcast); the plane aggregates
that into :class:`ControlPlaneStats` alongside message counts and the
order-to-apply delay.

Determinism: the loss/jitter RNG is seeded and consumed in send order,
and draws are skipped entirely when the corresponding knob is zero — so
an rpc plane with zero latency, jitter, and loss reproduces the instant
plane's behavior exactly.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.cluster.network import NetworkModel
from repro.control.messages import ControlMessage
from repro.trace.events import MessageDeliver, MessageDrop, MessageSend
from repro.trace.recorder import NULL_RECORDER, TraceRecorder

#: Receiver-side action; returns True when the message was stale on arrival.
DeliverFn = Callable[[ControlMessage, float], bool]

#: Control-plane transports understood by the engine.
CONTROL_PLANES = ("instant", "rpc")


@dataclass(frozen=True)
class RpcConfig:
    """Tunable knobs of the rpc control plane.

    ``latency_s``: fixed one-way message latency; ``None`` derives it
    from the cluster's :class:`NetworkModel` via ``message_time``.
    ``jitter_s``: per-message uniform extra delay in ``[0, jitter_s]``
    (also enables reordering).
    ``loss_rate``: probability a message is silently dropped.
    ``message_kb``: assumed control-message size for the derived latency.
    ``seed``: RNG seed for loss and jitter draws.
    """

    latency_s: float | None = None
    jitter_s: float = 0.0
    loss_rate: float = 0.0
    message_kb: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.latency_s is not None and self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.jitter_s < 0:
            raise ValueError("jitter_s must be non-negative")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        if self.message_kb < 0:
            raise ValueError("message_kb must be non-negative")


@dataclass
class ControlPlaneStats:
    """Control-traffic counters for one run (part of RunMetrics)."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    #: Orders (purge/prefetch) and broadcasts that were out of date on
    #: arrival, as judged by the receiver.
    stale_orders: int = 0
    #: Purge/prefetch orders that reached their worker.
    orders_applied: int = 0
    #: Sum of (apply time - send time) over applied orders.
    order_delay_total: float = 0.0

    @property
    def mean_order_delay(self) -> float:
        """Mean send→apply delay of delivered orders (0.0 with none)."""
        if not self.orders_applied:
            return 0.0
        return self.order_delay_total / self.orders_applied

    def summary(self) -> str:
        return (
            f"msgs {self.delivered}/{self.sent} delivered "
            f"({self.dropped} dropped) | "
            f"order delay {self.mean_order_delay * 1e3:.1f} ms | "
            f"stale {self.stale_orders}"
        )


class ControlPlane:
    """Transport interface the engine threads every coordination through."""

    name = "control"
    #: Whether this plane emits msg_send/msg_deliver/msg_drop trace
    #: events (instant does not: direct calls have no messages).
    trace_messages = False

    def __init__(self) -> None:
        self.stats = ControlPlaneStats()
        #: Event sink; the engine installs the live recorder per run.
        self.recorder: TraceRecorder = NULL_RECORDER
        #: Pending deliveries ``(deliver_at, send_seq, msg, deliver)``.
        #: The engine peeks this directly on its hot path; the instant
        #: plane keeps it permanently empty.
        self.heap: list[tuple[float, int, ControlMessage, DeliverFn]] = []
        #: Extra loss probability hook (failure-plan outage windows).
        self.outage_loss: Callable[[ControlMessage], float] | None = None

    def send(self, msg: ControlMessage, deliver: DeliverFn) -> None:
        """Enqueue (or directly apply) one message."""
        raise NotImplementedError

    def send_local(self, msg: ControlMessage, deliver: DeliverFn) -> None:
        """Bootstrap path: always-synchronous delivery, even under rpc.

        Initial worker registration happens before the application clock
        starts (Spark blocks on executor registration), so it bypasses
        the modeled network on every plane.
        """
        self.stats.sent += 1
        self._finish(msg, deliver, msg.sent_at)

    def pump(self, t: float) -> None:
        """Deliver every pending message due at or before ``t``."""

    def reset(self) -> None:
        """Fresh per-run state (the engine builds one plane per run)."""
        self.stats = ControlPlaneStats()
        self.heap.clear()

    # ------------------------------------------------------------------
    def _finish(self, msg: ControlMessage, deliver: DeliverFn, at: float) -> None:
        """Invoke the receiver and account the delivery."""
        stale = bool(deliver(msg, at))
        st = self.stats
        st.delivered += 1
        if msg.is_order:
            st.orders_applied += 1
            st.order_delay_total += at - msg.sent_at
        if stale:
            st.stale_orders += 1
        rec = self.recorder
        if self.trace_messages and rec.enabled:
            rec.emit(MessageDeliver(
                t=at, msg=msg.kind, node_id=msg.node_id,
                sent_at=msg.sent_at, stale=stale,
            ))


class InstantControlPlane(ControlPlane):
    """Direct-call semantics: synchronous delivery in send order."""

    name = "instant"

    def send(self, msg: ControlMessage, deliver: DeliverFn) -> None:
        self.stats.sent += 1
        self._finish(msg, deliver, msg.sent_at)


class RpcControlPlane(ControlPlane):
    """Latency/loss/jitter-modeled delivery via a time-ordered heap."""

    name = "rpc"
    trace_messages = True

    def __init__(
        self,
        config: RpcConfig | None = None,
        network: NetworkModel | None = None,
    ) -> None:
        super().__init__()
        self.config = config or RpcConfig()
        self.latency_s = (
            self.config.latency_s if self.config.latency_s is not None
            else (network or NetworkModel()).message_time(self.config.message_kb)
        )
        self._rng = random.Random(self.config.seed)
        self._seq = 0

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.config.seed)
        self._seq = 0

    def send(self, msg: ControlMessage, deliver: DeliverFn) -> None:
        st = self.stats
        st.sent += 1
        loss = self.config.loss_rate
        if self.outage_loss is not None:
            loss = max(loss, self.outage_loss(msg))
        # RNG draws only happen for nonzero knobs, so a zero-loss,
        # zero-jitter rpc plane is draw-for-draw deterministic and
        # behaviourally identical to the instant plane at latency 0.
        if loss > 0.0 and self._rng.random() < loss:
            st.dropped += 1
            rec = self.recorder
            if rec.enabled:
                rec.emit(MessageDrop(
                    t=msg.sent_at, msg=msg.kind, node_id=msg.node_id,
                    reason="outage" if loss > self.config.loss_rate else "loss",
                ))
            return
        delay = self.latency_s
        if self.config.jitter_s > 0.0:
            delay += self._rng.uniform(0.0, self.config.jitter_s)
        deliver_at = msg.sent_at + delay
        self._seq += 1
        heapq.heappush(self.heap, (deliver_at, self._seq, msg, deliver))
        rec = self.recorder
        if rec.enabled:
            rec.emit(MessageSend(
                t=msg.sent_at, msg=msg.kind, node_id=msg.node_id,
                deliver_at=deliver_at,
            ))

    def pump(self, t: float) -> None:
        heap = self.heap
        while heap and heap[0][0] <= t:
            deliver_at, _, msg, deliver = heapq.heappop(heap)
            self._finish(msg, deliver, deliver_at)


def build_control_plane(
    control_plane: str,
    config: RpcConfig | None = None,
    network: NetworkModel | None = None,
) -> ControlPlane:
    """Plane instance for a transport name (engine construction helper)."""
    if control_plane == "instant":
        return InstantControlPlane()
    if control_plane == "rpc":
        return RpcControlPlane(config=config, network=network)
    raise ValueError(
        f"control_plane must be one of {CONTROL_PLANES}, got {control_plane!r}"
    )
