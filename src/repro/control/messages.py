"""Control-plane message vocabulary: the driver↔worker wire types.

The paper's MRD is a distributed design — a driver-side MRDmanager
issuing cluster-wide orders over RPC to per-worker CacheMonitors (and
Spark's ``BlockManagerMaster`` doing the same for block bookkeeping).
Every such interaction is expressed here as one frozen dataclass; the
:mod:`repro.control.plane` implementations decide *when* (and whether)
each message is delivered.

This module is deliberately dependency-free: messages carry plain ids
and numbers, never live simulator objects, so a message captured at
send time cannot observe state changes that happen while it is in
flight — exactly the staleness the rpc plane models.

Conventions
-----------
* ``sent_at`` is the simulated send time (seconds).
* ``node_id`` is the worker endpoint: the destination for driver→worker
  messages (orders, table broadcasts) and the source for worker→driver
  messages (status reports, registration).
* ``app_id`` scopes a message to one application (multi-tenant runs
  multiplex several drivers over one cluster); single-application runs
  leave it at 0.
* ``is_order`` marks messages whose send→apply delay feeds the
  order-to-apply latency metric (purges and prefetches).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass


@dataclass(frozen=True)
class ControlMessage:
    """Base class: every message has a send timestamp and a worker endpoint."""

    kind = "control"
    #: True for driver orders whose send→apply delay is metered.
    is_order = False

    sent_at: float
    node_id: int


# ----------------------------------------------------------------------
# driver → worker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PurgeOrder(ControlMessage):
    """Drop every cached block of one dead RDD on one worker.

    The MRDmanager's "all-out purge" (Algorithm 1, lines 13–17), fanned
    out as one message per worker.  ``issued_seq`` is the active-stage
    boundary the order was decided at; a worker that receives the order
    after the RDD's distance became finite again treats it as stale and
    refuses to purge live data.
    """

    kind = "purge_order"
    is_order = True

    rdd_id: int
    issued_seq: int
    drop_disk: bool = False
    app_id: int = 0


@dataclass(frozen=True)
class PrefetchOrder(ControlMessage):
    """Fetch one disk-resident block into memory on its home worker.

    Carries the block identity by value (not a live ``Block``) so a
    delayed order describes the block as the manager believed it to be.
    An order delivered after the stage that wanted it has started counts
    as stale but is still attempted — the data may help a later stage.
    """

    kind = "prefetch_order"
    is_order = True

    rdd_id: int
    partition: int
    size_mb: float
    rdd_name: str
    issued_seq: int
    app_id: int = 0


@dataclass(frozen=True)
class StageBoundary(ControlMessage):
    """Stage-advance broadcast carrying the driver's MRD_Table snapshot.

    ``distances`` maps every tracked rdd id to its reference distance
    *after* the boundary's table advance; untracked rdds are implicitly
    infinite.  Workers replace their local distance view on delivery, so
    under rpc latency a worker evicts against the previous boundary's
    distances until the broadcast lands.  The snapshot dict is frozen by
    convention: the driver builds a fresh one per boundary and nobody
    mutates it afterwards.
    """

    kind = "stage_boundary"

    seq: int
    distances: Mapping[int, float]
    app_id: int = 0


# ----------------------------------------------------------------------
# worker → driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CacheStatusReport(ControlMessage):
    """Periodic per-worker cache status (``reportCacheStatus``).

    ``hit_ratio`` is ``None`` for a worker that has served no cached
    reads yet (idle for accounting purposes).  The driver keeps the
    newest report per worker and drops out-of-order arrivals.
    """

    kind = "cache_status"

    used_mb: float
    free_mb: float
    hit_ratio: float | None
    num_blocks: int
    app_id: int = 0


@dataclass(frozen=True)
class WorkerRegister(ControlMessage):
    """A worker (or its replacement after a failure) joined the cluster.

    On delivery the driver re-sends its current MRD_Table snapshot to
    the worker — the paper's fault-tolerance story (§4.4): the local
    reference-distance profile is lost with the worker and must be
    re-issued.
    """

    kind = "worker_register"

    reason: str = "startup"
    app_id: int = 0


@dataclass(frozen=True)
class WorkerDeregister(ControlMessage):
    """A worker left the cluster; the driver forgets its cached status."""

    kind = "worker_deregister"

    reason: str = "failure"
    app_id: int = 0


#: Wire tag -> message class (mirrors the trace-event registry idiom).
MESSAGE_TYPES: dict[str, type[ControlMessage]] = {
    cls.kind: cls
    for cls in (
        PurgeOrder,
        PrefetchOrder,
        StageBoundary,
        CacheStatusReport,
        WorkerRegister,
        WorkerDeregister,
    )
}
