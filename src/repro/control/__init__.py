"""Explicit driver↔worker control plane: typed messages + transports.

The paper's MRD (like LRC and MemTune) is a centralized design whose
driver coordinates per-worker cache monitors over RPC.  This package
makes that coordination path explicit: every MRDmanager↔CacheMonitor
and BlockManagerMaster↔BlockManager interaction is a typed message
(:mod:`repro.control.messages`) routed through a pluggable transport
(:mod:`repro.control.plane`) — ``instant`` for the historical
direct-call semantics, ``rpc`` for modeled latency, loss, jitter and
the staleness they induce.
"""

from repro.control.messages import (
    MESSAGE_TYPES,
    CacheStatusReport,
    ControlMessage,
    PrefetchOrder,
    PurgeOrder,
    StageBoundary,
    WorkerDeregister,
    WorkerRegister,
)
from repro.control.plane import (
    CONTROL_PLANES,
    ControlPlane,
    ControlPlaneStats,
    InstantControlPlane,
    RpcConfig,
    RpcControlPlane,
    build_control_plane,
)

__all__ = [
    "CONTROL_PLANES",
    "CacheStatusReport",
    "ControlMessage",
    "ControlPlane",
    "ControlPlaneStats",
    "InstantControlPlane",
    "MESSAGE_TYPES",
    "PrefetchOrder",
    "PurgeOrder",
    "RpcConfig",
    "RpcControlPlane",
    "StageBoundary",
    "WorkerDeregister",
    "WorkerRegister",
    "build_control_plane",
]
