"""Cluster-level block routing, membership, and cluster-wide orders.

The master knows which node is *home* for every block (Spark places a
cached partition on the executor that computed it; we derive placement
deterministically from the partition index through a pluggable
:mod:`~repro.cluster.placement` scheme) and fans cluster-wide purge
orders out to every node's block manager — the paper's
``BlockManagerMaster`` / ``BlockManagerMasterEndpoint`` role.

Membership is dynamic: :meth:`BlockManagerMaster.add_node` and
:meth:`~BlockManagerMaster.decommission_node` grow and shrink the
*live* set mid-run, bumping a membership ``epoch`` that plan caches
key on.  Node ids are positional forever — a decommissioned node's
slot in ``nodes``/``managers`` stays (its accumulated stats still
count), it just stops being a placement target.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.cluster.block import Block, BlockId
from repro.cluster.block_manager import BlockManager, BlockManagerStats
from repro.cluster.node import WorkerNode
from repro.cluster.placement import PlacementPolicy, build_placement
from repro.trace.events import Purge


class BlockManagerMaster:
    """Routes block operations to per-node managers."""

    def __init__(self, nodes: list[WorkerNode], placement: str = "stride") -> None:
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        self.nodes = nodes
        self.managers = [BlockManager(node) for node in nodes]
        self._alive = [True] * len(nodes)
        #: Bumped on every join/decommission; 0 = the initial membership.
        self.epoch = 0
        self.placement: PlacementPolicy = build_placement(
            placement, [node.node_id for node in nodes]
        )

    @property
    def num_nodes(self) -> int:
        """Total node slots ever created (including decommissioned ones)."""
        return len(self.nodes)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def live_node_ids(self) -> list[int]:
        """Sorted ids of nodes currently accepting placement."""
        return self.placement.live_node_ids

    def is_live(self, node_id: int) -> bool:
        return 0 <= node_id < len(self._alive) and self._alive[node_id]

    def live_nodes(self) -> list[WorkerNode]:
        nodes = self.nodes
        return [nodes[i] for i in self.placement.live_node_ids]

    def live_managers(self) -> list[BlockManager]:
        managers = self.managers
        return [managers[i] for i in self.placement.live_node_ids]

    @property
    def static_members(self) -> bool:
        """True while membership never changed and placement is the
        legacy striding — the engine's fast-path (shared plan cache)
        condition, byte-identical to the pre-elastic engine."""
        return self.epoch == 0 and self.placement.name == "stride"

    def add_node(self, node: WorkerNode) -> BlockManager:
        """A node joined (fresh id) or re-joined (a decommissioned id).

        The shared ``nodes`` list may already contain the node (under
        tenancy every application's master wraps the same list and the
        engine appends once); only this master's manager/liveness state
        is created here.  Returns the node's block manager.
        """
        node_id = node.node_id
        if node_id == len(self.nodes):
            self.nodes.append(node)
        elif node_id > len(self.nodes) or self.nodes[node_id] is not node:
            raise ValueError(
                f"join of node {node_id} does not extend the cluster "
                f"(next free id is {len(self.nodes)})"
            )
        while len(self.managers) < len(self.nodes):
            nid = len(self.managers)
            self.managers.append(BlockManager(self.nodes[nid]))
            self._alive.append(False)
        if self._alive[node_id]:
            raise ValueError(f"node {node_id} is already live")
        self._alive[node_id] = True
        self.placement.node_joined(node_id)
        self.epoch += 1
        return self.managers[node_id]

    def decommission_node(self, node_id: int) -> BlockManager:
        """Permanently remove a node from placement.

        Only the membership flips here — draining/migrating the node's
        cached blocks is the engine's job (it must price migrations and
        count what was dropped).  Returns the node's block manager.
        """
        if not self.is_live(node_id):
            raise ValueError(f"cannot decommission node {node_id}: not live")
        self.placement.node_left(node_id)  # raises on the last live node
        self._alive[node_id] = False
        self.epoch += 1
        return self.managers[node_id]

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def home_node_id(self, block_id: BlockId) -> int:
        """Home node for a block (partition → live node)."""
        return self.placement.place(block_id.partition)

    def manager_for(self, block_id: BlockId) -> BlockManager:
        return self.managers[self.placement.place(block_id.partition)]

    def task_node_id(self, partition: int) -> int:
        """Node executing task ``partition`` (locality-aligned with data)."""
        return self.placement.place(partition)

    # ------------------------------------------------------------------
    # cluster-wide orders
    # ------------------------------------------------------------------
    def purge_rdd(self, rdd_id: int, drop_disk: bool = False) -> int:
        """Evict every cached block of ``rdd_id`` across the cluster.

        This is the manager's "all-out purge" for RDDs whose reference
        distance reached infinity (Algorithm 1, lines 13–17).  Returns
        the number of blocks dropped from memory.
        """
        return sum(
            self.purge_rdd_on(mgr.node.node_id, rdd_id, drop_disk=drop_disk)
            for mgr in self.managers
        )

    def purge_rdd_on(self, node_id: int, rdd_id: int, drop_disk: bool = False) -> int:
        """Evict ``rdd_id``'s cached blocks on one node.

        The control plane addresses purge orders per worker (one
        :class:`~repro.control.messages.PurgeOrder` per node), so under
        the rpc transport different nodes may apply the same purge at
        different times.  Returns the number of blocks dropped from
        memory on this node.
        """
        mgr = self.managers[node_id]
        node_dropped = 0
        # Cancel in-flight prefetches of the purged RDD first: a block
        # only in flight (not yet memory-resident) must not re-enter
        # memory after the purge.  The memory scan below covers resident
        # blocks via purge_block's own cancellation.
        if mgr.inflight_prefetch:
            for bid in [b for b in mgr.inflight_prefetch if b.rdd_id == rdd_id]:
                mgr.cancel_inflight(bid, reason="purged")
        if mgr.node.memory.holds_rdd(rdd_id):
            for bid in [b for b in mgr.node.memory.block_ids() if b.rdd_id == rdd_id]:
                if not mgr.node.memory.is_pinned(bid) and mgr.purge_block(
                    bid, drop_disk=drop_disk
                ):
                    node_dropped += 1
        if drop_disk:
            for bid in [b for b in list(mgr.node.disk.block_ids()) if b.rdd_id == rdd_id]:
                mgr.node.disk.remove(bid)
        rec = mgr.recorder
        if rec.enabled and node_dropped:
            rec.emit(Purge(
                t=rec.now, rdd_id=rdd_id, node_id=mgr.node.node_id,
                dropped_blocks=node_dropped, drop_disk=drop_disk,
            ))
        return node_dropped

    def drop_rdd_range(self, lo: int, hi: int) -> int:
        """Silently drop every block with ``lo <= rdd_id < hi``.

        Application-teardown path of the multi-tenant layer: a finished
        app's blocks leave memory *and* disk without touching eviction
        or purge counters (its metrics were already collected).  Eviction
        policies still observe the removals through ``on_remove``.
        Returns the number of memory blocks dropped.
        """
        dropped = 0
        for mgr in self.managers:
            memory, disk = mgr.node.memory, mgr.node.disk
            if any(lo <= r < hi for r in memory.resident_rdd_ids()):
                for bid in [b for b in memory.block_ids() if lo <= b.rdd_id < hi]:
                    if not memory.is_pinned(bid):
                        memory.remove(bid)
                        dropped += 1
            for bid in [b for b in list(disk.block_ids()) if lo <= b.rdd_id < hi]:
                disk.remove(bid)
        return dropped

    def memory_contains(self, block_id: BlockId) -> bool:
        return block_id in self.manager_for(block_id).node.memory

    def disk_contains(self, block_id: BlockId) -> bool:
        return block_id in self.manager_for(block_id).node.disk

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def total_stats(self) -> BlockManagerStats:
        """Sum of all per-node counters."""
        total = BlockManagerStats()
        for mgr in self.managers:
            s = mgr.stats
            total.hits += s.hits
            total.misses += s.misses
            total.insertions += s.insertions
            total.failed_insertions += s.failed_insertions
            total.evictions += s.evictions
            total.purged += s.purged
            total.prefetches_issued += s.prefetches_issued
            total.prefetches_used += s.prefetches_used
            total.prefetched_mb += s.prefetched_mb
            total.evicted_mb += s.evicted_mb
        return total

    def cached_blocks(self) -> Iterable[Block]:
        for mgr in self.managers:
            yield from mgr.node.memory.blocks()
