"""Per-node local disk store.

Cached RDD blocks are written through to local disk on first
computation (``MEMORY_AND_DISK`` semantics, see
:class:`repro.dag.rdd.StorageLevel`), so an evicted block can later be
re-read — synchronously on a cache miss, or asynchronously by the MRD
prefetcher.  Capacity is effectively unbounded (the paper's nodes have
200 GB disks against 8 GB of RAM) but is still tracked so tests can
assert accounting invariants.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.cluster.block import Block, BlockId


class DiskStore:
    """Unordered block map with size accounting."""

    def __init__(self, capacity_mb: float = 200_000.0) -> None:
        if capacity_mb <= 0:
            raise ValueError("disk capacity must be positive")
        self.capacity_mb = float(capacity_mb)
        self._blocks: dict[BlockId, Block] = {}
        self._used_mb = 0.0

    @property
    def used_mb(self) -> float:
        return self._used_mb

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self._used_mb

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def get(self, block_id: BlockId) -> Block | None:
        return self._blocks.get(block_id)

    def block_ids(self) -> Iterator[BlockId]:
        return iter(self._blocks)

    def put(self, block: Block) -> bool:
        """Store ``block``; returns False if the disk is full."""
        if block.id in self._blocks:
            return True
        if block.size_mb > self.free_mb:
            return False
        self._blocks[block.id] = block
        self._used_mb += block.size_mb
        return True

    def remove(self, block_id: BlockId) -> Block | None:
        block = self._blocks.pop(block_id, None)
        if block is not None:
            self._used_mb -= block.size_mb
            if self._used_mb < 1e-9:
                self._used_mb = 0.0
        return block
