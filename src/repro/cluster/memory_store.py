"""Bounded per-node block cache with pluggable eviction policy.

Mirrors Spark's ``MemoryStore``: a capacity-bounded map from
:class:`BlockId` to :class:`Block`.  Inserting past capacity asks the
eviction policy for victims; blocks pinned by running tasks are never
evicted; a block larger than the whole store (or whose space cannot be
freed) is refused rather than partially cached.

Columnar hot path
-----------------
Alongside the authoritative ``dict[BlockId, Block]`` the store can
maintain *parallel numpy columns* — one row per resident block holding
the block id (rdd, partition), its size and a policy-owned sort key
(plus an auxiliary key for policies with a secondary order).  Rows are
kept dense via swap-remove, so victim selection can run as array
kernels over ``columns()`` instead of per-object walks (see
:mod:`repro.policies.vectorized` for the selection and its tie-break
contract).

The index is built *lazily*: per-row maintenance costs a handful of
numpy scalar writes on every insert and eviction, which is pure
overhead for stores that never grow past the policies' batch-engagement
thresholds.  A columnar store therefore starts with no arrays at all;
the first batch selection calls :meth:`MemoryStore.ensure_columns`,
which materializes the rows from the block dict, and incremental
maintenance takes over from there.

The columns are an acceleration index only: every decision they feed is
defined by — and tested byte-identical against — the object-based
reference path, and ``store_mode(columnar=False)`` turns them off
entirely to re-run anything on the reference spec.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, NamedTuple

import numpy as np

from repro.cluster.block import Block, BlockId

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.policies.base import EvictionPolicy

#: Initial row capacity of the columnar arrays; doubled on demand.
_INITIAL_CAPACITY = 64


class StoreColumns(NamedTuple):
    """Dense per-row views over the store's columnar arrays.

    Views are only valid until the next insert (arrays may be
    reallocated on growth) — take them fresh per selection.
    """

    rdd: np.ndarray  #: int64 — ``BlockId.rdd_id`` per row
    part: np.ndarray  #: int64 — ``BlockId.partition`` per row
    size: np.ndarray  #: float64 — ``Block.size_mb`` per row
    key: np.ndarray  #: float64 — policy-owned primary sort key
    aux: np.ndarray  #: float64 — policy-owned secondary sort key


@dataclass(slots=True)
class PutResult:
    """Outcome of a :meth:`MemoryStore.put` call."""

    stored: bool
    evicted: list[Block] = field(default_factory=list)


class MemoryStore:
    """Capacity-bounded in-memory block store for one worker node."""

    #: Process-wide default for new stores; flip via :func:`store_mode`.
    columnar_default: bool = True

    def __init__(
        self,
        capacity_mb: float,
        policy: EvictionPolicy,
        columnar: bool | None = None,
    ) -> None:
        if capacity_mb < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_mb = float(capacity_mb)
        self.policy = policy
        self._blocks: dict[BlockId, Block] = {}
        self._used_mb = 0.0
        self._pinned: dict[BlockId, int] = {}
        # Residency count per rdd id: lets purge/unpersist paths skip
        # whole-store scans for rdds with no resident blocks.
        self._rdd_count: dict[int, int] = {}
        self.columnar = (
            MemoryStore.columnar_default if columnar is None else columnar
        )
        # Arrays are allocated lazily by ensure_columns(); until a batch
        # selection engages, a columnar store does no row bookkeeping.
        self._cols_active = False
        if self.columnar:
            self._rows: dict[BlockId, int] = {}
            self._row_ids: list[BlockId] = []
        policy.bind_store(self)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def used_mb(self) -> float:
        return self._used_mb

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self._used_mb

    @property
    def free_fraction(self) -> float:
        return self.free_mb / self.capacity_mb if self.capacity_mb else 0.0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def block(self, block_id: BlockId) -> Block:
        return self._blocks[block_id]

    def block_ids(self) -> Iterator[BlockId]:
        return iter(self._blocks)

    def blocks(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    def is_pinned(self, block_id: BlockId) -> bool:
        return self._pinned.get(block_id, 0) > 0

    def holds_rdd(self, rdd_id: int) -> bool:
        """Whether any block of ``rdd_id`` is memory-resident."""
        return rdd_id in self._rdd_count

    def resident_rdd_ids(self) -> list[int]:
        """Rdd ids with at least one memory-resident block (insertion order)."""
        return list(self._rdd_count)

    # ------------------------------------------------------------------
    # columnar index
    # ------------------------------------------------------------------
    def ensure_columns(self) -> None:
        """Materialize the columnar index (idempotent).

        Called by policies when a batch selection first engages; before
        that, inserts and evictions skip row maintenance entirely, so
        stores that never cross a batch threshold never pay for the
        index.  Key/aux columns start stale — the caller's rebuild
        contract (``_keys_valid``/``_keys_dirty``/``_aux_dirty``)
        stamps them immediately after activation.
        """
        if self._cols_active:
            return
        cap = _INITIAL_CAPACITY
        while cap < len(self._blocks):
            cap *= 2
        self._col_rdd = np.zeros(cap, dtype=np.int64)
        self._col_part = np.zeros(cap, dtype=np.int64)
        self._col_size = np.zeros(cap, dtype=np.float64)
        self._col_key = np.zeros(cap, dtype=np.float64)
        self._col_aux = np.zeros(cap, dtype=np.float64)
        self._cols_active = True
        for block in self._blocks.values():
            self._row_add(block)

    def columns(self) -> StoreColumns:
        """Dense views over the live rows; invalidated by inserts.

        Only meaningful after :meth:`ensure_columns` has activated the
        index.
        """
        n = len(self._row_ids)
        return StoreColumns(
            self._col_rdd[:n],
            self._col_part[:n],
            self._col_size[:n],
            self._col_key[:n],
            self._col_aux[:n],
        )

    def row_block_ids(self) -> list[BlockId]:
        """Block id per row, aligned with :meth:`columns`."""
        return self._row_ids

    def blocked_rows(self, protect: frozenset[BlockId]) -> list[int]:
        """Row indices that must not be evicted (pinned or protected)."""
        rows = self._rows
        blocked = [r for bid in protect if (r := rows.get(bid)) is not None]
        for bid, count in self._pinned.items():
            if count > 0 and (r := rows.get(bid)) is not None:
                blocked.append(r)
        return blocked

    def set_key(self, block_id: BlockId, value: float) -> None:
        """Write the primary key column for a resident block (else no-op)."""
        row = self._rows.get(block_id)
        if row is not None:
            self._col_key[row] = value

    def set_aux(self, block_id: BlockId, value: float) -> None:
        """Write the auxiliary key column for a resident block (else no-op)."""
        row = self._rows.get(block_id)
        if row is not None:
            self._col_aux[row] = value

    def _grow(self) -> None:
        cap = self._col_rdd.shape[0] * 2
        for name in (
            "_col_rdd", "_col_part", "_col_size", "_col_key", "_col_aux",
        ):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=old.dtype)
            new[: old.shape[0]] = old
            setattr(self, name, new)

    def _row_add(self, block: Block) -> None:
        row = len(self._row_ids)
        if row == self._col_rdd.shape[0]:
            self._grow()
        bid = block.id
        self._col_rdd[row] = bid.rdd_id
        self._col_part[row] = bid.partition
        self._col_size[row] = block.size_mb
        # key/aux are deliberately left stale: both columns are only read
        # by batch selections, and every batching policy rewrites its
        # rows before the first read (the ``_keys_valid``/``_keys_dirty``
        # rebuild contracts) and maintains them per insert afterwards.
        self._rows[bid] = row
        self._row_ids.append(bid)

    def _row_del(self, block_id: BlockId) -> None:
        row = self._rows.pop(block_id)
        last = len(self._row_ids) - 1
        if row != last:
            moved = self._row_ids[last]
            self._row_ids[row] = moved
            self._rows[moved] = row
            self._col_rdd[row] = self._col_rdd[last]
            self._col_part[row] = self._col_part[last]
            self._col_size[row] = self._col_size[last]
            self._col_key[row] = self._col_key[last]
            self._col_aux[row] = self._col_aux[last]
        self._row_ids.pop()

    # ------------------------------------------------------------------
    # pinning — blocks being read by a running task must not be evicted
    # ------------------------------------------------------------------
    def pin(self, block_id: BlockId) -> None:
        if block_id not in self._blocks:
            raise KeyError(f"cannot pin absent block {block_id}")
        self._pinned[block_id] = self._pinned.get(block_id, 0) + 1

    def unpin(self, block_id: BlockId) -> None:
        count = self._pinned.get(block_id, 0)
        if count <= 0:
            raise ValueError(f"unpin without pin for {block_id}")
        if count == 1:
            del self._pinned[block_id]
        else:
            self._pinned[block_id] = count - 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def get(self, block_id: BlockId) -> Block | None:
        """Read a block (cache hit path); updates policy recency state."""
        block = self._blocks.get(block_id)
        if block is not None:
            self.policy.on_access(block)
        return block

    def put(
        self,
        block: Block,
        protect: frozenset[BlockId] = frozenset(),
        prefetch: bool = False,
    ) -> PutResult:
        """Insert ``block``, evicting per policy if needed.

        ``protect`` lists blocks that must not be chosen as victims even
        if unpinned (e.g. sibling input blocks of the inserting task).
        ``prefetch`` marks prefetch-triggered insertions, which may use
        a different victim order and admission rule (see
        :meth:`EvictionPolicy.prefetch_eviction_order`).
        Returns whether the block was stored and what was evicted.
        """
        if block.id in self._blocks:
            self.policy.on_access(block)
            return PutResult(stored=True)
        if block.size_mb > self.capacity_mb:
            return PutResult(stored=False)
        evicted: list[Block] = []
        needed = block.size_mb - self.free_mb
        if needed > 0:
            victims = self.policy.select_victims(
                self, needed, protect | {block.id}, for_prefetch=prefetch
            )
            if victims is None:
                return PutResult(stored=False, evicted=[])
            admit = (
                self.policy.admit_prefetch_over(block, victims, self)
                if prefetch
                else self.policy.admit_over(block, victims, self)
            )
            if not admit:
                return PutResult(stored=False, evicted=[])
            for victim_id in victims:
                evicted.append(self._evict(victim_id))
        bid = block.id
        self._blocks[bid] = block
        self._used_mb += block.size_mb
        self._rdd_count[bid.rdd_id] = self._rdd_count.get(bid.rdd_id, 0) + 1
        if self._cols_active:
            self._row_add(block)
        self.policy.on_insert(block)
        return PutResult(stored=True, evicted=evicted)

    def remove(self, block_id: BlockId) -> Block | None:
        """Drop a block outright (purge path); no-op if absent."""
        if block_id not in self._blocks:
            return None
        if self.is_pinned(block_id):
            raise ValueError(f"cannot remove pinned block {block_id}")
        return self._evict(block_id)

    def _evict(self, block_id: BlockId) -> Block:
        block = self._blocks.pop(block_id)
        self._used_mb -= block.size_mb
        # Guard against float drift on long runs.
        if self._used_mb < 1e-9:
            self._used_mb = 0.0
        count = self._rdd_count[block_id.rdd_id]
        if count == 1:
            del self._rdd_count[block_id.rdd_id]
        else:
            self._rdd_count[block_id.rdd_id] = count - 1
        if self._cols_active:
            self._row_del(block_id)
        self.policy.on_remove(block_id)
        return block


@contextmanager
def store_mode(columnar: bool) -> Iterator[None]:
    """Temporarily force the store mode for newly built clusters.

    Used by the benchmark and equivalence tests to run the same
    workload on the columnar hot path and the object-based reference
    path; affects only stores constructed inside the ``with`` block.
    """
    prev = MemoryStore.columnar_default
    MemoryStore.columnar_default = columnar
    try:
        yield
    finally:
        MemoryStore.columnar_default = prev
