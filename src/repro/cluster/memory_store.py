"""Bounded per-node block cache with pluggable eviction policy.

Mirrors Spark's ``MemoryStore``: a capacity-bounded map from
:class:`BlockId` to :class:`Block`.  Inserting past capacity asks the
eviction policy for victims; blocks pinned by running tasks are never
evicted; a block larger than the whole store (or whose space cannot be
freed) is refused rather than partially cached.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.cluster.block import Block, BlockId

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.policies.base import EvictionPolicy


@dataclass
class PutResult:
    """Outcome of a :meth:`MemoryStore.put` call."""

    stored: bool
    evicted: list[Block] = field(default_factory=list)


class MemoryStore:
    """Capacity-bounded in-memory block store for one worker node."""

    def __init__(self, capacity_mb: float, policy: EvictionPolicy) -> None:
        if capacity_mb < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_mb = float(capacity_mb)
        self.policy = policy
        self._blocks: dict[BlockId, Block] = {}
        self._used_mb = 0.0
        self._pinned: dict[BlockId, int] = {}

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def used_mb(self) -> float:
        return self._used_mb

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self._used_mb

    @property
    def free_fraction(self) -> float:
        return self.free_mb / self.capacity_mb if self.capacity_mb else 0.0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def block(self, block_id: BlockId) -> Block:
        return self._blocks[block_id]

    def block_ids(self) -> Iterator[BlockId]:
        return iter(self._blocks)

    def blocks(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    def is_pinned(self, block_id: BlockId) -> bool:
        return self._pinned.get(block_id, 0) > 0

    # ------------------------------------------------------------------
    # pinning — blocks being read by a running task must not be evicted
    # ------------------------------------------------------------------
    def pin(self, block_id: BlockId) -> None:
        if block_id not in self._blocks:
            raise KeyError(f"cannot pin absent block {block_id}")
        self._pinned[block_id] = self._pinned.get(block_id, 0) + 1

    def unpin(self, block_id: BlockId) -> None:
        count = self._pinned.get(block_id, 0)
        if count <= 0:
            raise ValueError(f"unpin without pin for {block_id}")
        if count == 1:
            del self._pinned[block_id]
        else:
            self._pinned[block_id] = count - 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def get(self, block_id: BlockId) -> Block | None:
        """Read a block (cache hit path); updates policy recency state."""
        block = self._blocks.get(block_id)
        if block is not None:
            self.policy.on_access(block)
        return block

    def put(
        self,
        block: Block,
        protect: frozenset[BlockId] = frozenset(),
        prefetch: bool = False,
    ) -> PutResult:
        """Insert ``block``, evicting per policy if needed.

        ``protect`` lists blocks that must not be chosen as victims even
        if unpinned (e.g. sibling input blocks of the inserting task).
        ``prefetch`` marks prefetch-triggered insertions, which may use
        a different victim order and admission rule (see
        :meth:`EvictionPolicy.prefetch_eviction_order`).
        Returns whether the block was stored and what was evicted.
        """
        if block.id in self._blocks:
            self.policy.on_access(block)
            return PutResult(stored=True)
        if block.size_mb > self.capacity_mb:
            return PutResult(stored=False)
        evicted: list[Block] = []
        needed = block.size_mb - self.free_mb
        if needed > 0:
            victims = self.policy.select_victims(
                self, needed, protect | {block.id}, for_prefetch=prefetch
            )
            if victims is None:
                return PutResult(stored=False, evicted=[])
            admit = (
                self.policy.admit_prefetch_over(block, victims, self)
                if prefetch
                else self.policy.admit_over(block, victims, self)
            )
            if not admit:
                return PutResult(stored=False, evicted=[])
            for victim_id in victims:
                evicted.append(self._evict(victim_id))
        self._blocks[block.id] = block
        self._used_mb += block.size_mb
        self.policy.on_insert(block)
        return PutResult(stored=True, evicted=evicted)

    def remove(self, block_id: BlockId) -> Block | None:
        """Drop a block outright (purge path); no-op if absent."""
        if block_id not in self._blocks:
            return None
        if self.is_pinned(block_id):
            raise ValueError(f"cannot remove pinned block {block_id}")
        return self._evict(block_id)

    def _evict(self, block_id: BlockId) -> Block:
        block = self._blocks.pop(block_id)
        self._used_mb -= block.size_mb
        # Guard against float drift on long runs.
        if self._used_mb < 1e-9:
            self._used_mb = 0.0
        self.policy.on_remove(block_id)
        return block
