"""Per-node block manager: the access/insert/evict bookkeeping layer.

Sits between the simulator and a node's stores, mirroring Spark's
``BlockManager``: write-through of cached blocks to disk, hit/miss
accounting, and eviction/prefetch counters that the metrics module
aggregates into the paper's reported quantities.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass

from repro.cluster.block import Block, BlockId
from repro.cluster.node import WorkerNode
from repro.trace.events import CacheHit, CacheMiss, Eviction, PrefetchCancel
from repro.trace.recorder import NULL_RECORDER, TraceRecorder


class AccessOutcome(enum.Enum):
    """How a cached-block read was served."""

    MEMORY_HIT = "hit"
    DISK_READ = "disk"
    MISSING = "missing"  # neither in memory nor on disk (never computed)


@dataclass
class BlockManagerStats:
    """Counters for one node, aggregated cluster-wide by the metrics."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    failed_insertions: int = 0
    evictions: int = 0
    purged: int = 0
    prefetches_issued: int = 0
    prefetches_used: int = 0
    prefetched_mb: float = 0.0
    evicted_mb: float = 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float | None:
        """Hit fraction of all accesses, or ``None`` with zero accesses.

        ``None`` (rather than 0.0) keeps idle nodes — nodes that never
        served a cached read — from dragging down cluster-average hit
        ratios computed over ``RunMetrics.per_node_hit_ratio``.
        """
        return self.hits / self.accesses if self.accesses else None


class BlockManager:
    """Block bookkeeping for one :class:`WorkerNode`."""

    def __init__(self, node: WorkerNode, recorder: TraceRecorder = NULL_RECORDER) -> None:
        self.node = node
        self.stats = BlockManagerStats()
        #: Event sink (no-op by default; the engine installs a live one
        #: when the run is recorded).
        self.recorder = recorder
        #: Block ids currently being prefetched -> completion time.
        self.inflight_prefetch: dict[BlockId, float] = {}
        #: Blocks that entered memory via prefetch and were not yet read.
        self._prefetched_unread: set[BlockId] = set()
        #: Multi-tenant hook: maps an evicted block to the manager whose
        #: stats should be charged.  On a shared cluster an insertion by
        #: one application can displace another application's blocks;
        #: the tenancy layer installs a router so each eviction lands on
        #: the *owner's* counters.  ``None`` (default) charges ``self``,
        #: as does a router returning ``None`` (unresolvable owner).
        self.eviction_router: Callable[[BlockId], "BlockManager | None"] | None = None
        #: Resolves an rdd id to its reference distance for trace events
        #: (installed by the engine per run; per-app under tenancy, so a
        #: namespaced rdd id is looked up in its *owning* app's table).
        #: ``None`` falls back to the recorder's run-global hook.
        self.distance_source: Callable[[int], float | None] | None = None

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def access(self, block_id: BlockId) -> AccessOutcome:
        """Classify (and account) a cached-block read on this node."""
        rec = self.recorder
        if self.node.memory.get(block_id) is not None:
            self.stats.hits += 1
            if block_id in self._prefetched_unread:
                self._prefetched_unread.discard(block_id)
                self.stats.prefetches_used += 1
            if rec.enabled:
                rec.emit(CacheHit(
                    t=rec.now, rdd_id=block_id.rdd_id, partition=block_id.partition,
                    node_id=self.node.node_id, source="memory",
                ))
            return AccessOutcome.MEMORY_HIT
        self.stats.misses += 1
        self.node.memory.policy.on_miss(block_id)
        on_disk = block_id in self.node.disk
        if rec.enabled:
            rec.emit(CacheMiss(
                t=rec.now, rdd_id=block_id.rdd_id, partition=block_id.partition,
                node_id=self.node.node_id, where="disk" if on_disk else "missing",
            ))
        if on_disk:
            return AccessOutcome.DISK_READ
        return AccessOutcome.MISSING

    def record_buffered_hit(self, block_id: BlockId) -> None:
        """Account a read served straight from an arriving prefetch.

        When a prefetched block is denied cache admission (it would
        displace more urgent data) but a task is waiting on the
        transfer, the bytes are consumed directly from the fetch buffer:
        the I/O was already overlapped, so this counts as a hit and as a
        used prefetch without the block entering the store.
        """
        self.stats.hits += 1
        self.stats.prefetches_used += 1
        rec = self.recorder
        if rec.enabled:
            rec.emit(CacheHit(
                t=rec.now, rdd_id=block_id.rdd_id, partition=block_id.partition,
                node_id=self.node.node_id, source="buffer",
            ))

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert_cached(self, block: Block, protect: frozenset[BlockId] = frozenset()) -> bool:
        """Cache a newly computed block (write-through to disk).

        Returns True if the block made it into memory; either way the
        disk copy exists afterwards so the block stays prefetchable.
        """
        self.node.disk.put(block)
        result = self.node.memory.put(block, protect)
        if result.stored:
            self.stats.insertions += 1
        else:
            self.stats.failed_insertions += 1
        if result.evicted:
            self._account_evictions(result.evicted, cause="insert")
        return result.stored

    def promote_from_disk(self, block: Block, protect: frozenset[BlockId] = frozenset(), prefetch: bool = False) -> bool:
        """Bring a disk-resident block back into memory.

        Used both by the synchronous miss path (read-through caching)
        and by the asynchronous prefetcher (``prefetch=True``).
        """
        if block.id not in self.node.disk:
            raise KeyError(f"{block.id} not on node {self.node.node_id} disk")
        result = self.node.memory.put(block, protect, prefetch=prefetch)
        if result.evicted:
            self._account_evictions(
                result.evicted, cause="prefetch" if prefetch else "promote"
            )
        if result.stored and prefetch:
            self._prefetched_unread.add(block.id)
            self.stats.prefetched_mb += block.size_mb
        return result.stored

    def purge_block(self, block_id: BlockId, drop_disk: bool = False) -> bool:
        """Remove a block (manager-ordered purge, not capacity pressure).

        Also cancels a matching in-flight prefetch: a purged block must
        not re-enter memory (and be counted as a used prefetch) when an
        already-issued transfer completes after the purge.

        Returns True when a memory-resident copy was actually dropped.
        """
        self.cancel_inflight(block_id, reason="purged")
        dropped = False
        if block_id in self.node.memory and not self.node.memory.is_pinned(block_id):
            removed = self.node.memory.remove(block_id)
            if removed is not None:
                self.stats.purged += 1
                self._prefetched_unread.discard(block_id)
                dropped = True
        if drop_disk:
            self.node.disk.remove(block_id)
        return dropped

    def cancel_inflight(self, block_id: BlockId, reason: str = "cancelled") -> bool:
        """Abandon an in-flight prefetch of ``block_id``, if any.

        The engine's completion-heap entries invalidate lazily (both
        cores re-check ``inflight_prefetch`` before completing), so
        dropping the dict entry is sufficient to cancel.
        """
        if self.inflight_prefetch.pop(block_id, None) is None:
            return False
        rec = self.recorder
        if rec.enabled:
            rec.emit(PrefetchCancel(
                t=rec.now, rdd_id=block_id.rdd_id, partition=block_id.partition,
                node_id=self.node.node_id, reason=reason,
            ))
        return True

    def _account_evictions(self, evicted: list[Block], cause: str = "insert") -> None:
        rec = self.recorder
        router = self.eviction_router
        for block in evicted:
            # The block was resident (and possibly prefetched-unread) on
            # *this* manager: clear the local bookkeeping first so
            # ``prefetches_used`` can never be claimed for a block that
            # is no longer in memory, however the eviction is routed.
            self._prefetched_unread.discard(block.id)
            owner = self
            if router is not None:
                routed = router(block.id)
                if routed is not None:
                    owner = routed
            owner.stats.evictions += 1
            owner.stats.evicted_mb += block.size_mb
            if owner is not self:
                # Defensive: under per-app managers the owner's view of
                # the shared node must agree that the block is gone.
                owner._prefetched_unread.discard(block.id)
            if rec.enabled:
                src = owner.distance_source
                distance = (
                    src(block.id.rdd_id)
                    if src is not None
                    else rec.lookup_distance(block.id.rdd_id)
                )
                rec.emit(Eviction(
                    t=rec.now, rdd_id=block.id.rdd_id, partition=block.id.partition,
                    node_id=self.node.node_id, size_mb=block.size_mb,
                    distance=distance, cause=cause,
                ))
