"""Worker node: executor slots + memory cache + local disk.

The node also carries the state of its *disk I/O channel*: cache-miss
reads and prefetches are serialized per node (one disk head), which is
what makes aggressive prefetching a real trade-off rather than free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.disk_store import DiskStore
from repro.cluster.memory_store import MemoryStore
from repro.cluster.network import DiskModel

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.policies.base import EvictionPolicy


class WorkerNode:
    """One simulated worker machine."""

    def __init__(
        self,
        node_id: int,
        num_slots: int,
        cache_capacity_mb: float,
        policy: EvictionPolicy,
        disk_model: DiskModel | None = None,
        disk_capacity_mb: float = 200_000.0,
    ) -> None:
        if num_slots <= 0:
            raise ValueError("a node needs at least one executor slot")
        self.node_id = node_id
        self.num_slots = num_slots
        self.memory = MemoryStore(cache_capacity_mb, policy)
        self.disk = DiskStore(disk_capacity_mb)
        self.disk_model = disk_model or DiskModel()
        #: Simulated time at which the disk channel is next free.
        self.io_free_at = 0.0
        #: Relative CPU speed of this node (heterogeneous clusters set
        #: this from ClusterConfig.heterogeneity; 1.0 = cluster nominal).
        self.cpu_factor = 1.0

    @property
    def policy(self) -> EvictionPolicy:
        return self.memory.policy

    def reserve_io(self, now: float, size_mb: float) -> float:
        """Schedule a disk read of ``size_mb``; returns completion time.

        Requests queue FIFO on the single channel: the read starts at
        ``max(now, io_free_at)`` and occupies the channel until done.
        """
        start = max(now, self.io_free_at)
        done = start + self.disk_model.read_time(size_mb)
        self.io_free_at = done
        return done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerNode({self.node_id} slots={self.num_slots} "
            f"cache={self.memory.used_mb:.0f}/{self.memory.capacity_mb:.0f}MB)"
        )
