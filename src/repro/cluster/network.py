"""Cluster interconnect and disk cost models.

Simple latency + bandwidth models; all simulator I/O times funnel
through these two classes so a single place controls the cost
assumptions (and tests can pin them).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Full-bisection network with per-transfer latency.

    ``bandwidth_mbps`` is in *megabits* per second to match how the
    paper's Table 4 specifies cluster links (500 Mbps / 450 Mbps /
    1 Gbps).
    """

    bandwidth_mbps: float = 500.0
    latency_s: float = 0.001

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")

    @property
    def bandwidth_mb_per_s(self) -> float:
        """Usable bandwidth in megabytes per second."""
        return self.bandwidth_mbps / 8.0

    def transfer_time(self, size_mb: float) -> float:
        """Seconds to move ``size_mb`` between two nodes."""
        if size_mb < 0:
            raise ValueError("size must be non-negative")
        if size_mb == 0:
            return 0.0
        return self.latency_s + size_mb / self.bandwidth_mb_per_s

    def message_time(self, size_kb: float = 1.0) -> float:
        """Seconds to deliver a control message of ``size_kb`` kilobytes.

        Control traffic (purge orders, status reports, table broadcasts)
        shares the interconnect with block fetches but is
        latency-dominated: a kilobyte-scale message must never be billed
        a block-sized bandwidth cost.  Unlike ``transfer_time``, the
        propagation latency is charged even for a zero-byte payload —
        an empty RPC still crosses the wire.
        """
        if size_kb < 0:
            raise ValueError("size must be non-negative")
        return self.latency_s + (size_kb / 1024.0) / self.bandwidth_mb_per_s


@dataclass(frozen=True)
class DiskModel:
    """Local disk with sequential bandwidth and per-request seek time."""

    bandwidth_mb_per_s: float = 120.0
    seek_s: float = 0.003

    def __post_init__(self) -> None:
        if self.bandwidth_mb_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.seek_s < 0:
            raise ValueError("seek time must be non-negative")

    def read_time(self, size_mb: float) -> float:
        """Seconds to read ``size_mb`` from local disk."""
        if size_mb < 0:
            raise ValueError("size must be non-negative")
        if size_mb == 0:
            return 0.0
        return self.seek_s + size_mb / self.bandwidth_mb_per_s

    write_time = read_time
