"""Cluster assembly: configuration → nodes + block-manager master.

:class:`ClusterConfig` captures what the paper's Table 4 specifies per
testbed (node count, vCPUs, RAM → cache size, network link) plus the
disk model; :func:`build_cluster` instantiates the worker nodes with a
fresh policy instance each.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.cluster.block_manager_master import BlockManagerMaster
from repro.cluster.network import DiskModel, NetworkModel
from repro.cluster.node import WorkerNode

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.policies.base import PolicyFactory


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and speeds of a simulated cluster."""

    name: str = "cluster"
    num_nodes: int = 4
    slots_per_node: int = 4
    cache_mb_per_node: float = 1024.0
    network: NetworkModel = field(default_factory=NetworkModel)
    disk: DiskModel = field(default_factory=DiskModel)
    disk_capacity_mb: float = 200_000.0
    #: Relative per-core speed (1.0 = reference vCPU of the main cluster).
    cpu_speed: float = 1.0
    #: Per-node CPU speed spread: node factors are drawn uniformly from
    #: ``[1 - heterogeneity, 1 + heterogeneity]`` (seeded, deterministic).
    #: 0.0 = homogeneous cluster (the default); the paper's VMs share a
    #: virtualized substrate, so mild heterogeneity is the realistic case.
    heterogeneity: float = 0.0
    heterogeneity_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.slots_per_node <= 0:
            raise ValueError("slots_per_node must be positive")
        if self.cache_mb_per_node < 0:
            raise ValueError("cache size must be non-negative")
        if not 0.0 <= self.heterogeneity < 1.0:
            raise ValueError("heterogeneity must be in [0, 1)")

    @property
    def total_cache_mb(self) -> float:
        return self.cache_mb_per_node * self.num_nodes

    @property
    def total_slots(self) -> int:
        return self.slots_per_node * self.num_nodes

    def with_cache(self, cache_mb_per_node: float) -> ClusterConfig:
        """Copy with a different per-node cache size (cache-size sweeps)."""
        return replace(self, cache_mb_per_node=cache_mb_per_node)


@dataclass
class Cluster:
    """Instantiated cluster: nodes plus the block-manager master.

    ``nodes`` is the positional node-id index and is shared with the
    master — it only ever grows (decommissioned nodes keep their slot,
    they just leave the live set).  Use :attr:`live_nodes` when
    iterating placement targets.
    """

    config: ClusterConfig
    nodes: list[WorkerNode]
    master: BlockManagerMaster

    @property
    def num_nodes(self) -> int:
        """Total node slots (including decommissioned nodes)."""
        return len(self.nodes)

    @property
    def live_nodes(self) -> list[WorkerNode]:
        return self.master.live_nodes()


def make_worker(
    config: ClusterConfig, node_id: int, policy: PolicyFactory
) -> WorkerNode:
    """Build one worker node of ``config``'s shape.

    Late joiners (elastic scale-up) use this too: their CPU factor is
    drawn from a node-id-keyed seed, so a node joining at stage 7 of
    one run is identical to the same node joining at stage 3 of
    another — membership timing never perturbs hardware identity.
    """
    node = WorkerNode(
        node_id=node_id,
        num_slots=config.slots_per_node,
        cache_capacity_mb=config.cache_mb_per_node,
        policy=policy(node_id),
        disk_model=config.disk,
        disk_capacity_mb=config.disk_capacity_mb,
    )
    if config.heterogeneity > 0:
        rng = random.Random((config.heterogeneity_seed + 1) * 1_000_003 + node_id)
        node.cpu_factor = 1.0 + rng.uniform(
            -config.heterogeneity, config.heterogeneity
        )
    return node


def build_cluster(
    config: ClusterConfig,
    policy_factory: PolicyFactory,
    rng: random.Random | None = None,
    placement: str = "stride",
) -> Cluster:
    """Create the worker nodes, one policy instance per node.

    With nonzero ``heterogeneity`` every node gets a deterministic CPU
    speed factor drawn from the configured spread (same seed → same
    cluster, so policy comparisons stay apples-to-apples).  The draws
    come from an injected, seed-threaded ``random.Random`` (DET001) —
    by default a fresh ``random.Random(config.heterogeneity_seed)``, so
    cluster assembly never touches the process-global RNG.
    """
    rng = rng if rng is not None else random.Random(config.heterogeneity_seed)
    nodes = []
    for i in range(config.num_nodes):
        factor = 1.0
        if config.heterogeneity > 0:
            factor = 1.0 + rng.uniform(-config.heterogeneity, config.heterogeneity)
        node = WorkerNode(
            node_id=i,
            num_slots=config.slots_per_node,
            cache_capacity_mb=config.cache_mb_per_node,
            policy=policy_factory(i),
            disk_model=config.disk,
            disk_capacity_mb=config.disk_capacity_mb,
        )
        node.cpu_factor = factor
        nodes.append(node)
    return Cluster(
        config=config,
        nodes=nodes,
        master=BlockManagerMaster(nodes, placement=placement),
    )
