"""Scale-down cache rebalancing: what happens to a leaving node's blocks.

When a node is decommissioned its memory-resident blocks are orphaned.
A :class:`RebalancePolicy` decides, *before* the node is torn down,
which of those blocks are worth migrating to their new homes on the
surviving nodes (priced through
:class:`~repro.cluster.network.NetworkModel` by the engine) and which
are simply dropped.  This is where the paper's global reference
distance earns its keep under churn: MRD knows which blocks will be
re-read soonest and can move exactly those, while distance-blind
policies either move nothing (``"drop"``) or rank by a proxy.

The policy only *selects*; the engine performs the migration (network
pricing, destination admission via ``insert_cached``, trace events,
metrics counters), keeping selection pure and unit-testable.
"""

from __future__ import annotations

import abc
import math
from collections.abc import Callable

from repro.cluster.block import Block

#: Rebalance policy names understood by :func:`build_rebalance`.
REBALANCES = ("drop", "migrate")

#: Resolves a block's current reference distance; ``None`` = unknown
#: (never referenced again, or the scheme does not track distances).
DistanceFn = Callable[[Block], float | None]


class RebalancePolicy(abc.ABC):
    """Chooses which of a decommissioned node's blocks to migrate."""

    name: str = "base"

    @abc.abstractmethod
    def select(self, blocks: list[Block], distance_of: DistanceFn) -> list[Block]:
        """Blocks to migrate, in migration order; the rest are dropped."""


class DropRebalance(RebalancePolicy):
    """Migrate nothing — a leaving node's cache is simply lost.

    This is what vanilla Spark decommissioning without block migration
    does, and the baseline the migrate policy is measured against.
    """

    name = "drop"

    def select(self, blocks: list[Block], distance_of: DistanceFn) -> list[Block]:
        return []


class MigrateLowestDistance(RebalancePolicy):
    """Migrate the most-urgent blocks first (lowest reference distance).

    Blocks whose distance is *infinite* (the scheme knows they will
    never be read again) are not worth the transfer and are dropped
    outright — the edge a global reference-distance table gives over
    distance-blind schemes, whose ``None`` distances rank last but are
    still migrated (blind migration).  Ties break on ``(rdd_id,
    partition)`` for a deterministic order; ``max_blocks`` caps the
    migration budget.
    """

    name = "migrate"

    def __init__(self, max_blocks: int | None = None) -> None:
        if max_blocks is not None and max_blocks < 0:
            raise ValueError("max_blocks must be non-negative")
        self.max_blocks = max_blocks

    def select(self, blocks: list[Block], distance_of: DistanceFn) -> list[Block]:
        ranked: list[tuple[float, int, int, Block]] = []
        for block in blocks:
            dist = distance_of(block)
            if dist is not None and math.isinf(dist):
                continue  # known dead: not worth the network transfer
            ranked.append((
                dist if dist is not None else math.inf,
                block.id.rdd_id,
                block.id.partition,
                block,
            ))
        ranked.sort(key=lambda item: item[:3])
        selected = [item[3] for item in ranked]
        if self.max_blocks is not None:
            selected = selected[: self.max_blocks]
        return selected


def build_rebalance(name: str, max_blocks: int | None = None) -> RebalancePolicy:
    """Construct a rebalance policy by name."""
    if name == "drop":
        return DropRebalance()
    if name == "migrate":
        return MigrateLowestDistance(max_blocks=max_blocks)
    raise ValueError(f"rebalance must be one of {REBALANCES}, got {name!r}")
