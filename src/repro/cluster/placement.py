"""Block/task placement over a dynamic node set.

Placement answers one question — *which live node owns partition p?* —
and the whole engine routes through it: cached-block homes
(:meth:`~repro.cluster.block_manager_master.BlockManagerMaster.home_node_id`),
task locality (:meth:`~BlockManagerMaster.task_node_id`) and the MRD
manager's prefetch targeting all derive from the same partition → node
mapping, so data and the tasks that read it stay co-located under any
scheme.

Two schemes:

* ``"stride"`` — the legacy modular striding, generalized to the *live*
  node set: ``live[p % len(live)]``.  With static membership this is
  byte-identical to the original ``p % num_nodes``; under churn every
  membership change silently reshuffles every partition's home (the
  known weakness this module exists to fix).
* ``"rendezvous"`` — sticky rendezvous hashing.  A partition's first
  resolution picks the live node with the highest deterministic mix
  score; the assignment is then *pinned* until that node leaves.  A
  join therefore never moves an already-placed partition (only the
  departed node's partitions re-resolve, over the then-live set) — the
  stability property the hypothesis suite asserts.

Both schemes are pure functions of the membership-event history (no
RNG, no wall clock), so runs replay identically.
"""

from __future__ import annotations

import abc
from bisect import insort

#: Placement scheme names understood by :func:`build_placement`.
PLACEMENTS = ("stride", "rendezvous")

_MASK = (1 << 64) - 1


def _mix(partition: int, node_id: int) -> int:
    """Deterministic 64-bit score of (partition, node) — splitmix-style.

    Pure integer arithmetic: stable across processes and Python
    versions (``hash()`` would not be, for composite keys).
    """
    x = (partition + 1) * 0x9E3779B97F4A7C15 & _MASK
    x ^= (node_id + 1) * 0xBF58476D1CE4E5B9 & _MASK
    x ^= x >> 31
    x = x * 0x94D049BB133111EB & _MASK
    x ^= x >> 29
    return x


class PlacementPolicy(abc.ABC):
    """Maps partition indices onto the live node set."""

    name: str = "base"

    def __init__(self, live_node_ids: list[int]) -> None:
        if not live_node_ids:
            raise ValueError("placement needs at least one live node")
        #: Sorted live node ids (kept sorted across joins/leaves).
        self._live = sorted(live_node_ids)

    @property
    def live_node_ids(self) -> list[int]:
        return list(self._live)

    @abc.abstractmethod
    def place(self, partition: int) -> int:
        """Live node id owning ``partition``."""

    def node_joined(self, node_id: int) -> None:
        if node_id in self._live:
            raise ValueError(f"node {node_id} is already live")
        insort(self._live, node_id)

    def node_left(self, node_id: int) -> None:
        if len(self._live) <= 1:
            raise ValueError("cannot remove the last live node")
        try:
            self._live.remove(node_id)
        except ValueError:
            raise ValueError(f"node {node_id} is not live") from None


class StridePlacement(PlacementPolicy):
    """Legacy modular striding over the live node set."""

    name = "stride"

    def place(self, partition: int) -> int:
        live = self._live
        return live[partition % len(live)]


class RendezvousPlacement(PlacementPolicy):
    """Sticky rendezvous hashing: joins never move placed partitions."""

    name = "rendezvous"

    def __init__(self, live_node_ids: list[int]) -> None:
        super().__init__(live_node_ids)
        #: Pinned partition → node assignments (the stickiness).
        self._assigned: dict[int, int] = {}

    def place(self, partition: int) -> int:
        node_id = self._assigned.get(partition)
        if node_id is None:
            # Highest mix score wins; ties (astronomically unlikely but
            # the contract must be total) break toward the lower id.
            node_id = max(self._live, key=lambda n: (_mix(partition, n), -n))
            self._assigned[partition] = node_id
        return node_id

    def node_left(self, node_id: int) -> None:
        super().node_left(node_id)
        # Only the departed node's partitions re-resolve (lazily, over
        # whatever the live set is when next asked).
        self._assigned = {p: n for p, n in self._assigned.items() if n != node_id}


def build_placement(name: str, live_node_ids: list[int]) -> PlacementPolicy:
    """Construct a placement scheme by name."""
    if name == "stride":
        return StridePlacement(live_node_ids)
    if name == "rendezvous":
        return RendezvousPlacement(live_node_ids)
    raise ValueError(f"placement must be one of {PLACEMENTS}, got {name!r}")
