"""Data blocks: the unit of caching, eviction and prefetching.

A block is one partition of a cached RDD, identified by
``(rdd_id, partition_index)`` — the analogue of Spark's
``RDDBlockId("rdd_<id>_<index>")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.dag.rdd import RDD


class BlockId(NamedTuple):
    """Identity of one cached partition.

    A ``NamedTuple`` rather than a frozen dataclass: block ids are the
    hottest dict/set key in the simulator (every access, insertion and
    prefetch keys on one), and tuple hashing/equality run natively
    instead of through generated ``__hash__``/``__eq__`` methods.
    """

    rdd_id: int
    partition: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"rdd_{self.rdd_id}_{self.partition}"


@dataclass(frozen=True)
class Block:
    """A materialized partition: identity + size + provenance label."""

    id: BlockId
    size_mb: float
    rdd_name: str = ""

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError("block size must be non-negative")


def blocks_of(rdd: RDD) -> list[Block]:
    """All blocks of ``rdd``, one per partition."""
    return [
        Block(id=BlockId(rdd.id, p), size_mb=rdd.partition_size_mb, rdd_name=rdd.name)
        for p in range(rdd.num_partitions)
    ]


def block_of(rdd: RDD, partition: int) -> Block:
    """The block for one partition of ``rdd``."""
    if not 0 <= partition < rdd.num_partitions:
        raise IndexError(
            f"partition {partition} out of range for {rdd.name} "
            f"({rdd.num_partitions} partitions)"
        )
    return Block(id=BlockId(rdd.id, partition), size_mb=rdd.partition_size_mb, rdd_name=rdd.name)
