"""Simulated cluster substrate: blocks, stores, nodes, block managers."""

from repro.cluster.block import Block, BlockId, block_of, blocks_of
from repro.cluster.block_manager import AccessOutcome, BlockManager, BlockManagerStats
from repro.cluster.block_manager_master import BlockManagerMaster
from repro.cluster.cluster import Cluster, ClusterConfig, build_cluster, make_worker
from repro.cluster.disk_store import DiskStore
from repro.cluster.memory_store import MemoryStore, PutResult
from repro.cluster.network import DiskModel, NetworkModel
from repro.cluster.node import WorkerNode
from repro.cluster.placement import (
    PLACEMENTS,
    PlacementPolicy,
    RendezvousPlacement,
    StridePlacement,
    build_placement,
)
from repro.cluster.rebalance import (
    REBALANCES,
    DropRebalance,
    MigrateLowestDistance,
    RebalancePolicy,
    build_rebalance,
)

__all__ = [
    "AccessOutcome",
    "Block",
    "BlockId",
    "BlockManager",
    "BlockManagerMaster",
    "BlockManagerStats",
    "Cluster",
    "ClusterConfig",
    "DiskModel",
    "DiskStore",
    "DropRebalance",
    "MemoryStore",
    "MigrateLowestDistance",
    "NetworkModel",
    "PLACEMENTS",
    "PlacementPolicy",
    "PutResult",
    "REBALANCES",
    "RebalancePolicy",
    "RendezvousPlacement",
    "StridePlacement",
    "WorkerNode",
    "block_of",
    "blocks_of",
    "build_cluster",
    "build_placement",
    "build_rebalance",
    "make_worker",
]
