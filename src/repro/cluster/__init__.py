"""Simulated cluster substrate: blocks, stores, nodes, block managers."""

from repro.cluster.block import Block, BlockId, block_of, blocks_of
from repro.cluster.block_manager import AccessOutcome, BlockManager, BlockManagerStats
from repro.cluster.block_manager_master import BlockManagerMaster
from repro.cluster.cluster import Cluster, ClusterConfig, build_cluster
from repro.cluster.disk_store import DiskStore
from repro.cluster.memory_store import MemoryStore, PutResult
from repro.cluster.network import DiskModel, NetworkModel
from repro.cluster.node import WorkerNode

__all__ = [
    "AccessOutcome",
    "Block",
    "BlockId",
    "BlockManager",
    "BlockManagerMaster",
    "BlockManagerStats",
    "Cluster",
    "ClusterConfig",
    "DiskModel",
    "DiskStore",
    "MemoryStore",
    "NetworkModel",
    "PutResult",
    "WorkerNode",
    "block_of",
    "blocks_of",
    "build_cluster",
]
