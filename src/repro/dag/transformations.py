"""Transformation API attached to :class:`repro.dag.rdd.RDD`.

Each transformation creates a child RDD with a dependency on its
parent(s) and derives the child's partition sizes / compute costs from
simple per-operation factors.  Two knobs shape the derived numbers:

* ``size_factor`` — output bytes per input byte (e.g. ``filter`` < 1).
* ``cpu_per_mb`` — CPU seconds to process one MB of input.  Workload
  builders override this to make a workload CPU-intensive (gradient
  computations) or I/O-bound (graph message passing).

The functions mutate nothing; they only append nodes to the lineage
graph held by the context.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.dag.rdd import NarrowDependency, RDD, ShuffleDependency

#: Default CPU seconds per MB of input processed by a narrow op.
DEFAULT_CPU_PER_MB = 0.004
#: Default CPU seconds per MB for shuffle-consuming (wide) ops: includes
#: deserialization and merge overheads.
DEFAULT_WIDE_CPU_PER_MB = 0.008


def _derived(
    parent: RDD,
    size_factor: float,
    cpu_per_mb: float | None,
    default_cpu: float,
) -> tuple[float, float]:
    """Return (partition_size_mb, compute_cost) for a derived RDD."""
    size = parent.partition_size_mb * size_factor
    cpu = (cpu_per_mb if cpu_per_mb is not None else default_cpu) * parent.partition_size_mb
    return size, cpu


def _narrow(
    parent: RDD,
    op: str,
    size_factor: float = 1.0,
    cpu_per_mb: float | None = None,
    name: str = "",
    num_partitions: int | None = None,
) -> RDD:
    size, cpu = _derived(parent, size_factor, cpu_per_mb, DEFAULT_CPU_PER_MB)
    return RDD(
        parent.ctx,
        deps=[NarrowDependency(parent)],
        num_partitions=num_partitions or parent.num_partitions,
        partition_size_mb=size,
        compute_cost=cpu,
        name=name,
        op=op,
    )


def _wide(
    parents: Sequence[RDD],
    op: str,
    size_factor: float = 1.0,
    cpu_per_mb: float | None = None,
    name: str = "",
    num_partitions: int | None = None,
) -> RDD:
    ctx = parents[0].ctx
    deps = [ShuffleDependency(p, shuffle_id=ctx._next_shuffle_id()) for p in parents]
    in_size = sum(p.partition_size_mb for p in parents)
    size = in_size * size_factor
    cpu = (cpu_per_mb if cpu_per_mb is not None else DEFAULT_WIDE_CPU_PER_MB) * in_size
    return RDD(
        ctx,
        deps=deps,
        num_partitions=num_partitions or parents[0].num_partitions,
        partition_size_mb=size,
        compute_cost=cpu,
        name=name,
        op=op,
    )


# ----------------------------------------------------------------------
# narrow transformations
# ----------------------------------------------------------------------
def rdd_map(self: RDD, size_factor: float = 1.0, cpu_per_mb: float | None = None, name: str = "") -> RDD:
    """Element-wise transformation; pipelined into the parent's stage."""
    return _narrow(self, "map", size_factor, cpu_per_mb, name)


def rdd_filter(self: RDD, selectivity: float = 0.5, cpu_per_mb: float | None = None, name: str = "") -> RDD:
    """Keep a ``selectivity`` fraction of the data (narrow)."""
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
    return _narrow(self, "filter", selectivity, cpu_per_mb, name)


def rdd_flat_map(self: RDD, size_factor: float = 2.0, cpu_per_mb: float | None = None, name: str = "") -> RDD:
    """One-to-many transformation (narrow), typically inflating the data."""
    return _narrow(self, "flatMap", size_factor, cpu_per_mb, name)


def rdd_map_partitions(self: RDD, size_factor: float = 1.0, cpu_per_mb: float | None = None, name: str = "") -> RDD:
    """Per-partition transformation (narrow)."""
    return _narrow(self, "mapPartitions", size_factor, cpu_per_mb, name)


def rdd_sample(self: RDD, fraction: float = 0.1, name: str = "") -> RDD:
    """Random sample of the data (narrow)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    return _narrow(self, "sample", fraction, None, name)


def rdd_union(self: RDD, other: RDD, name: str = "") -> RDD:
    """Concatenate two RDDs (narrow on both parents)."""
    size = (self.size_mb + other.size_mb) / (self.num_partitions + other.num_partitions)
    return RDD(
        self.ctx,
        deps=[NarrowDependency(self), NarrowDependency(other)],
        num_partitions=self.num_partitions + other.num_partitions,
        partition_size_mb=size,
        compute_cost=0.0,
        name=name,
        op="union",
    )


def rdd_zip_partitions(self: RDD, other: RDD, size_factor: float = 1.0, cpu_per_mb: float | None = None, name: str = "") -> RDD:
    """Combine co-partitioned RDDs partition-by-partition (narrow).

    Used by graph workloads to merge vertex state with incoming
    messages without a shuffle when both sides share a partitioner.
    """
    if other.num_partitions != self.num_partitions:
        raise ValueError(
            "zipPartitions requires equal partition counts: "
            f"{self.num_partitions} != {other.num_partitions}"
        )
    in_size = self.partition_size_mb + other.partition_size_mb
    cpu = (cpu_per_mb if cpu_per_mb is not None else DEFAULT_CPU_PER_MB) * in_size
    return RDD(
        self.ctx,
        deps=[NarrowDependency(self), NarrowDependency(other)],
        num_partitions=self.num_partitions,
        partition_size_mb=in_size * size_factor,
        compute_cost=cpu,
        name=name,
        op="zipPartitions",
    )


# ----------------------------------------------------------------------
# wide (shuffle) transformations
# ----------------------------------------------------------------------
def rdd_group_by_key(self: RDD, size_factor: float = 1.0, cpu_per_mb: float | None = None, name: str = "", num_partitions: int | None = None) -> RDD:
    """Group values by key; always shuffles the full dataset."""
    return _wide([self], "groupByKey", size_factor, cpu_per_mb, name, num_partitions)


def rdd_reduce_by_key(self: RDD, size_factor: float = 0.5, cpu_per_mb: float | None = None, name: str = "", num_partitions: int | None = None) -> RDD:
    """Combine values per key; map-side combining shrinks the output."""
    return _wide([self], "reduceByKey", size_factor, cpu_per_mb, name, num_partitions)


def rdd_sort_by_key(self: RDD, cpu_per_mb: float | None = None, name: str = "", num_partitions: int | None = None) -> RDD:
    """Range-partitioned total sort (wide)."""
    return _wide([self], "sortByKey", 1.0, cpu_per_mb, name, num_partitions)


def rdd_join(self: RDD, other: RDD, size_factor: float = 1.0, cpu_per_mb: float | None = None, name: str = "", num_partitions: int | None = None) -> RDD:
    """Inner join of two keyed RDDs (wide on both parents)."""
    return _wide([self, other], "join", size_factor, cpu_per_mb, name, num_partitions)


def rdd_cogroup(self: RDD, other: RDD, size_factor: float = 1.0, cpu_per_mb: float | None = None, name: str = "", num_partitions: int | None = None) -> RDD:
    """Cogroup two keyed RDDs (wide on both parents)."""
    return _wide([self, other], "cogroup", size_factor, cpu_per_mb, name, num_partitions)


def rdd_distinct(self: RDD, size_factor: float = 0.8, name: str = "", num_partitions: int | None = None) -> RDD:
    """Deduplicate (implemented as a shuffle, like Spark)."""
    return _wide([self], "distinct", size_factor, None, name, num_partitions)


def rdd_partition_by(self: RDD, num_partitions: int | None = None, name: str = "") -> RDD:
    """Repartition by key (wide, size-preserving)."""
    return _wide([self], "partitionBy", 1.0, None, name, num_partitions)


# ----------------------------------------------------------------------
# actions — delegate to the context so the job list is recorded there
# ----------------------------------------------------------------------
def rdd_count(self: RDD, name: str = "") -> int:
    return self.ctx.run_job(self, action="count", name=name)


def rdd_collect(self: RDD, name: str = "") -> int:
    return self.ctx.run_job(self, action="collect", name=name)


def rdd_reduce(self: RDD, name: str = "") -> int:
    return self.ctx.run_job(self, action="reduce", name=name)


def rdd_foreach(self: RDD, name: str = "") -> int:
    return self.ctx.run_job(self, action="foreach", name=name)


def rdd_save(self: RDD, name: str = "") -> int:
    return self.ctx.run_job(self, action="saveAsTextFile", name=name)


def _install() -> None:
    """Attach the transformation/action API onto :class:`RDD`.

    Kept as explicit assignment (rather than inheritance) so that
    ``rdd.py`` stays a dependency-free description of the graph
    structure while this module owns the cost model defaults.
    """
    RDD.map = rdd_map  # type: ignore[attr-defined]
    RDD.filter = rdd_filter  # type: ignore[attr-defined]
    RDD.flat_map = rdd_flat_map  # type: ignore[attr-defined]
    RDD.map_partitions = rdd_map_partitions  # type: ignore[attr-defined]
    RDD.sample = rdd_sample  # type: ignore[attr-defined]
    RDD.union = rdd_union  # type: ignore[attr-defined]
    RDD.zip_partitions = rdd_zip_partitions  # type: ignore[attr-defined]
    RDD.group_by_key = rdd_group_by_key  # type: ignore[attr-defined]
    RDD.reduce_by_key = rdd_reduce_by_key  # type: ignore[attr-defined]
    RDD.sort_by_key = rdd_sort_by_key  # type: ignore[attr-defined]
    RDD.join = rdd_join  # type: ignore[attr-defined]
    RDD.cogroup = rdd_cogroup  # type: ignore[attr-defined]
    RDD.distinct = rdd_distinct  # type: ignore[attr-defined]
    RDD.partition_by = rdd_partition_by  # type: ignore[attr-defined]
    RDD.count = rdd_count  # type: ignore[attr-defined]
    RDD.collect = rdd_collect  # type: ignore[attr-defined]
    RDD.reduce = rdd_reduce  # type: ignore[attr-defined]
    RDD.foreach = rdd_foreach  # type: ignore[attr-defined]
    RDD.save = rdd_save  # type: ignore[attr-defined]


_install()
