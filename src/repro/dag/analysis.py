"""DAG analysis: the workload statistics behind Tables 1 and 3.

Everything here is derived purely from an :class:`ApplicationDAG`:
reference-distance distributions (Table 1) and workload shape
characteristics (Table 3).  The same reference profiles feed the cache
policies, so these statistics are also the ground truth the tests use
to validate policy inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.dag_builder import ApplicationDAG


@dataclass(frozen=True)
class DistanceStats:
    """Reference-distance characteristics of one workload (Table 1 row)."""

    workload: str
    avg_job_distance: float
    max_job_distance: int
    avg_stage_distance: float
    max_stage_distance: int

    def row(self) -> tuple[str, float, int, float, int]:
        return (
            self.workload,
            round(self.avg_job_distance, 2),
            self.max_job_distance,
            round(self.avg_stage_distance, 2),
            self.max_stage_distance,
        )


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """Shape characteristics of one workload (Table 3 row)."""

    workload: str
    num_jobs: int
    num_stages: int
    num_active_stages: int
    num_rdds: int
    num_cached_rdds: int
    refs_per_rdd: float
    refs_per_stage: float
    input_mb: float
    total_stage_input_mb: float
    shuffle_read_mb: float
    shuffle_write_mb: float
    cached_working_set_mb: float

    def row(self) -> tuple:
        return (
            self.workload,
            self.num_jobs,
            self.num_stages,
            self.num_active_stages,
            self.num_rdds,
            round(self.refs_per_rdd, 2),
            round(self.refs_per_stage, 2),
        )


def distance_stats(dag: ApplicationDAG, workload: str = "") -> DistanceStats:
    """Aggregate reference-distance gaps across all cached RDDs.

    A *gap* is the distance between consecutive touches (creation or
    read) of the same cached RDD, measured both in active-stage
    executions and in jobs; the table reports the mean and max over
    all gaps of all cached RDDs.  Workloads with no cached re-reference
    (e.g. HiBench Sort) report zeros.
    """
    stage_gaps: list[int] = []
    job_gaps: list[int] = []
    for prof in dag.profiles.values():
        stage_gaps.extend(prof.stage_gaps())
        job_gaps.extend(prof.job_gaps())
    return DistanceStats(
        workload=workload or dag.app.signature,
        avg_job_distance=(sum(job_gaps) / len(job_gaps)) if job_gaps else 0.0,
        max_job_distance=max(job_gaps, default=0),
        avg_stage_distance=(sum(stage_gaps) / len(stage_gaps)) if stage_gaps else 0.0,
        max_stage_distance=max(stage_gaps, default=0),
    )


def workload_characteristics(dag: ApplicationDAG, workload: str = "") -> WorkloadCharacteristics:
    """Compute the Table-3 shape statistics for one compiled application."""
    total_reads = sum(p.reference_count for p in dag.profiles.values())
    n_cached = len(dag.profiles)
    n_active = dag.num_active_stages
    input_rdds = {r.id: r for r in dag.app.rdds if r.is_input}
    shuffle_read = sum(s.shuffle_read_mb for s in dag.active_stages)
    shuffle_write = sum(
        s.rdd.size_mb for s in dag.active_stages if s.shuffle_dep is not None
    )
    total_stage_input = sum(
        s.input_read_mb + s.shuffle_read_mb + sum(r.size_mb for r in s.cache_reads)
        for s in dag.active_stages
    )
    return WorkloadCharacteristics(
        workload=workload or dag.app.signature,
        num_jobs=dag.num_jobs,
        num_stages=dag.num_stages,
        num_active_stages=n_active,
        num_rdds=len(dag.app.rdds),
        num_cached_rdds=n_cached,
        refs_per_rdd=total_reads / n_cached if n_cached else 0.0,
        refs_per_stage=total_reads / n_active if n_active else 0.0,
        input_mb=sum(r.size_mb for r in input_rdds.values()),
        total_stage_input_mb=total_stage_input,
        shuffle_read_mb=shuffle_read,
        shuffle_write_mb=shuffle_write,
        cached_working_set_mb=sum(p.rdd.size_mb for p in dag.profiles.values()),
    )


def live_cached_profile(dag: ApplicationDAG) -> list[tuple[int, float]]:
    """Live cached MB after each active stage, as ``(seq, live_mb)``.

    Cached RDDs become live when their blocks are first computed and
    stop being live after the job that unpersists them (or at the end
    of the application).  This is the cache-pressure curve experiments
    size clusters against; :func:`peak_live_cached_mb` is its maximum.
    """
    deltas: dict[int, float] = {}
    for prof in dag.profiles.values():
        if prof.created_seq < 0:
            continue
        deltas[prof.created_seq] = deltas.get(prof.created_seq, 0.0) + prof.rdd.size_mb
        if prof.unpersist_after_job is not None:
            # Find the first active stage after the unpersisting job.
            drop_seq = None
            for stage in dag.active_stages:
                if stage.job_id > prof.unpersist_after_job:
                    drop_seq = stage.seq
                    break
            if drop_seq is not None:
                deltas[drop_seq] = deltas.get(drop_seq, 0.0) - prof.rdd.size_mb
    profile: list[tuple[int, float]] = []
    live = 0.0
    for seq in range(dag.num_active_stages):
        live += deltas.get(seq, 0.0)
        profile.append((seq, live))
    return profile


def peak_live_cached_mb(dag: ApplicationDAG) -> float:
    """Largest simultaneously-live cached footprint over the run, in MB.

    Experiments size the cluster cache relative to this peak, mirroring
    how the paper sweeps ``spark.executor.memory``.
    """
    return max((mb for _, mb in live_cached_profile(dag)), default=0.0)


def reference_trace(dag: ApplicationDAG) -> list[tuple[int, int, str]]:
    """Flat (seq, rdd_id, kind) touch trace, kind in {"write", "read"}.

    Useful for Belady-style oracle policies and for Figure-2 style
    visualizations of per-stage cache pressure.
    """
    events: list[tuple[int, int, str]] = []
    for prof in dag.profiles.values():
        if prof.created_seq >= 0:
            events.append((prof.created_seq, prof.rdd.id, "write"))
        for s in prof.read_seqs:
            events.append((s, prof.rdd.id, "read"))
    events.sort(key=lambda e: (e[0], e[1], e[2] == "read"))
    return events
