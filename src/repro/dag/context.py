"""Driver-side context: records the lineage graph and the job sequence.

A *workload program* is an ordinary Python function that receives a
:class:`SparkContext`, creates RDDs via ``ctx.text_file`` /
``ctx.parallelize``, transforms them, and triggers jobs with actions
(``rdd.count()`` etc.).  Unlike real Spark nothing executes eagerly —
running an action appends a :class:`JobSpec` so that the application's
full DAG can be compiled by :mod:`repro.dag.dag_builder` and replayed by
the simulator.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.dag.rdd import RDD

# Import for the side effect of attaching the transformation API to RDD.
from repro.dag import transformations as _transformations  # noqa: F401


@dataclass(frozen=True)
class JobSpec:
    """One recorded action: job ``job_id`` materializes ``target``."""

    job_id: int
    target: RDD
    action: str
    name: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobSpec({self.job_id} {self.action} on {self.target.name})"


@dataclass(frozen=True)
class UnpersistEvent:
    """Records that ``rdd`` was unpersisted after job ``after_job_id``.

    Graph workloads (GraphX-style) aggressively unpersist superseded
    per-iteration RDDs; MRD's eager-purge path and LRU's recency both
    interact with this, so the event stream is part of the application
    description.
    """

    after_job_id: int
    rdd: RDD


class SparkContext:
    """Records RDDs and jobs created by a workload program.

    ``first_rdd_id`` offsets every assigned rdd id: ids run contiguously
    from ``first_rdd_id`` in registration order.  The multi-tenant layer
    builds each concurrent application in its own disjoint id namespace
    (app *k* starts at ``k * RDD_NAMESPACE_STRIDE``), so block ids,
    distance tables and control messages from different applications can
    share one cluster without a translation layer.  The default of 0
    keeps single-application ids identical to what they always were.
    """

    def __init__(self, app_name: str = "app", first_rdd_id: int = 0) -> None:
        if first_rdd_id < 0:
            raise ValueError("first_rdd_id must be non-negative")
        self.app_name = app_name
        self.first_rdd_id = first_rdd_id
        self.rdds: list[RDD] = []
        self.jobs: list[JobSpec] = []
        self.unpersist_events: list[UnpersistEvent] = []
        self._shuffle_counter = 0

    # ------------------------------------------------------------------
    # registration hooks used by RDD / transformations
    # ------------------------------------------------------------------
    def _register_rdd(self, rdd: RDD) -> int:
        rdd_id = self.first_rdd_id + len(self.rdds)
        self.rdds.append(rdd)
        return rdd_id

    def rdd_by_id(self, rdd_id: int) -> RDD:
        """The RDD carrying ``rdd_id`` (ids are contiguous from
        ``first_rdd_id``, so this is an O(1) index, not a scan)."""
        index = rdd_id - self.first_rdd_id
        if not 0 <= index < len(self.rdds):
            raise KeyError(f"no rdd {rdd_id} in context {self.app_name!r}")
        return self.rdds[index]

    def _next_shuffle_id(self) -> int:
        sid = self._shuffle_counter
        self._shuffle_counter += 1
        return sid

    # ------------------------------------------------------------------
    # RDD creation
    # ------------------------------------------------------------------
    def text_file(
        self,
        name: str,
        size_mb: float,
        num_partitions: int,
        cpu_per_mb: float = 0.001,
    ) -> RDD:
        """Create an input RDD backed by distributed storage (HDFS-like).

        Reading it always costs disk I/O; ``size_mb`` is the total input
        size split evenly over ``num_partitions`` blocks.
        """
        return RDD(
            self,
            deps=[],
            num_partitions=num_partitions,
            partition_size_mb=size_mb / num_partitions,
            compute_cost=cpu_per_mb * size_mb / num_partitions,
            name=name,
            op="textFile",
            is_input=True,
        )

    def parallelize(
        self,
        name: str,
        size_mb: float,
        num_partitions: int,
    ) -> RDD:
        """Create a small driver-provided RDD (no storage read)."""
        return RDD(
            self,
            deps=[],
            num_partitions=num_partitions,
            partition_size_mb=size_mb / num_partitions,
            compute_cost=0.0,
            name=name,
            op="parallelize",
        )

    # ------------------------------------------------------------------
    # job recording
    # ------------------------------------------------------------------
    def run_job(self, target: RDD, action: str = "collect", name: str = "") -> int:
        """Record an action on ``target``; returns the new job id."""
        job_id = len(self.jobs)
        self.jobs.append(JobSpec(job_id=job_id, target=target, action=action, name=name or f"{action}-{job_id}"))
        return job_id

    def unpersist(self, rdd: RDD) -> None:
        """Unpersist ``rdd`` after the most recently recorded job."""
        rdd.unpersist()
        after = len(self.jobs) - 1
        self.unpersist_events.append(UnpersistEvent(after_job_id=after, rdd=rdd))

    # ------------------------------------------------------------------
    # summary helpers
    # ------------------------------------------------------------------
    @property
    def cached_rdds(self) -> list[RDD]:
        """RDDs that were cached at any point during the program.

        An unpersisted RDD clears its storage level, so membership is
        derived from both current levels and recorded unpersist events.
        """
        cached = {r.id for r in self.rdds if r.is_cached}
        cached.update(ev.rdd.id for ev in self.unpersist_events)
        return [self.rdd_by_id(i) for i in sorted(cached)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparkContext({self.app_name!r}, rdds={len(self.rdds)}, "
            f"jobs={len(self.jobs)})"
        )


@dataclass
class SparkApplication:
    """A complete, recorded application: the unit the simulator runs.

    ``signature`` identifies a *recurring* application across runs (the
    paper's AppProfiler stores one reference-distance profile per
    signature).
    """

    ctx: SparkContext
    signature: str = ""

    def __post_init__(self) -> None:
        if not self.signature:
            self.signature = self.ctx.app_name

    @property
    def jobs(self) -> list[JobSpec]:
        return self.ctx.jobs

    @property
    def rdds(self) -> list[RDD]:
        return self.ctx.rdds

    def rdd_by_id(self, rdd_id: int) -> RDD:
        """O(1) id lookup (see :meth:`SparkContext.rdd_by_id`)."""
        return self.ctx.rdd_by_id(rdd_id)


def record_application(
    program: Callable[[SparkContext], None],
    app_name: str = "app",
    first_rdd_id: int = 0,
) -> SparkApplication:
    """Run ``program`` against a fresh context and capture the application.

    ``first_rdd_id`` places the recording in an offset rdd-id namespace
    (used by the multi-tenant layer to keep concurrent apps disjoint).
    """
    ctx = SparkContext(app_name, first_rdd_id=first_rdd_id)
    program(ctx)
    if not ctx.jobs:
        raise ValueError(f"program {app_name!r} recorded no jobs (no action was called)")
    return SparkApplication(ctx=ctx, signature=app_name)
