"""Spark-like DAG substrate: RDD lineage, jobs/stages, reference profiles."""

from repro.dag.analysis import (
    DistanceStats,
    peak_live_cached_mb,
    WorkloadCharacteristics,
    distance_stats,
    reference_trace,
    workload_characteristics,
)
from repro.dag.context import (
    JobSpec,
    SparkApplication,
    SparkContext,
    UnpersistEvent,
    record_application,
)
from repro.dag.dag_builder import ApplicationDAG, DagBuilder, build_dag
from repro.dag.rdd import (
    Dependency,
    NarrowDependency,
    RDD,
    ShuffleDependency,
    StorageLevel,
)
from repro.dag.structures import Job, RddReferenceProfile, Stage
from repro.dag.visualize import (
    lineage_graph,
    lineage_to_dot,
    stage_graph,
    stages_to_dot,
)

__all__ = [
    "ApplicationDAG",
    "DagBuilder",
    "Dependency",
    "DistanceStats",
    "Job",
    "JobSpec",
    "NarrowDependency",
    "RDD",
    "RddReferenceProfile",
    "ShuffleDependency",
    "SparkApplication",
    "SparkContext",
    "Stage",
    "StorageLevel",
    "UnpersistEvent",
    "WorkloadCharacteristics",
    "build_dag",
    "distance_stats",
    "lineage_graph",
    "lineage_to_dot",
    "peak_live_cached_mb",
    "record_application",
    "reference_trace",
    "stage_graph",
    "stages_to_dot",
    "workload_characteristics",
]
