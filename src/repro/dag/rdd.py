"""RDD lineage abstraction.

This module models Spark's Resilient Distributed Dataset (RDD) at the
granularity the MRD paper cares about: each RDD is a node in a lineage
graph with *narrow* or *shuffle* (wide) dependencies on its parents, a
partition count, a per-partition output size and a per-partition compute
cost.  The actual data inside partitions is never materialized — the
simulator only needs the graph shape, sizes and costs.

The classes here are deliberately close to Spark's own vocabulary
(``Dependency``, ``NarrowDependency``, ``ShuffleDependency``,
``StorageLevel``) so that the stage-building algorithm in
:mod:`repro.dag.dag_builder` can mirror Spark's ``DAGScheduler``.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dag.context import SparkContext


class StorageLevel(enum.Enum):
    """Persistence level of an RDD.

    Only the distinction that matters for cache management is modelled:
    ``NONE`` RDDs are recomputed from lineage on every use, while
    ``MEMORY_AND_DISK`` RDDs have their blocks written through to local
    disk on first computation so that evicted blocks can be re-read (and
    prefetched) instead of recomputed.  This write-through behaviour is
    what makes the paper's prefetching phase well-defined.
    """

    NONE = "none"
    MEMORY_AND_DISK = "memory_and_disk"

    @property
    def is_cached(self) -> bool:
        return self is not StorageLevel.NONE


@dataclass(frozen=True)
class Dependency:
    """Edge in the lineage graph: ``child`` depends on ``parent``."""

    parent: RDD

    @property
    def is_shuffle(self) -> bool:
        return isinstance(self, ShuffleDependency)


@dataclass(frozen=True)
class NarrowDependency(Dependency):
    """One-to-one / pipelined dependency (map, filter, union, ...).

    Narrow dependencies never split stages: the child partition is
    computed from a bounded set of parent partitions on the same task.
    """


@dataclass(frozen=True)
class ShuffleDependency(Dependency):
    """Wide dependency requiring an all-to-all shuffle (groupByKey, join).

    Every shuffle dependency owns a unique ``shuffle_id``; the map-side
    stage writes shuffle files keyed by this id and reduce-side stages
    read them.  Shuffle output persists for the lifetime of the
    application, which is what enables Spark's stage skipping.
    """

    shuffle_id: int = -1


class RDD:
    """A node in the lineage graph.

    Parameters
    ----------
    ctx:
        Owning :class:`~repro.dag.context.SparkContext`.
    deps:
        Dependencies on parent RDDs (empty for input RDDs).
    num_partitions:
        Number of blocks the RDD is split into; one task per partition.
    partition_size_mb:
        Size of one materialized partition, in MB.  Drives cache
        occupancy, disk/network transfer times and shuffle volume.
    compute_cost:
        Pure CPU seconds needed to produce one partition from its
        (already available) inputs.
    name / op:
        Human-readable label and the transformation kind that created
        the RDD (``"map"``, ``"join"``, ``"textFile"``, ...).
    """

    __slots__ = (
        "ctx",
        "id",
        "name",
        "op",
        "deps",
        "num_partitions",
        "partition_size_mb",
        "compute_cost",
        "storage_level",
        "is_input",
    )

    def __init__(
        self,
        ctx: SparkContext,
        deps: Sequence[Dependency],
        num_partitions: int,
        partition_size_mb: float,
        compute_cost: float,
        name: str = "",
        op: str = "rdd",
        is_input: bool = False,
    ) -> None:
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        if partition_size_mb < 0:
            raise ValueError("partition_size_mb must be non-negative")
        if compute_cost < 0:
            raise ValueError("compute_cost must be non-negative")
        self.ctx = ctx
        self.id = ctx._register_rdd(self)
        self.deps: tuple[Dependency, ...] = tuple(deps)
        self.num_partitions = num_partitions
        self.partition_size_mb = float(partition_size_mb)
        self.compute_cost = float(compute_cost)
        self.name = name or f"{op}-{self.id}"
        self.op = op
        self.storage_level = StorageLevel.NONE
        self.is_input = is_input

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def cache(self) -> RDD:
        """Mark this RDD for caching (``MEMORY_AND_DISK`` semantics)."""
        return self.persist(StorageLevel.MEMORY_AND_DISK)

    def persist(self, level: StorageLevel = StorageLevel.MEMORY_AND_DISK) -> RDD:
        self.storage_level = level
        return self

    def unpersist(self) -> RDD:
        self.storage_level = StorageLevel.NONE
        return self

    @property
    def is_cached(self) -> bool:
        return self.storage_level.is_cached

    # ------------------------------------------------------------------
    # graph helpers
    # ------------------------------------------------------------------
    @property
    def parents(self) -> tuple[RDD, ...]:
        return tuple(d.parent for d in self.deps)

    @property
    def size_mb(self) -> float:
        """Total materialized size across all partitions."""
        return self.partition_size_mb * self.num_partitions

    def narrow_ancestors(self) -> Iterator[RDD]:
        """Yield this RDD and every ancestor reachable via narrow deps only.

        This is exactly the set of RDDs pipelined into the same stage.
        Each RDD is yielded once, in DFS preorder.
        """
        seen: set[int] = set()
        stack: list[RDD] = [self]
        while stack:
            rdd = stack.pop()
            if rdd.id in seen:
                continue
            seen.add(rdd.id)
            yield rdd
            for dep in rdd.deps:
                if isinstance(dep, NarrowDependency):
                    stack.append(dep.parent)

    def ancestors(self) -> Iterator[RDD]:
        """Yield this RDD and every ancestor (crossing shuffle edges)."""
        seen: set[int] = set()
        stack: list[RDD] = [self]
        while stack:
            rdd = stack.pop()
            if rdd.id in seen:
                continue
            seen.add(rdd.id)
            yield rdd
            stack.extend(rdd.parents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "*" if self.is_cached else ""
        return f"RDD({self.id}{flag} {self.name} p={self.num_partitions})"

    # Transformation methods are attached by repro.dag.transformations to
    # keep this module focused on the graph structure itself.


def total_size_mb(rdds: Sequence[RDD]) -> float:
    """Sum of materialized sizes of ``rdds`` (convenience for tests)."""
    return sum(r.size_mb for r in rdds)
