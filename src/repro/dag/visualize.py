"""DAG export: networkx graphs and Graphviz DOT text.

Two views, matching the paper's Figure 1:

* the **lineage graph** — RDDs as nodes, dependencies as edges (solid
  for narrow, dashed for shuffle), cached RDDs highlighted;
* the **stage graph** — stages as nodes grouped by job, skipped stages
  greyed out, annotated with their cache reads/writes.

``to_dot`` output renders with any Graphviz install; the networkx
graphs support programmatic analysis (the property tests use them for
acyclicity checks).
"""

from __future__ import annotations

import networkx as nx

from repro.dag.dag_builder import ApplicationDAG
from repro.dag.rdd import NarrowDependency, RDD


def lineage_graph(dag: ApplicationDAG) -> nx.DiGraph:
    """RDD lineage as a directed graph (parent → child edges)."""
    g = nx.DiGraph()
    for rdd in dag.app.rdds:
        g.add_node(
            rdd.id,
            name=rdd.name,
            op=rdd.op,
            cached=rdd.id in dag.profiles,
            partitions=rdd.num_partitions,
            size_mb=rdd.size_mb,
        )
    for rdd in dag.app.rdds:
        for dep in rdd.deps:
            g.add_edge(dep.parent.id, rdd.id, narrow=isinstance(dep, NarrowDependency))
    return g


def stage_graph(dag: ApplicationDAG) -> nx.DiGraph:
    """Stage dependency graph (parent stage → child stage)."""
    g = nx.DiGraph()
    for stage in dag.stages:
        g.add_node(
            stage.id,
            job=stage.job_id,
            seq=stage.seq,
            skipped=stage.skipped,
            result=stage.is_result,
            rdd=stage.rdd.name,
        )
    for stage in dag.stages:
        for pid in stage.parent_stage_ids:
            g.add_edge(pid, stage.id)
    return g


def lineage_to_dot(dag: ApplicationDAG) -> str:
    """Graphviz DOT for the lineage view (paper Figure 1 style)."""
    lines = [
        "digraph lineage {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for rdd in dag.app.rdds:
        style = 'style=filled, fillcolor="#cfe8cf"' if rdd.id in dag.profiles else ""
        label = f"{rdd.name}\\n{rdd.num_partitions}p {rdd.size_mb:.0f}MB"
        lines.append(f'  r{rdd.id} [label="{label}" {style}];')
    for rdd in dag.app.rdds:
        for dep in rdd.deps:
            style = "" if isinstance(dep, NarrowDependency) else ' [style=dashed, label="shuffle"]'
            lines.append(f"  r{dep.parent.id} -> r{rdd.id}{style};")
    lines.append("}")
    return "\n".join(lines)


def stages_to_dot(dag: ApplicationDAG, include_skipped: bool = True) -> str:
    """Graphviz DOT for the stage view, clustered by job."""
    lines = [
        "digraph stages {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for job in dag.jobs:
        lines.append(f"  subgraph cluster_job{job.id} {{")
        lines.append(f'    label="job {job.id} ({job.action})";')
        for sid in job.stage_ids:
            stage = dag.stage(sid)
            if stage.skipped and not include_skipped:
                continue
            if stage.skipped:
                attr = 'style=dashed, color=gray, fontcolor=gray'
                label = f"stage {stage.id}\\n(skipped)"
            else:
                reads = ",".join(r.name for r in stage.cache_reads) or "-"
                label = f"stage {stage.id} seq={stage.seq}\\nreads: {reads}"
                attr = 'style=filled, fillcolor="#dde8f8"' if stage.is_result else ""
            lines.append(f'    s{stage.id} [label="{label}" {attr}];')
        lines.append("  }")
    for stage in dag.stages:
        if stage.skipped and not include_skipped:
            continue
        for pid in stage.parent_stage_ids:
            if dag.stage(pid).skipped and not include_skipped:
                continue
            lines.append(f"  s{pid} -> s{stage.id};")
    lines.append("}")
    return "\n".join(lines)
