"""Compile a recorded application into jobs, stages and reference profiles.

The algorithm mirrors Spark's ``DAGScheduler``:

1. For each job (action), walk the target RDD's lineage.  Narrow
   dependencies are pipelined into the current stage; every shuffle
   dependency creates (or re-creates, for later jobs) a parent
   shuffle-map stage.  Stage ids are global and increase in creation
   order, parents before children.
2. A shuffle-map stage whose shuffle output was already materialized by
   an earlier job is marked *skipped* — it still occupies a stage id
   (so totals match what the Spark UI reports and Table 3 counts) but
   does not execute.
3. Active stages execute in id order.  For each one we compute the
   *truncated pipeline*: lineage traversal stops at cached RDDs that
   were already computed (those become cache reads) and at shuffle
   boundaries (shuffle reads).  Cached RDDs computed for the first time
   become cache writes.  This yields, per cached RDD, the exact
   sequence of stage indices at which its blocks are touched — the raw
   material for reference counts (LRC) and reference distances (MRD).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dag.context import SparkApplication
from repro.dag.rdd import NarrowDependency, RDD, ShuffleDependency
from repro.dag.structures import Job, RddReferenceProfile, Stage


@dataclass
class ApplicationDAG:
    """The fully compiled application DAG.

    ``stages`` is indexed by global stage id; ``active_stages`` is the
    execution sequence (indexed by ``seq``).  ``profiles`` maps the id
    of every cached RDD to its :class:`RddReferenceProfile`.
    """

    app: SparkApplication
    jobs: list[Job]
    stages: list[Stage]
    active_stages: list[Stage]
    profiles: dict[int, RddReferenceProfile]
    #: Engine-owned cache of compiled per-stage task plans, keyed by
    #: ``(stage seq, num_nodes)``.  Derived data only — excluded from
    #: equality and repr; reused across simulator instances so repeated
    #: runs of one DAG (benchmarks, sweeps) skip replanning.
    engine_plans: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_active_stages(self) -> int:
        return len(self.active_stages)

    @property
    def cached_rdds(self) -> list[RDD]:
        return [p.rdd for p in self.profiles.values()]

    def stage(self, stage_id: int) -> Stage:
        return self.stages[stage_id]

    def job_of_seq(self, seq: int) -> int:
        """Job id executing at active-stage index ``seq``."""
        return self.active_stages[seq].job_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ApplicationDAG({self.app.signature!r} jobs={self.num_jobs} "
            f"stages={self.num_stages} active={self.num_active_stages} "
            f"cached_rdds={len(self.profiles)})"
        )


@dataclass
class _StageSkeleton:
    """Phase-A stage record, before pipelines/costs are resolved."""

    id: int
    job_id: int
    rdd: RDD
    shuffle_dep: ShuffleDependency | None
    parent_ids: list[int]
    skipped: bool


class DagBuilder:
    """Stateful two-phase builder; use :func:`build_dag` for the one-liner."""

    def __init__(self, app: SparkApplication) -> None:
        self.app = app
        self._stages: list[Stage] = []
        self._skeletons: list[_StageSkeleton] = []
        self._materialized_shuffles: set[int] = set()
        #: cached rdd id -> seq of the stage that computed its blocks
        self._computed_cached: dict[int, int] = {}
        self._seq_counter = 0
        self._profiles: dict[int, RddReferenceProfile] = {}
        self._unpersist_after: dict[int, int] = {
            ev.rdd.id: ev.after_job_id for ev in app.ctx.unpersist_events
        }
        # Any RDD that was ever cached (including later-unpersisted ones).
        self._ever_cached: set[int] = {r.id for r in app.ctx.cached_rdds}

    # ------------------------------------------------------------------
    def build(self) -> ApplicationDAG:
        jobs: list[Job] = []
        for spec in self.app.jobs:
            first_new = len(self._skeletons)
            result_skel_id = self._build_job_skeletons(spec.target, spec.job_id)
            new_skeletons = self._skeletons[first_new:]
            self._mark_active(result_skel_id, spec.job_id)
            for skel in new_skeletons:
                self._stages.append(self._resolve_stage(skel))
            job_stage_ids = tuple(s.id for s in new_skeletons)
            active_ids = tuple(
                s.id for s in new_skeletons if not s.skipped
            )
            jobs.append(
                Job(id=spec.job_id, spec=spec, stage_ids=job_stage_ids, active_stage_ids=active_ids)
            )
        active = sorted((s for s in self._stages if s.is_active), key=lambda s: s.seq)
        for rdd_id, after in self._unpersist_after.items():
            if rdd_id in self._profiles:
                self._profiles[rdd_id].unpersist_after_job = after
        return ApplicationDAG(
            app=self.app,
            jobs=jobs,
            stages=self._stages,
            active_stages=active,
            profiles=self._profiles,
        )

    # ------------------------------------------------------------------
    # phase A: stage skeleton creation (per job)
    # ------------------------------------------------------------------
    def _build_job_skeletons(self, target: RDD, job_id: int) -> int:
        """Create this job's stage skeletons, parents before children.

        Mirrors Spark's ``createResultStage`` → ``getOrCreateParentStages``:
        the *entire* shuffle lineage gets a stage, regardless of cache
        state or earlier materialization — skipping is a submission-time
        decision made separately in :meth:`_mark_active`.  Returns the
        result skeleton's id.
        """
        created: dict[object, int] = {}  # dedupe key -> skeleton id (within job)

        def create(rdd: RDD, shuffle_dep: ShuffleDependency | None) -> int:
            key: object = shuffle_dep.shuffle_id if shuffle_dep else ("result", rdd.id)
            if key in created:
                return created[key]
            parent_deps = self._frontier_shuffle_deps(rdd, job_id, truncate=False)
            parent_ids = [create(dep.parent, dep) for dep in parent_deps]
            skel = _StageSkeleton(
                id=len(self._skeletons),
                job_id=job_id,
                rdd=rdd,
                shuffle_dep=shuffle_dep,
                parent_ids=parent_ids,
                skipped=True,  # flipped by _mark_active for submitted stages
            )
            self._skeletons.append(skel)
            created[key] = skel.id
            return skel.id

        return create(target, None)

    def _mark_active(self, result_skel_id: int, job_id: int) -> None:
        """Decide which of the job's stages actually execute.

        Mirrors ``getMissingParentStages`` at job-submission time: walk
        the lineage, stopping at cached RDDs whose blocks already exist
        and at shuffle dependencies whose map output is materialized.
        Everything reached is submitted (active); the rest shows up as
        skipped stages, exactly like the Spark UI.
        """
        by_shuffle_id: dict[int, _StageSkeleton] = {}
        stack = [result_skel_id]
        # Map this job's shuffle ids to skeletons (parents recorded on
        # every skeleton, so a simple downward walk suffices).
        walk = [result_skel_id]
        seen: set[int] = set()
        while walk:
            sid = walk.pop()
            if sid in seen:
                continue
            seen.add(sid)
            skel = self._skeletons[sid]
            if skel.shuffle_dep is not None:
                by_shuffle_id[skel.shuffle_dep.shuffle_id] = skel
            walk.extend(skel.parent_ids)

        active: set[int] = set()
        while stack:
            sid = stack.pop()
            if sid in active:
                continue
            active.add(sid)
            skel = self._skeletons[sid]
            skel.skipped = False
            for dep in self._frontier_shuffle_deps(skel.rdd, job_id, truncate=True):
                if dep.shuffle_id in self._materialized_shuffles:
                    continue  # map output exists: parent stage skipped
                parent = by_shuffle_id.get(dep.shuffle_id)
                if parent is not None:
                    stack.append(parent.id)

    def _frontier_shuffle_deps(
        self, rdd: RDD, job_id: int, truncate: bool
    ) -> list[ShuffleDependency]:
        """Shuffle deps reachable from ``rdd`` without crossing a shuffle.

        With ``truncate=True`` the traversal also stops at cached RDDs
        already computed (blocks available in memory or on disk), which
        is Spark's submission-time rule; with ``truncate=False`` it is
        the stage-*creation* rule that sees the whole lineage.
        """
        deps: list[ShuffleDependency] = []
        seen: set[int] = set()
        stack = [rdd]
        root_id = rdd.id
        while stack:
            r = stack.pop()
            if r.id in seen:
                continue
            seen.add(r.id)
            if truncate and r.id != root_id and self._is_cache_hit_assumed(r, job_id):
                continue  # lineage truncated at an available cached RDD
            for dep in r.deps:
                if isinstance(dep, ShuffleDependency):
                    deps.append(dep)
                else:
                    stack.append(dep.parent)
        # Deterministic order: by shuffle id.
        deps.sort(key=lambda d: d.shuffle_id)
        return deps

    # ------------------------------------------------------------------
    # phase B: resolve pipelines, reads/writes, costs
    # ------------------------------------------------------------------
    def _resolve_stage(self, skel: _StageSkeleton) -> Stage:
        if skel.skipped:
            return Stage(
                id=skel.id,
                job_id=skel.job_id,
                seq=-1,
                rdd=skel.rdd,
                pipeline=(),
                shuffle_dep=skel.shuffle_dep,
                parent_stage_ids=tuple(skel.parent_ids),
                skipped=True,
                num_tasks=skel.rdd.num_partitions,
                cache_reads=(),
                cache_writes=(),
                shuffle_reads=(),
                input_reads=(),
                compute_cost_per_task=0.0,
            )

        pipeline: list[RDD] = []
        cache_reads: list[RDD] = []
        cache_writes: list[RDD] = []
        shuffle_reads: list[ShuffleDependency] = []
        input_reads: list[RDD] = []
        seen: set[int] = set()
        stack = [skel.rdd]
        while stack:
            r = stack.pop()
            if r.id in seen:
                continue
            seen.add(r.id)
            if self._is_cache_hit_assumed(r, skel.job_id):
                cache_reads.append(r)
                continue
            pipeline.append(r)
            if r.is_input:
                input_reads.append(r)
            if self._is_cached_in_job(r, skel.job_id):
                cache_writes.append(r)
            for dep in r.deps:
                if isinstance(dep, ShuffleDependency):
                    shuffle_reads.append(dep)
                elif isinstance(dep, NarrowDependency):
                    stack.append(dep.parent)

        seq = self._seq_counter
        self._seq_counter += 1

        # Record reference-profile events for this stage execution.
        for r in cache_reads:
            prof = self._profile_for(r)
            prof.read_seqs.append(seq)
            prof.read_jobs.append(skel.job_id)
            prof.read_stage_ids.append(skel.id)
        for r in cache_writes:
            prof = self._profile_for(r)
            if prof.created_seq < 0:
                prof.created_seq = seq
                prof.created_job = skel.job_id
                prof.created_stage_id = skel.id
            self._computed_cached[r.id] = seq
        if skel.shuffle_dep is not None:
            self._materialized_shuffles.add(skel.shuffle_dep.shuffle_id)

        num_tasks = skel.rdd.num_partitions
        total_cpu = sum(r.compute_cost * r.num_partitions for r in pipeline)
        # Deterministic ordering for reproducibility of downstream output.
        cache_reads.sort(key=lambda r: r.id)
        cache_writes.sort(key=lambda r: r.id)
        shuffle_reads.sort(key=lambda d: d.shuffle_id)
        input_reads.sort(key=lambda r: r.id)
        return Stage(
            id=skel.id,
            job_id=skel.job_id,
            seq=seq,
            rdd=skel.rdd,
            pipeline=tuple(sorted(pipeline, key=lambda r: r.id)),
            shuffle_dep=skel.shuffle_dep,
            parent_stage_ids=tuple(skel.parent_ids),
            skipped=False,
            num_tasks=num_tasks,
            cache_reads=tuple(cache_reads),
            cache_writes=tuple(cache_writes),
            shuffle_reads=tuple(shuffle_reads),
            input_reads=tuple(input_reads),
            compute_cost_per_task=total_cpu / num_tasks if num_tasks else 0.0,
        )

    # ------------------------------------------------------------------
    # cache-visibility helpers
    # ------------------------------------------------------------------
    def _is_cached_in_job(self, rdd: RDD, job_id: int) -> bool:
        """Is ``rdd`` persisted while ``job_id`` runs?"""
        if rdd.id not in self._ever_cached:
            return False
        after = self._unpersist_after.get(rdd.id)
        return after is None or job_id <= after

    def _is_cache_hit_assumed(self, rdd: RDD, job_id: int) -> bool:
        """Cached and already computed: lineage truncates here."""
        return self._is_cached_in_job(rdd, job_id) and rdd.id in self._computed_cached

    def _profile_for(self, rdd: RDD) -> RddReferenceProfile:
        prof = self._profiles.get(rdd.id)
        if prof is None:
            prof = RddReferenceProfile(rdd=rdd)
            self._profiles[rdd.id] = prof
        return prof


def build_dag(app: SparkApplication) -> ApplicationDAG:
    """Compile ``app`` into its :class:`ApplicationDAG`."""
    return DagBuilder(app).build()
