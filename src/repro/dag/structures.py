"""Compiled DAG structures: jobs, stages and reference profiles.

These are the *output* of :mod:`repro.dag.dag_builder`: an immutable
description of how Spark would split the recorded application into
jobs and stages, which stages would be skipped (shuffle output already
materialized), and — crucially for the cache policies — at which stage
sequence numbers every cached RDD is written and read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dag.context import JobSpec
from repro.dag.rdd import RDD, ShuffleDependency


@dataclass(frozen=True)
class Stage:
    """One Spark stage.

    Attributes
    ----------
    id:
        Global stage id, assigned in creation order across all jobs
        (parents before children), mirroring Spark's ``StageID``.
    seq:
        Execution index among *active* (non-skipped) stages, or ``-1``
        for skipped stages.  Reference distances are measured in this
        coordinate: "how many stage executions until the block is
        needed".
    rdd:
        The stage's output RDD (result RDD for result stages, the
        map-side RDD for shuffle-map stages).
    pipeline:
        RDDs computed inside this stage, with traversal truncated at
        cached RDDs that an earlier stage already computed (those are
        cache *reads*, not recomputation) and at shuffle boundaries.
    cache_reads / cache_writes:
        Cached RDDs this stage reads from the block cache / computes
        and inserts into the block cache for the first time.
    shuffle_reads:
        Shuffle dependencies whose map output this stage fetches.
    input_reads:
        Input RDDs (HDFS-like) whose blocks this stage reads from
        distributed storage.
    compute_cost_per_task:
        Pure CPU seconds per task, aggregated over the pipeline.
    """

    id: int
    job_id: int
    seq: int
    rdd: RDD
    pipeline: tuple[RDD, ...]
    shuffle_dep: ShuffleDependency | None
    parent_stage_ids: tuple[int, ...]
    skipped: bool
    num_tasks: int
    cache_reads: tuple[RDD, ...]
    cache_writes: tuple[RDD, ...]
    shuffle_reads: tuple[ShuffleDependency, ...]
    input_reads: tuple[RDD, ...]
    compute_cost_per_task: float

    @property
    def is_result(self) -> bool:
        return self.shuffle_dep is None

    @property
    def is_active(self) -> bool:
        return not self.skipped

    @property
    def shuffle_read_mb(self) -> float:
        """Total shuffle bytes fetched by the whole stage, in MB."""
        return sum(dep.parent.size_mb for dep in self.shuffle_reads)

    @property
    def input_read_mb(self) -> float:
        """Total storage-input bytes read by the whole stage, in MB."""
        return sum(r.size_mb for r in self.input_reads)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "Result" if self.is_result else "ShuffleMap"
        flag = " skipped" if self.skipped else f" seq={self.seq}"
        return f"{kind}Stage({self.id} job={self.job_id} rdd={self.rdd.name}{flag})"


@dataclass(frozen=True)
class Job:
    """One Spark job: the stages created for a single action."""

    id: int
    spec: JobSpec
    stage_ids: tuple[int, ...]
    active_stage_ids: tuple[int, ...]

    @property
    def action(self) -> str:
        return self.spec.action


@dataclass
class RddReferenceProfile:
    """Where a cached RDD is written and read across the active stages.

    ``read_seqs`` are the active-stage sequence numbers at which the
    RDD's blocks are read from the cache (assuming hits); ``read_jobs``
    are the corresponding job ids.  ``created_seq`` is where the blocks
    are first computed and inserted.  ``unpersist_after_job`` is the job
    after which the application explicitly dropped the RDD (or ``None``).
    """

    rdd: RDD
    created_seq: int = -1
    created_job: int = -1
    created_stage_id: int = -1
    read_seqs: list[int] = field(default_factory=list)
    read_jobs: list[int] = field(default_factory=list)
    read_stage_ids: list[int] = field(default_factory=list)
    unpersist_after_job: int | None = None

    @property
    def reference_count(self) -> int:
        """Total number of cache reads over the whole application."""
        return len(self.read_seqs)

    def future_read_seqs(self, current_seq: int) -> list[int]:
        """Reads at or after ``current_seq`` (the policies' lookahead)."""
        return [s for s in self.read_seqs if s >= current_seq]

    def stage_gaps(self) -> list[int]:
        """Gaps between consecutive touches, in raw ``StageID`` units.

        The paper measures stage distance by subtracting Spark's global
        sequential stage IDs, which count *skipped* stages too — that is
        why highly iterative workloads (LP, SCC) report large stage
        distances.  The touch sequence includes the creation point.
        """
        touches = sorted(
            t for t in [self.created_stage_id, *self.read_stage_ids] if t >= 0
        )
        return [b - a for a, b in zip(touches, touches[1:])]

    def active_stage_gaps(self) -> list[int]:
        """Gaps between consecutive touches in active-execution order.

        This is the coordinate the MRD policy itself operates in (how
        many stage *executions* until the block is needed).
        """
        touches = sorted(
            t for t in [self.created_seq, *self.read_seqs] if t >= 0
        )
        return [b - a for a, b in zip(touches, touches[1:])]

    def job_gaps(self) -> list[int]:
        """Job-id gaps between consecutive touches.

        Touches within the same job contribute gaps of zero (two
        references inside one job are "job distance 0" in the paper's
        coarse metric — the root of the metric's weakness shown in
        Fig. 8).
        """
        touches = sorted(
            t for t in [self.created_job, *self.read_jobs] if t >= 0
        )
        return [b - a for a, b in zip(touches, touches[1:])]
