"""Command-line interface.

Examples::

    python -m repro workloads
    python -m repro run PR --scheme MRD --cache-fraction 0.5
    python -m repro run KM --scheme MRD --mode adhoc --cluster lrc
    python -m repro sweep CC --schemes LRU,LRC,MRD --fractions 0.2,0.4,0.6
    python -m repro sweep KM PR --jobs 8 --store results/   # parallel + resumable
    python -m repro sweep --spec grid.toml --jobs 8
    python -m repro experiment fig4 --jobs 8
    python -m repro experiment table1
    python -m repro bench --out BENCH_engine.json
    python -m repro bench --tasks 1500 --check-baseline BENCH_engine.json
    python -m repro lint src/repro --format json

Every command prints plain-text tables (the same renderers the
benchmark suite uses) and is fully deterministic.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro.cluster.placement import PLACEMENTS
from repro.cluster.rebalance import REBALANCES
from repro.control.plane import CONTROL_PLANES, RpcConfig
from repro.core.policy import MrdScheme
from repro.dag.analysis import distance_stats, workload_characteristics
from repro.experiments import (
    fig2,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11_12,
    fig_control_latency,
    fig_elastic,
    fig_load,
    table1,
    table3,
)
from repro.experiments.harness import (
    DEFAULT_CACHE_FRACTIONS,
    build_workload_dag,
    cache_mb_for,
    format_table,
)
from repro.policies.scheme import (
    BeladyScheme,
    CacheScheme,
    FifoScheme,
    LfuScheme,
    LrcScheme,
    LruScheme,
    MemTuneScheme,
    RandomScheme,
)
from repro.simulator.config import CLUSTERS
from repro.simulator.engine import simulate
from repro.tenancy.arbitration import ARBITRATIONS
from repro.workloads.registry import workload_names

#: name -> zero-arg scheme factory for the CLI.
SCHEME_FACTORIES: dict[str, Callable[[], CacheScheme]] = {
    "LRU": LruScheme,
    "FIFO": FifoScheme,
    "LFU": LfuScheme,
    "Random": RandomScheme,
    "LRC": LrcScheme,
    "MemTune": MemTuneScheme,
    "Belady": BeladyScheme,
    "MRD": MrdScheme,
    "MRD-evict": lambda: MrdScheme(prefetch=False),
    "MRD-prefetch": lambda: MrdScheme(evict=False),
}

_EXPERIMENTS = {
    "table1": (table1.run, table1.render),
    "table3": (table3.run, table3.render),
    "fig2": (lambda: fig2.run("CC"), lambda t: "\n\n".join(
        fig2.render(t, p) for p in ("lru", "lrc", "mrd"))),
    "fig4": (fig4.run, fig4.render),
    "fig5": (fig5.run, fig5.render),
    "fig6": (fig6.run, fig6.render),
    "fig7": (fig7.run, fig7.render),
    "fig8": (fig8.run, fig8.render),
    "fig9": (fig9.run, fig9.render),
    "fig10": (fig10.run, fig10.render),
    "fig11_12": (fig11_12.run, fig11_12.render),
    "fig_control_latency": (fig_control_latency.run, fig_control_latency.render),
    "fig_elastic": (fig_elastic.run, fig_elastic.render),
    "fig_load": (fig_load.run, fig_load.render),
}


def _make_scheme(args: argparse.Namespace) -> CacheScheme:
    name = args.scheme
    if name not in SCHEME_FACTORIES:
        raise SystemExit(
            f"unknown scheme {name!r}; choose from {sorted(SCHEME_FACTORIES)}"
        )
    if name.startswith("MRD") and (args.mode != "recurring" or args.metric != "stage"):
        return MrdScheme(
            evict=name != "MRD-prefetch",
            prefetch=name != "MRD-evict",
            mode=args.mode,
            metric=args.metric,
        )
    return SCHEME_FACTORIES[name]()


def _cluster(args: argparse.Namespace):
    try:
        return CLUSTERS[args.cluster]
    except KeyError:
        raise SystemExit(f"unknown cluster {args.cluster!r}; choose from {sorted(CLUSTERS)}") from None


def _add_control_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--control-plane", choices=CONTROL_PLANES, default="instant",
                   help="driver<->worker transport: instant (direct calls) "
                        "or rpc (modeled latency/loss)")
    p.add_argument("--control-latency", type=float, default=None,
                   help="one-way rpc message latency in seconds "
                        "(default: derived from the cluster network model)")
    p.add_argument("--control-jitter", type=float, default=0.0,
                   help="uniform extra rpc delay in [0, J] seconds "
                        "(enables reordering)")
    p.add_argument("--control-loss", type=float, default=0.0,
                   help="rpc message loss probability in [0, 1]")
    p.add_argument("--control-seed", type=int, default=0,
                   help="RNG seed for rpc loss/jitter draws")


def _control_kwargs(args: argparse.Namespace) -> dict:
    if args.control_plane != "rpc":
        return {"control_plane": args.control_plane}
    try:
        config = RpcConfig(
            latency_s=args.control_latency,
            jitter_s=args.control_jitter,
            loss_rate=args.control_loss,
            seed=args.control_seed,
        )
    except ValueError as exc:
        raise SystemExit(f"bad control-plane config: {exc}") from exc
    return {"control_plane": "rpc", "control_config": config}


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_workloads(args: argparse.Namespace) -> int:
    rows = []
    for suite in ("sparkbench", "hibench"):
        for name in workload_names(suite):
            dag = build_workload_dag(name, partitions=16)
            chars = workload_characteristics(dag, name)
            dist = distance_stats(dag, name)
            rows.append(
                (suite, name, chars.num_jobs, chars.num_stages,
                 chars.num_active_stages, round(dist.avg_stage_distance, 2))
            )
    print(format_table(
        ["Suite", "Workload", "Jobs", "Stages", "Active", "AvgStageDist"],
        rows, title="Registered workloads",
    ))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    cluster = _cluster(args)
    dag = build_workload_dag(
        args.workload, scale=args.scale, iterations=args.iterations,
        partitions=args.partitions,
    )
    cache = (
        args.cache_mb
        if args.cache_mb is not None
        else cache_mb_for(dag, args.cache_fraction, cluster)
    )
    kwargs = _control_kwargs(args)
    if args.placement != "stride":
        kwargs["placement"] = args.placement
    if args.churn_rate > 0:
        from repro.simulator.failures import build_churn_plan

        try:
            kwargs["failure_plan"] = build_churn_plan(
                len(dag.active_stages), args.churn_rate, args.churn_seed
            )
        except ValueError as exc:
            raise SystemExit(f"bad churn config: {exc}") from exc
        kwargs["rebalance"] = args.rebalance
    metrics = simulate(dag, cluster.with_cache(cache), _make_scheme(args), **kwargs)
    print(f"cluster={cluster.name} cache={cache:.1f} MB/node")
    print(metrics.summary())
    if metrics.nodes_joined or metrics.nodes_decommissioned:
        print(
            f"membership +{metrics.nodes_joined}/-{metrics.nodes_decommissioned} "
            f"migrated={metrics.rebalanced_blocks} blocks "
            f"({metrics.rebalanced_mb:.1f} MB) "
            f"dropped={metrics.decommission_dropped_blocks}"
        )
    if metrics.control_plane != "instant":
        print(f"control[{metrics.control_plane}] {metrics.control.summary()}")
    if args.verbose:
        for record in metrics.stage_records:
            print(f"  stage seq={record.seq:3d} job={record.job_id:3d} "
                  f"tasks={record.num_tasks:3d} "
                  f"[{record.start:9.3f} → {record.end:9.3f}]")
    return 0


def _sweep_grid(args: argparse.Namespace):
    from repro.sweep import GridSpec, load_grid

    if args.spec:
        try:
            grid = load_grid(args.spec)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"sweep failed: {exc}") from exc
        if args.workloads:
            grid.workloads = list(args.workloads)
        return grid
    if not args.workloads:
        raise SystemExit("sweep needs workload names (or --spec FILE)")
    try:
        return GridSpec.from_dict({
            "workloads": list(args.workloads),
            "schemes": args.schemes.split(","),
            "cache_fractions": [float(f) for f in args.fractions.split(",")],
            "clusters": [args.cluster],
            "scale": args.scale,
            "iterations": args.iterations,
            "partitions": args.partitions,
            "schedulers": args.schedulers.split(","),
        })
    except ValueError as exc:
        raise SystemExit(f"sweep failed: {exc}") from exc


def _sweep_cells_or_manifest(args: argparse.Namespace):
    """Grid cells from flags/--spec, or the store's manifest as fallback.

    Worker and dashboard modes can run with nothing but ``--store``: the
    coordinator (or first worker) publishes the grid into the store and
    everyone else reads it back.
    """
    from repro.sweep import ResultStore, load_manifest, validate_cells

    if args.workloads or args.spec:
        grid = _sweep_grid(args)
        cells = grid.cells()
        try:
            validate_cells(cells)
        except ValueError as exc:
            raise SystemExit(f"sweep failed: {exc}") from exc
        return cells
    if args.store:
        return load_manifest(ResultStore(args.store)) or None
    return None


def cmd_sweep_worker(args: argparse.Namespace) -> int:
    from repro.sweep import run_worker

    if not args.store:
        raise SystemExit("--worker needs a shared --store directory")
    cells = _sweep_cells_or_manifest(args)
    if cells is None:
        raise SystemExit(
            "--worker found no grid: give workloads/--spec, or point "
            "--store at a directory with a published grid.json"
        )

    def progress(result) -> None:
        from repro.sweep import CellSpec

        state = "ok" if result.ok else "ERROR"
        print(
            f"{CellSpec.from_dict(result.spec).label()}: {state} "
            f"({result.elapsed_s:.1f}s)",
            file=sys.stderr, flush=True,
        )

    try:
        summary = run_worker(
            args.store, cells,
            worker_id=args.worker_id,
            lease_ttl_s=args.lease_ttl,
            heartbeat_s=args.heartbeat,
            poll_s=args.poll,
            max_cells=args.max_cells,
            progress=progress,
        )
    except (TimeoutError, ValueError) as exc:
        raise SystemExit(f"worker failed: {exc}") from exc
    print(summary.stats_line())
    if summary.drained:
        print("store drained: every cell is settled")
    return 1 if summary.errors else 0


def cmd_sweep_serve(args: argparse.Namespace) -> int:
    from repro.sweep import ResultStore, serve_dashboard, write_dashboard

    if not args.store:
        raise SystemExit("--serve needs a --store directory to watch")
    store = ResultStore(args.store)
    cells = _sweep_cells_or_manifest(args)
    if args.once:
        json_path, html_path = write_dashboard(
            store, cells, out_dir=args.out,
            lease_ttl_s=args.lease_ttl, refresh_s=args.refresh,
        )
        print(f"dashboard written to {json_path} and {html_path}")
        return 0
    print(
        f"serving dashboard for {store.root} on "
        f"http://{args.host}:{args.port}/ (Ctrl-C to stop)"
    )
    serve_dashboard(
        store, cells, host=args.host, port=args.port,
        refresh_s=args.refresh, lease_ttl_s=args.lease_ttl,
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import (
        CellSpec,
        SweepProgress,
        run_cells,
        scheduler_mismatches,
        validate_cells,
    )

    if args.worker and args.serve:
        raise SystemExit("--worker and --serve are mutually exclusive")
    if args.worker:
        return cmd_sweep_worker(args)
    if args.serve:
        return cmd_sweep_serve(args)

    grid = _sweep_grid(args)
    cells = grid.cells()
    try:
        validate_cells(cells)
    except ValueError as exc:
        raise SystemExit(f"sweep failed: {exc}") from exc
    if not cells:
        print("empty grid: no workloads selected, nothing to run")
        return 0

    if args.external and not args.store:
        raise SystemExit("--workers-external needs a shared --store directory")
    try:
        outcome = run_cells(
            cells, jobs=args.jobs, store=args.store, resume=args.resume,
            progress=SweepProgress(), external=args.external,
            timeout_s=args.external_timeout,
        )
    except (TimeoutError, ValueError) as exc:
        raise SystemExit(f"sweep failed: {exc}") from exc

    multi_seed = len(grid.seeds) > 1
    multi_sched = len(grid.schedulers) > 1
    rpc = grid.control_plane == "rpc"
    headers = (
        ["Fraction", "MB/node", "Scheme"]
        + (["Seed"] if multi_seed else [])
        + (["Sched"] if multi_sched else [])
        + (["Latency"] if rpc else [])
        + ["JCT", "Hit"]
    )
    for workload in grid.workloads:
        for cluster in grid.clusters:
            rows = []
            for cell in cells:
                if cell.workload != workload or cell.cluster != cluster:
                    continue
                result = outcome.result_for(cell)
                if result.ok:
                    m = result.run_metrics()
                    mb = round(m.cache_mb_per_node, 1)
                    jct: object = round(m.jct, 3)
                    hit = f"{m.hit_ratio * 100:.0f}%"
                else:
                    mb, jct, hit = "-", "ERROR", "-"
                fraction = (
                    f"{cell.cache_fraction:g}" if cell.cache_fraction is not None
                    else f"{cell.cache_mb:g}MB"
                )
                row: list[object] = [fraction, mb, cell.scheme]
                if multi_seed:
                    row.append(cell.seed)
                if multi_sched:
                    row.append(cell.scheduler)
                if rpc:
                    latency = cell.control_latency
                    row.append("-" if latency is None else f"{latency:g}s")
                rows.append(tuple(row + [jct, hit]))
            print(format_table(
                headers, rows, title=f"Sweep: {workload} on {cluster}",
            ))
            print()
    print(outcome.stats_line())

    status = 0
    if multi_sched:
        mismatches = scheduler_mismatches(outcome)
        if mismatches:
            for mismatch in mismatches:
                print(f"SCHEDULER MISMATCH: {mismatch}")
            status = 1
        else:
            print(
                f"scheduler equivalence: {'/'.join(grid.schedulers)} "
                "agree on every cell"
            )
    failed = outcome.error_results()
    if failed:
        for result in failed:
            print(
                f"FAILED {CellSpec.from_dict(result.spec).label()}: "
                f"{result.describe_error()}"
            )
        status = 1
    return status


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.engine_bench import (
        BenchConfig,
        check_against_baseline,
        render_bench,
        run_engine_bench,
        save_payload,
    )

    try:
        config = BenchConfig(
            min_tasks=args.tasks,
            num_nodes=args.nodes,
            slots_per_node=args.slots,
            repeats=args.repeats,
        )
    except ValueError as exc:
        raise SystemExit(f"bench failed: {exc}") from exc
    profiles = tuple(args.profiles.split(",")) if args.profiles else None
    try:
        payload = run_engine_bench(
            config, include_reference=not args.no_reference, profiles=profiles
        )
    except ValueError as exc:
        raise SystemExit(f"bench failed: {exc}") from exc
    print(render_bench(payload))
    if args.output:
        save_payload(payload, args.output)
        print(f"benchmark written to {args.output}")
    if args.check_baseline:
        try:
            failures = check_against_baseline(
                payload, args.check_baseline, max_slowdown=args.max_slowdown
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(f"bench failed: cannot read baseline: {exc}") from exc
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(
            f"baseline check passed (vs {args.check_baseline}, "
            f"limit {args.max_slowdown:.2f}x)"
        )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    try:
        run, render = _EXPERIMENTS[args.name]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {args.name!r}; choose from {sorted(_EXPERIMENTS)}"
        ) from None
    # Sweep-backed drivers accept jobs/store; table drivers do not.
    params = inspect.signature(run).parameters
    kwargs = {}
    if "jobs" in params:
        kwargs["jobs"] = args.jobs
    if "store" in params:
        kwargs["store"] = args.store
    elif args.store is not None:
        raise SystemExit(f"experiment {args.name!r} does not use a result store")
    if args.external:
        if "external" not in params:
            raise SystemExit(
                f"experiment {args.name!r} cannot run on external workers"
            )
        if args.store is None:
            raise SystemExit(
                "--workers-external needs a shared --store directory"
            )
        kwargs["external"] = True
    try:
        print(render(run(**kwargs)))
    except TimeoutError as exc:
        raise SystemExit(f"experiment failed: {exc}") from exc
    return 0


def cmd_mt_run(args: argparse.Namespace) -> int:
    from repro.dag.dag_builder import build_dag
    from repro.sweep.schemes import resolve_scheme_mix
    from repro.tenancy import (
        AppSpec,
        FixedArrivals,
        MultiTenantSimulator,
        PoissonArrivals,
    )
    from repro.workloads.base import WorkloadParams
    from repro.workloads.registry import build_workload

    cluster = _cluster(args)
    try:
        schemes = resolve_scheme_mix(args.schemes.split(","))
    except ValueError as exc:
        raise SystemExit(f"mt run failed: {exc}") from exc
    num_apps = args.apps if args.apps is not None else len(args.workloads)
    if num_apps <= 0:
        raise SystemExit("mt run failed: --apps must be positive")

    params = WorkloadParams(
        scale=args.scale, iterations=args.iterations, partitions=args.partitions
    )
    # Cache sized for the largest application in the mix, so every app
    # could run alone at the requested fraction — contention then comes
    # from overlap, not from an undersized baseline.
    try:
        if args.cache_mb is not None:
            cache = args.cache_mb
        else:
            cache = max(
                cache_mb_for(
                    build_dag(build_workload(name, params)),
                    args.cache_fraction,
                    cluster,
                )
                for name in dict.fromkeys(args.workloads)
            )
    except KeyError as exc:
        raise SystemExit(f"mt run failed: {exc.args[0]}") from exc

    apps = [
        AppSpec(
            workload=args.workloads[i % len(args.workloads)],
            scheme=schemes[i % len(schemes)],
            scale=args.scale,
            iterations=args.iterations,
            partitions=args.partitions,
            seed=i,
        )
        for i in range(num_apps)
    ]
    try:
        arrivals = (
            PoissonArrivals(rate=args.rate, seed=args.seed)
            if args.arrival == "poisson"
            else FixedArrivals(interval=args.interval)
        )
        metrics = MultiTenantSimulator(
            apps,
            cluster.with_cache(cache),
            arrivals=arrivals,
            arbitration=args.arbitration,
            **_control_kwargs(args),
        ).run()
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"mt run failed: {exc.args[0]}") from exc
    print(
        f"cluster={cluster.name} cache={cache:.1f} MB/node "
        f"arbitration={args.arbitration} arrivals={arrivals.name}"
    )
    print(metrics.summary())
    rows = [
        (
            m.app_id, spec.workload, m.scheme,
            round(m.arrival_time, 2), round(m.jct, 2),
            f"{m.hit_ratio * 100:.0f}%", m.stats.evictions,
        )
        for spec, m in zip(apps, metrics.apps)
    ]
    print(format_table(
        ["App", "Workload", "Scheme", "Arrival", "JCT", "Hit", "Evictions"],
        rows,
    ))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


# ----------------------------------------------------------------------
# trace subcommands
# ----------------------------------------------------------------------
def cmd_trace_ingest(args: argparse.Namespace) -> int:
    from repro.trace import EventLogError, ingest_eventlog, profile_from_trace

    try:
        trace = ingest_eventlog(args.eventlog)
    except (EventLogError, OSError) as exc:
        raise SystemExit(f"ingest failed: {exc}") from exc
    print(trace.summary())
    for warning in trace.warnings:
        print(f"warning: {warning}")
    if args.profile_store:
        from pathlib import Path

        from repro.core.app_profiler import ProfileStore

        store = ProfileStore(path=Path(args.profile_store))
        profile = profile_from_trace(trace, store=store)
        print(
            f"profile     {profile.signature!r}: {len(profile.references)} "
            f"references -> {args.profile_store}"
        )
    return 0


def _print_event_summary(recorder) -> None:
    """``recorded N events`` plus the per-group kind pivot."""
    from repro.trace.replay import summarize_events

    print(f"recorded {len(recorder)} events")
    for group, kinds in summarize_events(recorder.events).items():
        counts = " ".join(f"{kind}={count}" for kind, count in kinds.items())
        print(f"  {group:<10} {counts}")


def _write_trace_outputs(recorder, args: argparse.Namespace) -> None:
    if args.output:
        recorder.to_jsonl(args.output)
        print(f"trace written to {args.output} ({len(recorder)} events)")
    if args.chrome:
        recorder.to_chrome(args.chrome)
        print(f"chrome trace written to {args.chrome}")


def cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.dag.dag_builder import build_dag
    from repro.trace import TraceRecorder
    from repro.trace.replay import build_scheme
    from repro.workloads.registry import build_workload

    kwargs = {
        k: getattr(args, k)
        for k in ("scale", "iterations", "partitions")
        if getattr(args, k) is not None
    }
    try:
        dag = build_dag(build_workload(args.workload, **kwargs))
    except KeyError as exc:
        raise SystemExit(f"record failed: {exc.args[0]}") from exc
    args.cluster = args.cluster or "main"
    cluster = _cluster(args)
    try:
        scheme = build_scheme(args.scheme)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    cache = (
        args.cache_mb
        if args.cache_mb is not None
        else cache_mb_for(dag, args.cache_fraction, cluster)
    )
    recorder = TraceRecorder(meta={
        "workload": args.workload,
        **kwargs,
        "scheme": scheme.name,
        "cluster": cluster.name,
        "cache_mb": cache,
        "source": "recorded",
    })
    metrics = simulate(
        dag, cluster.with_cache(cache), scheme, recorder=recorder,
        **_control_kwargs(args),
    )
    print(metrics.summary())
    if metrics.control_plane != "instant":
        print(f"control[{metrics.control_plane}] {metrics.control.summary()}")
    _print_event_summary(recorder)
    _write_trace_outputs(recorder, args)
    return 0


def cmd_trace_replay(args: argparse.Namespace) -> int:
    from repro.trace import EventLogError, TraceFormatError
    from repro.trace.replay import replay

    store = None
    if args.profile_store:
        from pathlib import Path

        from repro.core.app_profiler import ProfileStore

        store = ProfileStore(path=Path(args.profile_store))
    try:
        result = replay(
            args.trace,
            scheme=args.scheme,
            cluster=args.cluster,
            cache_mb=args.cache_mb,
            cache_fraction=args.cache_fraction,
            profile_store=store,
        )
    except (EventLogError, TraceFormatError, ValueError, OSError) as exc:
        raise SystemExit(f"replay failed: {exc}") from exc
    print(f"source={result.source} scheme={result.scheme} "
          f"cache={result.cache_mb_per_node:.1f} MB/node")
    print(result.metrics.summary())
    _print_event_summary(result.recorder)
    _write_trace_outputs(result.recorder, args)
    return 0


def cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.trace import TraceFormatError
    from repro.trace.replay import diff_trace_files

    try:
        diff = diff_trace_files(args.left, args.right)
    except (TraceFormatError, OSError) as exc:
        raise SystemExit(f"diff failed: {exc}") from exc
    if diff is None:
        print("traces are identical (zero divergence)")
        return 0
    print(diff.describe())
    return 1


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MRD (ICPP'18) reproduction: Spark cache-policy simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list registered workloads").set_defaults(
        func=cmd_workloads
    )

    run_p = sub.add_parser("run", help="simulate one workload under one scheme")
    run_p.add_argument("workload")
    run_p.add_argument("--scheme", default="MRD", help=f"one of {sorted(SCHEME_FACTORIES)}")
    run_p.add_argument("--cluster", default="main", help=f"one of {sorted(CLUSTERS)}")
    run_p.add_argument("--cache-fraction", type=float, default=0.5,
                       help="cache as a fraction of the peak live cached set")
    run_p.add_argument("--cache-mb", type=float, default=None,
                       help="absolute cache MB per node (overrides --cache-fraction)")
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--iterations", type=int, default=None)
    run_p.add_argument("--partitions", type=int, default=None)
    run_p.add_argument("--mode", choices=("recurring", "adhoc"), default="recurring")
    run_p.add_argument("--metric", choices=("stage", "job"), default="stage")
    run_p.add_argument("--placement", choices=PLACEMENTS, default="stride",
                       help="partition placement: stride (legacy modulo) or "
                            "rendezvous (sticky, join-stable)")
    run_p.add_argument("--churn-rate", type=float, default=0.0,
                       help="per-stage-boundary probability of a membership "
                            "event (join/decommission, equal odds)")
    run_p.add_argument("--churn-seed", type=int, default=0,
                       help="RNG seed for the churn history")
    run_p.add_argument("--rebalance", choices=REBALANCES, default="drop",
                       help="a decommissioned node's cache: drop it, or "
                            "migrate the lowest-reference-distance blocks")
    _add_control_args(run_p)
    run_p.add_argument("-v", "--verbose", action="store_true")
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser(
        "sweep",
        help="run a sweep grid across schemes (parallel, resumable)",
    )
    sweep_p.add_argument("workloads", nargs="*", metavar="workload",
                         help="workload names (or set them in --spec)")
    sweep_p.add_argument("--spec", default=None,
                         help="grid spec file: .toml (Python >= 3.11) or .json; "
                              "flags below are ignored when given except "
                              "positional workloads, which override the spec's")
    sweep_p.add_argument("--schemes", default="LRU,LRC,MemTune,MRD")
    sweep_p.add_argument("--fractions",
                         default=",".join(str(f) for f in DEFAULT_CACHE_FRACTIONS))
    sweep_p.add_argument("--cluster", default="main")
    sweep_p.add_argument("--scale", type=float, default=1.0)
    sweep_p.add_argument("--iterations", type=int, default=None)
    sweep_p.add_argument("--partitions", type=int, default=None)
    sweep_p.add_argument("--schedulers", default="event",
                         help="comma list of scheduling cores; more than one "
                              "runs every cell per core and exits 1 unless "
                              "their metrics are identical")
    sweep_p.add_argument("-j", "--jobs", type=int, default=1,
                         help="worker processes (results are bit-identical "
                              "at any job count)")
    sweep_p.add_argument("--store", default=None,
                         help="result-store directory: completed cells persist "
                              "immediately and later runs serve unchanged "
                              "cells from cache")
    sweep_p.add_argument("--no-resume", dest="resume", action="store_false",
                         help="recompute every cell even when stored "
                              "(stale per-cell profile directories are purged)")

    service = sweep_p.add_argument_group(
        "distributed sweep service",
        "any number of --worker processes (across machines sharing the "
        "--store directory, e.g. over NFS) lease cells and drain the "
        "grid; --serve renders a live dashboard from the same store; "
        "--workers-external publishes the grid and waits for the fleet "
        "(see docs/distributed-sweeps.md)",
    )
    service.add_argument("--worker", action="store_true",
                         help="run as a work-queue worker: lease cells from "
                              "the shared --store until the grid is drained")
    service.add_argument("--serve", action="store_true",
                         help="serve an HTML+JSON progress/results dashboard "
                              "regenerated from the --store")
    service.add_argument("--workers-external", dest="external",
                         action="store_true",
                         help="compute nothing locally: publish the grid "
                              "into --store and wait for --worker processes "
                              "to settle every cell")
    service.add_argument("--external-timeout", type=float, default=None,
                         help="give up waiting for external workers after "
                              "this many seconds (default: wait forever)")
    service.add_argument("--worker-id", default=None,
                         help="stable worker name (default: <hostname>-<pid>)")
    service.add_argument("--lease-ttl", type=float, default=60.0,
                         help="seconds without a heartbeat before a lease "
                              "counts as crashed and is reclaimed (default 60)")
    service.add_argument("--heartbeat", type=float, default=5.0,
                         help="lease/registry heartbeat interval in seconds")
    service.add_argument("--poll", type=float, default=0.5,
                         help="idle worker re-scan interval in seconds")
    service.add_argument("--max-cells", type=int, default=None,
                         help="stop this worker after executing N cells")
    service.add_argument("--once", action="store_true",
                         help="with --serve: write dashboard.json + "
                              "dashboard.html once and exit")
    service.add_argument("--host", default="127.0.0.1",
                         help="with --serve: bind address (default loopback)")
    service.add_argument("--port", type=int, default=8731,
                         help="with --serve: HTTP port (default 8731)")
    service.add_argument("--refresh", type=float, default=5.0,
                         help="with --serve: page auto-refresh seconds")
    service.add_argument("--out", default=None,
                         help="with --serve --once: directory for the "
                              "dashboard files (default: the store root)")
    sweep_p.set_defaults(func=cmd_sweep)

    exp_p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp_p.add_argument("name", help=f"one of {sorted(_EXPERIMENTS)}")
    exp_p.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes for sweep-backed figures")
    exp_p.add_argument("--store", default=None,
                       help="sweep result-store directory (sweep-backed "
                            "figures only)")
    exp_p.add_argument("--workers-external", dest="external",
                       action="store_true",
                       help="publish the figure's grid into --store and wait "
                            "for `repro sweep --worker` processes to drain it")
    exp_p.set_defaults(func=cmd_experiment)

    bench_p = sub.add_parser(
        "bench", help="time the engine's scheduling cores on synthetic workloads"
    )
    bench_p.add_argument("--tasks", type=int, default=5000,
                         help="minimum simulated tasks per workload (default 5000)")
    bench_p.add_argument("--nodes", type=int, default=16)
    bench_p.add_argument("--slots", type=int, default=4)
    bench_p.add_argument("--repeats", type=int, default=3,
                         help="timing repetitions; best is reported")
    bench_p.add_argument("--no-reference", action="store_true",
                         help="skip the O(tasks x nodes) reference core")
    bench_p.add_argument("--profiles", default=None,
                         help="comma list of workload profiles to measure "
                              "(default: all; e.g. sched,cache)")
    bench_p.add_argument("-o", "--out", dest="output", default=None,
                         help="write the JSON payload here (e.g. BENCH_engine.json)")
    bench_p.add_argument("--check-baseline", default=None,
                         help="fail (exit 1) on a throughput regression vs this file")
    bench_p.add_argument("--max-slowdown", type=float, default=2.0,
                         help="allowed slowdown factor for --check-baseline")
    bench_p.set_defaults(func=cmd_bench)

    mt_p = sub.add_parser(
        "mt", help="multi-tenant mode: concurrent applications on one cluster"
    )
    mt_sub = mt_p.add_subparsers(dest="mt_command", required=True)
    mtrun_p = mt_sub.add_parser(
        "run", help="stream a mix of applications into a shared cluster"
    )
    mtrun_p.add_argument("workloads", nargs="+", metavar="workload",
                         help="workload mix, cycled over the submitted apps")
    mtrun_p.add_argument("--apps", type=int, default=None,
                         help="number of applications (default: one per "
                              "listed workload)")
    mtrun_p.add_argument("--schemes", default="LRU",
                         help="comma list of per-app cache schemes, cycled "
                              "like the workload mix")
    mtrun_p.add_argument("--arbitration", choices=sorted(ARBITRATIONS),
                         default="static",
                         help="cross-application cache arbitration policy")
    mtrun_p.add_argument("--arrival", choices=("fixed", "poisson"),
                         default="fixed", help="arrival process")
    mtrun_p.add_argument("--rate", type=float, default=0.1,
                         help="poisson arrival rate (apps per simulated second)")
    mtrun_p.add_argument("--interval", type=float, default=0.0,
                         help="fixed interarrival gap in simulated seconds")
    mtrun_p.add_argument("--seed", type=int, default=0,
                         help="arrival-process seed (poisson)")
    mtrun_p.add_argument("--cluster", default="main",
                         help=f"one of {sorted(CLUSTERS)}")
    mtrun_p.add_argument("--cache-fraction", type=float, default=0.4,
                         help="per-node cache as a fraction of the largest "
                              "app's peak live cached set")
    mtrun_p.add_argument("--cache-mb", type=float, default=None,
                         help="absolute cache MB per node (overrides "
                              "--cache-fraction)")
    mtrun_p.add_argument("--scale", type=float, default=1.0)
    mtrun_p.add_argument("--iterations", type=int, default=None)
    mtrun_p.add_argument("--partitions", type=int, default=8)
    _add_control_args(mtrun_p)
    mtrun_p.set_defaults(func=cmd_mt_run)

    lint_p = sub.add_parser(
        "lint",
        help="run the determinism-contract static analyzer "
             "(see docs/static-analysis.md)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint_p)
    lint_p.set_defaults(func=cmd_lint)

    trace_p = sub.add_parser(
        "trace", help="ingest, record, replay and diff cache-management traces"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    def _trace_run_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scheme", "--policy", dest="scheme", default="lru",
                       help="cache scheme (case-insensitive; e.g. lru, mrd)")
        p.add_argument("--cluster", default=None,
                       help=f"one of {sorted(CLUSTERS)}; replay defaults to "
                            "the recorded trace's cluster")
        p.add_argument("--cache-fraction", type=float, default=0.5)
        p.add_argument("--cache-mb", type=float, default=None)
        p.add_argument("-o", "--output", default=None,
                       help="write the recorded trace as JSONL")
        p.add_argument("--chrome", default=None,
                       help="also write a Chrome trace_event JSON file")

    ingest_p = trace_sub.add_parser(
        "ingest", help="parse a Spark event log and summarize its DAG"
    )
    ingest_p.add_argument("eventlog")
    ingest_p.add_argument("--profile-store", default=None,
                          help="persist a reference-distance profile here")
    ingest_p.set_defaults(func=cmd_trace_ingest)

    record_p = trace_sub.add_parser(
        "record", help="simulate a registered workload and record its trace"
    )
    record_p.add_argument("workload")
    record_p.add_argument("--scale", type=float, default=1.0)
    record_p.add_argument("--iterations", type=int, default=None)
    record_p.add_argument("--partitions", type=int, default=None)
    _trace_run_args(record_p)
    _add_control_args(record_p)
    record_p.set_defaults(func=cmd_trace_record)

    replay_p = trace_sub.add_parser(
        "replay", help="replay an event log or recorded trace under a scheme"
    )
    replay_p.add_argument("trace", help="Spark event log or recorded JSONL trace")
    replay_p.add_argument("--profile-store", default=None,
                          help="feed an ingested profile to recurring-mode MRD")
    _trace_run_args(replay_p)
    replay_p.set_defaults(func=cmd_trace_replay)

    diff_p = trace_sub.add_parser(
        "diff", help="first divergence between two recorded traces"
    )
    diff_p.add_argument("left")
    diff_p.add_argument("right")
    diff_p.set_defaults(func=cmd_trace_diff)

    report_p = sub.add_parser(
        "report", help="regenerate the full evaluation as markdown"
    )
    report_p.add_argument("-o", "--output", default=None,
                          help="write to a file instead of stdout")
    report_p.add_argument("-j", "--jobs", type=int, default=1,
                          help="worker processes for the sweep-backed figures")
    report_p.add_argument("--store", default=None,
                          help="sweep result-store directory (a rerun "
                              "recomputes only missing cells)")
    report_p.add_argument("--workers-external", dest="external",
                          action="store_true",
                          help="publish every figure's grid into --store and "
                               "wait for `repro sweep --worker` processes")
    report_p.set_defaults(func=cmd_report)

    dot_p = sub.add_parser("dot", help="export a workload's DAG as Graphviz DOT")
    dot_p.add_argument("workload")
    dot_p.add_argument("--view", choices=("lineage", "stages"), default="stages")
    dot_p.add_argument("--no-skipped", action="store_true",
                       help="omit skipped stages from the stage view")
    dot_p.add_argument("-o", "--output", default=None)
    dot_p.add_argument("--scale", type=float, default=1.0)
    dot_p.add_argument("--iterations", type=int, default=None)
    dot_p.set_defaults(func=cmd_dot)

    return parser


def cmd_dot(args: argparse.Namespace) -> int:
    from repro.dag.visualize import lineage_to_dot, stages_to_dot

    dag = build_workload_dag(
        args.workload, scale=args.scale, iterations=args.iterations, partitions=8
    )
    text = (
        lineage_to_dot(dag) if args.view == "lineage"
        else stages_to_dot(dag, include_skipped=not args.no_skipped)
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"DOT written to {args.output}")
    else:
        print(text)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    if args.external and args.store is None:
        raise SystemExit("--workers-external needs a shared --store directory")
    text = generate_report(
        out=args.output, progress=args.output is not None,
        jobs=args.jobs, store=args.store, external=args.external,
    )
    if args.output is None:
        print(text)
    else:
        print(f"report written to {args.output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
