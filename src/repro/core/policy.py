"""MRD as a pluggable :class:`CacheScheme` (full / eviction-only / prefetch-only).

This adapter wires the paper's three components together for the
simulator: the :class:`AppProfiler` (DAG parsing, profile storage), the
:class:`MrdManager` (MRD_Table, purge + prefetch orders) and one
:class:`CacheMonitor` per node (greatest-distance eviction).

Variants map directly to Figure 4's three bars:

* ``MrdScheme()`` — full MRD (eviction + prefetching).
* ``MrdScheme(prefetch=False)`` — eviction-only.
* ``MrdScheme(evict=False)`` — prefetch-only: nodes keep Spark's
  default LRU eviction and only the prefetching workflow is added.
"""

from __future__ import annotations


from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.core.app_profiler import AppProfiler, ProfileStore
from repro.core.cache_monitor import CacheMonitor, MrdTableView
from repro.core.manager import MrdConfig, MrdManager
from repro.dag.dag_builder import ApplicationDAG
from repro.policies.base import EvictionPolicy
from repro.policies.lru import LruPolicy
from repro.policies.scheme import CacheScheme, StageOrders

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore
    from repro.control.messages import CacheStatusReport


class PrefetchAwareLruPolicy(MrdTableView, LruPolicy):
    """LRU demand eviction + distance-aware prefetch eviction.

    The node policy of the *prefetch-only* MRD variant: ordinary
    insertion pressure keeps Spark's default LRU victims, but when a
    prefetch forces memory pressure the victim is the block with the
    largest reference distance (Algorithm 1's prefetching phase), and a
    prefetch is refused rather than allowed to displace blocks more
    urgent than the incoming one.  Distances come from the worker's
    delivered table view (:class:`MrdTableView`), so under the rpc
    control plane they can lag the driver by a boundary.
    """

    name = "LRU+MRD-prefetch"

    def __init__(self, manager: MrdManager) -> None:
        super().__init__()
        self._manager = manager

    def _live_distance(self, rdd_id: int) -> float:
        return self._manager.distance(rdd_id)

    def prefetch_eviction_order(self, store: MemoryStore):
        return iter(sorted(store.block_ids(), key=self._distance_key))

    def admit_prefetch_over(self, block: Block, victims: list[BlockId], store: MemoryStore) -> bool:
        incoming = self._distance_key(block.id)
        return all(incoming > self._distance_key(v) for v in victims)

    def _distance_key(self, bid: BlockId) -> tuple[float, int, int]:
        return (-self.lookup_distance(bid.rdd_id), -bid.partition, -bid.rdd_id)


class MrdScheme(CacheScheme):
    """Most Reference Distance cache management."""

    def __init__(
        self,
        evict: bool = True,
        prefetch: bool = True,
        metric: str = "stage",
        mode: str = "recurring",
        prefetch_threshold: float = 0.25,
        adaptive_threshold: bool = False,
        max_prefetch_per_node: int = 8,
        eager_purge: bool = True,
        guarded_prefetch: bool = False,
        tie_breaker: str = "partition",
        profile_store: ProfileStore | None = None,
    ) -> None:
        if not evict and not prefetch:
            raise ValueError("at least one of evict/prefetch must be enabled")
        self.evict = evict
        self.prefetch = prefetch
        self.metric = metric
        self.mode = mode
        self.tie_breaker = tie_breaker
        self.profile_store = profile_store
        self.mrd_config = MrdConfig(
            metric=metric,
            prefetch_threshold=prefetch_threshold,
            adaptive_threshold=adaptive_threshold,
            max_prefetch_per_node=max_prefetch_per_node if prefetch else 0,
            eager_purge=eager_purge and evict,
            guarded_prefetch=guarded_prefetch,
        )
        self.manager: MrdManager | None = None
        variant = "MRD"
        if not prefetch:
            variant = "MRD-evict"
        elif not evict:
            variant = "MRD-prefetch"
        if metric == "job":
            variant += "-jobdist"
        if mode == "adhoc":
            variant += "-adhoc"
        self.name = variant

    # ------------------------------------------------------------------
    def prepare(self, dag: ApplicationDAG) -> None:
        profiler = AppProfiler(dag, mode=self.mode, store=self.profile_store)
        self.manager = MrdManager(dag, profiler, self.mrd_config)

    def policy_factory(self, node_id: int) -> EvictionPolicy:
        assert self.manager is not None, "prepare() must run before building the cluster"
        if self.evict:
            return CacheMonitor(node_id, self.manager, tie_breaker=self.tie_breaker)
        # Prefetch-only: Spark's default LRU handles demand evictions,
        # but prefetch-forced pressure uses reference distances.
        return PrefetchAwareLruPolicy(self.manager)

    def on_job_submit(self, job_id: int) -> None:
        assert self.manager is not None
        self.manager.on_job_submit(job_id)

    def on_stage_start(self, seq: int, cluster: Cluster) -> StageOrders:
        assert self.manager is not None
        plan = self.manager.on_stage_start(seq, cluster)
        return StageOrders(
            purge_rdds=plan.purge_rdds if self.evict else [],
            prefetches=plan.prefetches if self.prefetch else [],
            table_snapshot=self.manager.table.snapshot(),
        )

    def on_block_created(self, rdd_id: int) -> None:
        """Engine callback: a cached RDD's blocks now exist."""
        assert self.manager is not None
        self.manager.on_block_created(rdd_id)

    def on_cache_status(self, report: CacheStatusReport) -> None:
        assert self.manager is not None
        self.manager.on_cache_status(report)

    def on_worker_deregister(self, node_id: int) -> None:
        assert self.manager is not None
        self.manager.on_worker_deregister(node_id)

    def table_snapshot(self) -> dict[int, float] | None:
        """Fresh snapshot for a (re-)registering worker (paper §4.4)."""
        assert self.manager is not None
        return self.manager.table.snapshot()

    def reference_distance(self, rdd_id: int) -> float | None:
        """The MRD_Table's current distance (trace-recorder hook)."""
        assert self.manager is not None
        return self.manager.distance(rdd_id)

    def finalize(self) -> None:
        if self.manager is not None:
            self.manager.finalize()
