"""MRD as a pluggable :class:`CacheScheme` (full / eviction-only / prefetch-only).

This adapter wires the paper's three components together for the
simulator: the :class:`AppProfiler` (DAG parsing, profile storage), the
:class:`MrdManager` (MRD_Table, purge + prefetch orders) and one
:class:`CacheMonitor` per node (greatest-distance eviction).

Variants map directly to Figure 4's three bars:

* ``MrdScheme()`` — full MRD (eviction + prefetching).
* ``MrdScheme(prefetch=False)`` — eviction-only.
* ``MrdScheme(evict=False)`` — prefetch-only: nodes keep Spark's
  default LRU eviction and only the prefetching workflow is added.
"""

from __future__ import annotations


from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.core.app_profiler import AppProfiler, ProfileStore
from repro.core.cache_monitor import CacheMonitor, MrdTableView
from repro.core.manager import MrdConfig, MrdManager
from repro.dag.dag_builder import ApplicationDAG
from repro.policies.base import BATCH_UNSUPPORTED, BatchUnsupported, EvictionPolicy
from repro.policies.lru import LruPolicy
from repro.policies.scheme import CacheScheme, StageOrders
from repro.policies.vectorized import select_block_victims

if TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Mapping

    from repro.cluster.block import Block, BlockId
    from repro.cluster.memory_store import MemoryStore
    from repro.control.messages import CacheStatusReport


class PrefetchAwareLruPolicy(MrdTableView, LruPolicy):
    """LRU demand eviction + distance-aware prefetch eviction.

    The node policy of the *prefetch-only* MRD variant: ordinary
    insertion pressure keeps Spark's default LRU victims, but when a
    prefetch forces memory pressure the victim is the block with the
    largest reference distance (Algorithm 1's prefetching phase), and a
    prefetch is refused rather than allowed to displace blocks more
    urgent than the incoming one.  Distances come from the worker's
    delivered table view (:class:`MrdTableView`), so under the rpc
    control plane they can lag the driver by a boundary.
    """

    name = "LRU+MRD-prefetch"

    def __init__(self, manager: MrdManager) -> None:
        super().__init__()
        self._manager = manager
        #: Aux column (negated distance) lags the view until the first
        #: batched prefetch selection (and again after each accepted
        #: broadcast) refreshes it — per-insert aux writes only resume
        #: once a refresh proved the column is actually consulted.
        self._aux_dirty = True

    def _live_distance(self, rdd_id: int) -> float:
        return self._manager.distance(rdd_id)

    def on_insert(self, block: Block) -> None:
        super().on_insert(block)
        if self._store is not None and not self._aux_dirty:
            self._store.set_aux(block.id, -self.lookup_distance(block.id.rdd_id))

    def on_table_update(self, seq: int, distances: Mapping[int, float]) -> bool:
        applied = super().on_table_update(seq, distances)
        if applied:
            self._aux_dirty = True
        return applied

    def _refresh_aux(self) -> None:
        """Rewrite this policy's aux-column entries from the held view."""
        store = self._store
        assert store is not None
        self._aux_dirty = False
        keys: dict[int, float] = {}
        for bid in self._recency:
            key = keys.get(bid.rdd_id)
            if key is None:
                key = -self.lookup_distance(bid.rdd_id)
                keys[bid.rdd_id] = key
            store.set_aux(bid, key)

    def prefetch_eviction_order(self, store: MemoryStore):
        return iter(sorted(store.block_ids(), key=self._distance_key))

    def admit_prefetch_over(self, block: Block, victims: list[BlockId], store: MemoryStore) -> bool:
        incoming = self._distance_key(block.id)
        return all(incoming > self._distance_key(v) for v in victims)

    def _distance_key(self, bid: BlockId) -> tuple[float, int, int]:
        return (-self.lookup_distance(bid.rdd_id), -bid.partition, -bid.rdd_id)

    def select_victims_batch(
        self,
        store: MemoryStore,
        needed_mb: float,
        protect: frozenset[BlockId] = frozenset(),
        for_prefetch: bool = False,
    ) -> list[BlockId] | None | BatchUnsupported:
        if not for_prefetch:
            # Demand pressure: plain LRU recency batch.
            return super().select_victims_batch(store, needed_mb, protect)
        st = self._store
        if st is None or st is not store or self._distances is None:
            # Without a delivered snapshot distances come live from the
            # manager and can drift without a broadcast to dirty the aux
            # column — only the object walk is safe.
            return BATCH_UNSUPPORTED
        st.ensure_columns()
        if self._aux_dirty:
            self._refresh_aux()
        cols = st.columns()
        # Primary: negated distance; id columns close the total order
        # mirroring ``_distance_key``'s ``(-dist, -part, -rdd)``.
        return select_block_victims(
            st, cols, needed_mb, protect, cols.aux, (-cols.rdd, -cols.part)
        )


class MrdScheme(CacheScheme):
    """Most Reference Distance cache management."""

    def __init__(
        self,
        evict: bool = True,
        prefetch: bool = True,
        metric: str = "stage",
        mode: str = "recurring",
        prefetch_threshold: float = 0.25,
        adaptive_threshold: bool = False,
        max_prefetch_per_node: int = 8,
        eager_purge: bool = True,
        guarded_prefetch: bool = False,
        tie_breaker: str = "partition",
        profile_store: ProfileStore | None = None,
    ) -> None:
        if not evict and not prefetch:
            raise ValueError("at least one of evict/prefetch must be enabled")
        self.evict = evict
        self.prefetch = prefetch
        self.metric = metric
        self.mode = mode
        self.tie_breaker = tie_breaker
        self.profile_store = profile_store
        self.mrd_config = MrdConfig(
            metric=metric,
            prefetch_threshold=prefetch_threshold,
            adaptive_threshold=adaptive_threshold,
            max_prefetch_per_node=max_prefetch_per_node if prefetch else 0,
            eager_purge=eager_purge and evict,
            guarded_prefetch=guarded_prefetch,
        )
        self.manager: MrdManager | None = None
        variant = "MRD"
        if not prefetch:
            variant = "MRD-evict"
        elif not evict:
            variant = "MRD-prefetch"
        if metric == "job":
            variant += "-jobdist"
        if mode == "adhoc":
            variant += "-adhoc"
        self.name = variant

    # ------------------------------------------------------------------
    def prepare(self, dag: ApplicationDAG) -> None:
        profiler = AppProfiler(dag, mode=self.mode, store=self.profile_store)
        self.manager = MrdManager(dag, profiler, self.mrd_config)

    def policy_factory(self, node_id: int) -> EvictionPolicy:
        assert self.manager is not None, "prepare() must run before building the cluster"
        if self.evict:
            return CacheMonitor(node_id, self.manager, tie_breaker=self.tie_breaker)
        # Prefetch-only: Spark's default LRU handles demand evictions,
        # but prefetch-forced pressure uses reference distances.
        return PrefetchAwareLruPolicy(self.manager)

    def on_job_submit(self, job_id: int) -> None:
        assert self.manager is not None
        self.manager.on_job_submit(job_id)

    def on_stage_start(self, seq: int, cluster: Cluster) -> StageOrders:
        assert self.manager is not None
        plan = self.manager.on_stage_start(seq, cluster)
        return StageOrders(
            purge_rdds=plan.purge_rdds if self.evict else [],
            prefetches=plan.prefetches if self.prefetch else [],
            table_snapshot=self.manager.table.snapshot(),
        )

    def on_block_created(self, rdd_id: int) -> None:
        """Engine callback: a cached RDD's blocks now exist."""
        assert self.manager is not None
        self.manager.on_block_created(rdd_id)

    def on_cache_status(self, report: CacheStatusReport) -> None:
        assert self.manager is not None
        self.manager.on_cache_status(report)

    def on_worker_deregister(self, node_id: int) -> None:
        assert self.manager is not None
        self.manager.on_worker_deregister(node_id)

    def table_snapshot(self) -> dict[int, float] | None:
        """Fresh snapshot for a (re-)registering worker (paper §4.4)."""
        assert self.manager is not None
        return self.manager.table.snapshot()

    def reference_distance(self, rdd_id: int) -> float | None:
        """The MRD_Table's current distance (trace-recorder hook)."""
        assert self.manager is not None
        return self.manager.distance(rdd_id)

    def finalize(self) -> None:
        if self.manager is not None:
            self.manager.finalize()
