"""MRD_Table: the reference-distance profile maintained by the manager.

For every tracked RDD the table keeps the ordered list of *upcoming*
references.  As execution advances past a reference it is deleted and
the next one becomes the RDD's comparison value (paper §4.1: "MRD will
keep track of the distance values for all the references, but for
comparison it will only use the lowest one").  An RDD whose list
empties has *infinite* distance — first in line for eviction and the
trigger for the manager's all-out purge.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Iterable

from repro.core.reference_distance import Reference

INFINITE = math.inf

_METRICS = ("stage", "job")


class MrdTable:
    """Upcoming-reference lists plus the current execution position."""

    def __init__(self, metric: str = "stage") -> None:
        if metric not in _METRICS:
            raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
        self.metric = metric
        #: rdd_id -> sorted list of (seq, job_id) still ahead of execution
        self._refs: dict[int, list[tuple[int, int]]] = {}
        self.current_seq = 0
        self.current_job = 0

    # ------------------------------------------------------------------
    # updates (paper APIs: updateReferenceDistance / newReferenceDistance)
    # ------------------------------------------------------------------
    def add_references(self, references: Iterable[Reference]) -> None:
        """Merge new references from the AppProfiler (``updateReferenceDistance``)."""
        for ref in references:
            bucket = self._refs.setdefault(ref.rdd_id, [])
            entry = (ref.seq, ref.job_id)
            if entry not in bucket:
                insort(bucket, entry)

    def track(self, rdd_id: int) -> None:
        """Ensure ``rdd_id`` is in the table even with no known references."""
        self._refs.setdefault(rdd_id, [])

    def forget(self, rdd_id: int) -> None:
        """Drop an RDD from the table (after a purge order)."""
        self._refs.pop(rdd_id, None)

    def advance(self, seq: int, job_id: int) -> None:
        """Move execution to active stage ``seq`` (``newReferenceDistance``).

        References strictly behind the new position are consumed: the
        paper phrases this as decrementing every distance by the stage
        delta, which is equivalent to keeping absolute positions and
        moving the pointer.

        With the coarse **job** metric, positions are only known at job
        granularity — a reference cannot be recognized as *passed* until
        the JobID increments, so consumed references linger at distance
        0 for the rest of their job.  This is the root of the job
        metric's weakness on many-stages-per-job workloads (Fig. 8):
        blocks that are already dead keep polluting the cache until the
        job boundary.
        """
        if seq < self.current_seq:
            raise ValueError(f"cannot move backwards: {seq} < {self.current_seq}")
        self.current_seq = seq
        self.current_job = job_id
        for bucket in self._refs.values():
            if self.metric == "job":
                while bucket and bucket[0][1] < job_id:
                    bucket.pop(0)
            else:
                while bucket and bucket[0][0] < seq:
                    bucket.pop(0)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, rdd_id: int) -> bool:
        return rdd_id in self._refs

    def tracked_rdd_ids(self) -> list[int]:
        return sorted(self._refs)

    def distance(self, rdd_id: int) -> float:
        """Current comparison value for ``rdd_id`` (lowest upcoming gap).

        Returns ``math.inf`` for RDDs with no upcoming reference,
        including RDDs the table has never heard of.
        """
        bucket = self._refs.get(rdd_id)
        if not bucket:
            return INFINITE
        seq, job = bucket[0]
        if self.metric == "stage":
            return float(seq - self.current_seq)
        return float(job - self.current_job)

    def dead_rdds(self) -> list[int]:
        """Tracked RDDs whose reference list has emptied (infinite distance)."""
        return sorted(r for r, bucket in self._refs.items() if not bucket)

    def candidates_by_distance(self) -> list[tuple[float, int]]:
        """(distance, rdd_id) for all finite-distance RDDs, nearest first."""
        out = [
            (self.distance(rdd_id), rdd_id)
            for rdd_id, bucket in self._refs.items()
            if bucket
        ]
        out.sort()
        return out

    def size(self) -> int:
        """Number of stored references (the paper's overhead metric)."""
        return sum(len(b) for b in self._refs.values())
