"""MRD_Table: the reference-distance profile maintained by the manager.

For every tracked RDD the table keeps the ordered list of *upcoming*
references.  As execution advances past a reference it is deleted and
the next one becomes the RDD's comparison value (paper §4.1: "MRD will
keep track of the distance values for all the references, but for
comparison it will only use the lowest one").  An RDD whose list
empties has *infinite* distance — first in line for eviction and the
trigger for the manager's all-out purge.

Hot-path layout (see ``docs/performance.md``): per-RDD references live
in :class:`_RefQueue` — a sorted array with a head pointer, so
consuming a passed reference is O(1) amortized instead of the O(n)
``list.pop(0)`` — and :meth:`MrdTable.advance` is driven by a lazy
min-heap with one entry per stored reference, keyed by the metric
coordinate.  Advancing to a new stage pops only the references that
actually fall behind the new position (amortized O(log n) each) rather
than scanning every tracked RDD's list per stage.
"""

from __future__ import annotations

import heapq
import math
from bisect import insort
from collections.abc import Iterable

from repro.core.reference_distance import Reference

INFINITE = math.inf

_METRICS = ("stage", "job")


class _RefQueue:
    """Sorted ``(seq, job_id)`` entries with an O(1)-amortized head.

    The live region is ``entries[head:]``; consumed entries are left in
    place and compacted once they dominate the array, so ``popleft`` is
    amortized O(1).  ``seen`` mirrors the live region for O(1) dedup
    (``add_references`` previously paid an O(n) ``in`` scan per merge).
    """

    __slots__ = ("entries", "head", "seen")

    def __init__(self) -> None:
        self.entries: list[tuple[int, int]] = []
        self.head = 0
        self.seen: set[tuple[int, int]] = set()

    def __len__(self) -> int:
        return len(self.entries) - self.head

    def peek(self) -> tuple[int, int] | None:
        return self.entries[self.head] if self.head < len(self.entries) else None

    def add(self, entry: tuple[int, int]) -> bool:
        """Insert ``entry`` in sorted position; False if already stored."""
        if entry in self.seen:
            return False
        self.seen.add(entry)
        insort(self.entries, entry, lo=self.head)
        return True

    def clear(self) -> None:
        self.entries.clear()
        self.seen.clear()
        self.head = 0

    def popleft(self) -> tuple[int, int]:
        entry = self.entries[self.head]
        self.head += 1
        self.seen.discard(entry)
        if self.head > 32 and self.head * 2 >= len(self.entries):
            del self.entries[: self.head]
            self.head = 0
        return entry


class MrdTable:
    """Upcoming-reference lists plus the current execution position."""

    def __init__(self, metric: str = "stage") -> None:
        if metric not in _METRICS:
            raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
        self.metric = metric
        #: Index of the metric coordinate inside a (seq, job_id) entry.
        self._coord = 0 if metric == "stage" else 1
        #: rdd_id -> queue of (seq, job_id) still ahead of execution
        self._refs: dict[int, _RefQueue] = {}
        #: Lazy consumption heap: one ``(coordinate, rdd_id)`` entry per
        #: stored reference.  ``advance`` pops entries behind the new
        #: position and drains the owning queue's consumable prefix;
        #: entries whose reference was already consumed (or whose RDD
        #: was forgotten) pop as harmless no-ops.
        self._pending: list[tuple[int, int]] = []
        self.current_seq = 0
        self.current_job = 0

    # ------------------------------------------------------------------
    # updates (paper APIs: updateReferenceDistance / newReferenceDistance)
    # ------------------------------------------------------------------
    def add_references(self, references: Iterable[Reference]) -> None:
        """Merge new references from the AppProfiler (``updateReferenceDistance``)."""
        coord = self._coord
        for ref in references:
            queue = self._refs.get(ref.rdd_id)
            if queue is None:
                queue = self._refs[ref.rdd_id] = _RefQueue()
            entry = (ref.seq, ref.job_id)
            if queue.add(entry):
                heapq.heappush(self._pending, (entry[coord], ref.rdd_id))

    def track(self, rdd_id: int) -> None:
        """Ensure ``rdd_id`` is in the table even with no known references."""
        self._refs.setdefault(rdd_id, _RefQueue())

    def forget(self, rdd_id: int) -> None:
        """Drop an RDD from the table (after a purge order)."""
        self._refs.pop(rdd_id, None)

    def advance(self, seq: int, job_id: int) -> None:
        """Move execution to active stage ``seq`` (``newReferenceDistance``).

        References strictly behind the new position are consumed: the
        paper phrases this as decrementing every distance by the stage
        delta, which is equivalent to keeping absolute positions and
        moving the pointer.

        With the coarse **job** metric, positions are only known at job
        granularity — a reference cannot be recognized as *passed* until
        the JobID increments, so consumed references linger at distance
        0 for the rest of their job.  This is the root of the job
        metric's weakness on many-stages-per-job workloads (Fig. 8):
        blocks that are already dead keep polluting the cache until the
        job boundary.
        """
        if seq < self.current_seq:
            raise ValueError(f"cannot move backwards: {seq} < {self.current_seq}")
        self.current_seq = seq
        self.current_job = job_id
        coord = self._coord
        position = job_id if coord else seq
        pending = self._pending
        refs = self._refs
        while pending and pending[0][0] < position:
            _, rdd_id = heapq.heappop(pending)
            queue = refs.get(rdd_id)
            if queue is None:
                continue
            # Drain the consumable prefix.  Under the job metric a
            # passed-seq reference can hide behind an earlier-seq one
            # whose job has not ended; it is picked up by that blocking
            # entry's own heap pop once the job boundary passes —
            # exactly the reference semantics of the per-stage scan.
            head = queue.peek()
            while head is not None and head[coord] < position:
                queue.popleft()
                head = queue.peek()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, rdd_id: int) -> bool:
        return rdd_id in self._refs

    def tracked_rdd_ids(self) -> list[int]:
        return sorted(self._refs)

    def distance(self, rdd_id: int) -> float:
        """Current comparison value for ``rdd_id`` (lowest upcoming gap).

        Returns ``math.inf`` for RDDs with no upcoming reference,
        including RDDs the table has never heard of.
        """
        queue = self._refs.get(rdd_id)
        head = queue.peek() if queue is not None else None
        if head is None:
            return INFINITE
        if self.metric == "stage":
            return float(head[0] - self.current_seq)
        return float(head[1] - self.current_job)

    def worst_distance(self, rdd_ids: Iterable[int]) -> float:
        """Largest current distance among ``rdd_ids`` (-1.0 for none).

        Short-circuits to ``INFINITE`` as soon as any id has no upcoming
        reference: the callers (the manager's forced-prefetch guard and
        the cross-app distance arbitration) only need to know whether
        something already-dead is resident, not which one.
        """
        worst = -1.0
        for rdd_id in rdd_ids:
            d = self.distance(rdd_id)
            if d == INFINITE:
                return INFINITE
            if d > worst:
                worst = d
        return worst

    def dead_rdds(self) -> list[int]:
        """Tracked RDDs whose reference list has emptied (infinite distance)."""
        return sorted(r for r, queue in self._refs.items() if not len(queue))

    def snapshot(self) -> dict[int, float]:
        """Current distance of every tracked RDD, as a plain mapping.

        This is what the driver broadcasts to workers at a stage
        boundary (and re-issues to a re-registered worker, §4.4): RDDs
        absent from the snapshot are implicitly at infinite distance,
        matching :meth:`distance` for unknown ids.
        """
        return {rdd_id: self.distance(rdd_id) for rdd_id in self._refs}

    def candidates_by_distance(self) -> list[tuple[float, int]]:
        """(distance, rdd_id) for all finite-distance RDDs, nearest first."""
        coord = self._coord
        position = self.current_job if coord else self.current_seq
        out = []
        for rdd_id, queue in self._refs.items():
            head = queue.peek()
            if head is not None:
                out.append((float(head[coord] - position), rdd_id))
        out.sort()
        return out

    def size(self) -> int:
        """Number of stored references (the paper's overhead metric)."""
        return sum(len(q) for q in self._refs.values())
