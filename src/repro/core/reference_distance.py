"""Reference extraction: from a compiled DAG to MRD's raw material.

A *reference* is one future cache read: RDD ``rdd_id`` will be read at
active stage ``seq`` (which belongs to job ``job_id``).  The AppProfiler
parses these out of job DAGs — per job for ad-hoc applications, or all
at once when a recurring application's saved profile is available — and
feeds them to the MRDmanager's :class:`~repro.core.mrd_table.MrdTable`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.dag_builder import ApplicationDAG


@dataclass(frozen=True, order=True)
class Reference:
    """One anticipated cache read of ``rdd_id`` at stage ``seq``."""

    seq: int
    job_id: int
    rdd_id: int


def parse_job_references(dag: ApplicationDAG, job_id: int) -> list[Reference]:
    """References contributed by one job's DAG (the ad-hoc unit).

    This is what the paper's ``parseDAG`` API produces when the
    DAGScheduler hands over a newly submitted job.
    """
    if not 0 <= job_id < dag.num_jobs:
        raise ValueError(f"job {job_id} out of range (app has {dag.num_jobs} jobs)")
    refs: list[Reference] = []
    for stage_id in dag.jobs[job_id].active_stage_ids:
        stage = dag.stage(stage_id)
        for rdd in stage.cache_reads:
            refs.append(Reference(seq=stage.seq, job_id=job_id, rdd_id=rdd.id))
    refs.sort()
    return refs


def parse_application_references(dag: ApplicationDAG) -> list[Reference]:
    """All references of the whole application (the recurring-mode view)."""
    refs: list[Reference] = []
    for job in dag.jobs:
        refs.extend(parse_job_references(dag, job.id))
    refs.sort()
    return refs


def cached_rdds_created_in_job(dag: ApplicationDAG, job_id: int) -> list[int]:
    """Cached RDD ids first computed during ``job_id``.

    Ad-hoc profiling learns about an RDD's existence when the job that
    creates it is submitted, even if that job never re-reads it.
    """
    out: list[int] = []
    for rdd_id, prof in dag.profiles.items():
        if prof.created_job == job_id:
            out.append(rdd_id)
    return sorted(out)
