"""MRD — the paper's core contribution: reference-distance cache management."""

from repro.core.app_profiler import AppProfiler, ApplicationProfile, ProfileStore
from repro.core.cache_monitor import CacheMonitor, CacheStatus
from repro.core.manager import MrdConfig, MrdManager, StagePlan
from repro.core.mrd_table import INFINITE, MrdTable
from repro.core.policy import MrdScheme
from repro.core.reference_distance import (
    Reference,
    cached_rdds_created_in_job,
    parse_application_references,
    parse_job_references,
)

__all__ = [
    "AppProfiler",
    "ApplicationProfile",
    "CacheMonitor",
    "CacheStatus",
    "INFINITE",
    "MrdConfig",
    "MrdManager",
    "MrdScheme",
    "MrdTable",
    "ProfileStore",
    "Reference",
    "StagePlan",
    "cached_rdds_created_in_job",
    "parse_application_references",
    "parse_job_references",
]
