"""MRDmanager: the centralized brain of the MRD policy.

Owns the :class:`MrdTable`, advances it at every stage boundary,
detects RDDs whose reference distance reached infinity (→ cluster-wide
purge orders, Algorithm 1 lines 13–17) and selects prefetch targets per
node (lines 24–29): lowest finite distance first, fetched when the
block fits in free memory or when free memory exceeds the configured
threshold (25 % of cache in the paper, which may force the eviction of
the largest-distance blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.block import Block, BlockId
from repro.cluster.cluster import Cluster
from repro.core.app_profiler import AppProfiler
from repro.core.mrd_table import MrdTable
from repro.dag.dag_builder import ApplicationDAG

if TYPE_CHECKING:  # pragma: no cover
    from repro.control.messages import CacheStatusReport


@dataclass(frozen=True)
class MrdConfig:
    """Tunable knobs of the MRD policy.

    ``metric``: "stage" (paper default) or "job" (Fig. 8 ablation).
    ``prefetch_threshold``: free-memory fraction above which prefetching
    may force evictions (paper: 0.25).
    ``adaptive_threshold``: make the threshold dynamic — the paper's
    declared future work ("modifying the prefetching memory threshold
    to be dynamic and automated", §6).  The controller raises the
    threshold (more conservative) when recent prefetches go unused and
    lowers it when they are consumed.
    ``max_prefetch_per_node``: implementation bound on prefetch orders
    issued per node per stage boundary, so the aggressive policy cannot
    queue unbounded disk traffic.
    ``eager_purge``: issue all-out purge orders for dead RDDs instead of
    waiting for memory pressure (paper behaviour; ablation flag).
    ``guarded_prefetch``: only force an eviction for a prefetch when the
    incoming block's distance beats the victim's (the paper leaves this
    check as future work and ships without it).
    """

    metric: str = "stage"
    prefetch_threshold: float = 0.25
    adaptive_threshold: bool = False
    max_prefetch_per_node: int = 8
    eager_purge: bool = True
    guarded_prefetch: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.prefetch_threshold <= 1.0:
            raise ValueError("prefetch_threshold must be in [0, 1]")
        if self.max_prefetch_per_node < 0:
            raise ValueError("max_prefetch_per_node must be non-negative")


class AdaptiveThresholdController:
    """Waste-driven controller for the prefetch memory threshold.

    Each stage boundary it looks at the prefetches completed since the
    last boundary: a high unused fraction means the aggressive policy is
    churning the cache, so the free-memory bar is raised; near-complete
    consumption lowers it.  Bounded multiplicative steps keep the
    threshold stable (AIMD-flavoured, like TCP's congestion window).
    """

    def __init__(
        self,
        initial: float = 0.25,
        lo: float = 0.02,
        hi: float = 0.9,
        raise_factor: float = 1.5,
        lower_factor: float = 0.8,
        waste_high: float = 0.5,
        waste_low: float = 0.1,
    ) -> None:
        if not lo <= initial <= hi:
            raise ValueError("initial threshold must lie within [lo, hi]")
        self.value = initial
        self.lo = lo
        self.hi = hi
        self.raise_factor = raise_factor
        self.lower_factor = lower_factor
        self.waste_high = waste_high
        self.waste_low = waste_low
        self._last_issued = 0
        self._last_used = 0

    def update(self, total_issued: int, total_used: int) -> float:
        """Feed cumulative counters; returns the new threshold."""
        issued = total_issued - self._last_issued
        used = total_used - self._last_used
        self._last_issued = total_issued
        self._last_used = total_used
        if issued > 0:
            waste = 1.0 - used / issued
            if waste >= self.waste_high:
                self.value = min(self.value * self.raise_factor, self.hi)
            elif waste <= self.waste_low:
                self.value = max(self.value * self.lower_factor, self.lo)
        return self.value


@dataclass
class StagePlan:
    """Orders the manager issues at one stage boundary."""

    purge_rdds: list[int] = field(default_factory=list)
    prefetches: list[Block] = field(default_factory=list)


class MrdManager:
    """Centralized MRD state machine (one per application run)."""

    def __init__(
        self,
        dag: ApplicationDAG,
        profiler: AppProfiler,
        config: MrdConfig | None = None,
    ) -> None:
        self.dag = dag
        self.profiler = profiler
        self.config = config or MrdConfig()
        self.table = MrdTable(metric=self.config.metric)
        self.table.add_references(profiler.initial_references())
        self.threshold_controller = (
            AdaptiveThresholdController(initial=self.config.prefetch_threshold)
            if self.config.adaptive_threshold
            else None
        )
        self._purged: set[int] = set()
        #: rdd ids whose blocks exist (have been computed) — only these
        #: can be purged or prefetched.
        self._materialized: set[int] = set()
        #: This application's rdd-id universe.  On a shared (multi-
        #: tenant) cluster the node stores also hold other applications'
        #: blocks; every store scan below must ignore those — a foreign
        #: block is not "infinitely distant data worth evicting", it is
        #: simply not ours to reason about.
        self._known_rdds: set[int] = {r.id for r in dag.app.rdds}
        #: Largest number of references ever held by the MRD_Table — the
        #: paper's storage-overhead metric (§4.4: "the largest MRD_Table
        #: ... contained less than 300 references").
        self.max_table_size = self.table.size()
        #: Latest cache-status report per node, as delivered through the
        #: control plane.  Under the instant plane this always matches
        #: live state at selection time; under rpc it lags by at least
        #: one message latency.
        self.status_view: dict[int, CacheStatusReport] = {}

    # ------------------------------------------------------------------
    # lifecycle notifications from the scheduler
    # ------------------------------------------------------------------
    def on_job_submit(self, job_id: int) -> None:
        refs, created = self.profiler.on_job_submit(job_id)
        self.table.add_references(refs)
        self.max_table_size = max(self.max_table_size, self.table.size())
        for rdd_id in created:
            self.table.track(rdd_id)
        # New information can resurrect an RDD we purged earlier
        # (ad-hoc mode): allow it to be purged again later.
        self._purged -= {r.rdd_id for r in refs}

    def on_block_created(self, rdd_id: int) -> None:
        """A cached RDD's blocks entered the cluster (first computation)."""
        self._materialized.add(rdd_id)

    def on_cache_status(self, report: CacheStatusReport) -> None:
        """A worker's ``reportCacheStatus`` message arrived at the driver.

        Keeps the newest report per node by send time — a reordered rpc
        delivery carrying older data than the view must not regress it.
        """
        held = self.status_view.get(report.node_id)
        if held is not None and held.sent_at > report.sent_at:
            return
        self.status_view[report.node_id] = report

    def on_worker_deregister(self, node_id: int) -> None:
        """A worker left the cluster: its reported status is void."""
        self.status_view.pop(node_id, None)

    def reported_hit_ratio(self) -> float | None:
        """Mean hit ratio across reporting nodes, ignoring idle ones.

        Nodes that have served no cached reads report ``hit_ratio=None``
        and are excluded; returns ``None`` when no node has data yet.
        """
        ratios = [
            r.hit_ratio for r in self.status_view.values() if r.hit_ratio is not None
        ]
        if not ratios:
            return None
        return sum(ratios) / len(ratios)

    def on_stage_start(self, seq: int, cluster: Cluster) -> StagePlan:
        """Advance distances; emit purge + prefetch orders."""
        job_id = self.dag.job_of_seq(seq)
        self.table.advance(seq, job_id)
        plan = StagePlan()
        if self.config.eager_purge:
            plan.purge_rdds = self._select_purges()
        plan.prefetches = self._select_prefetches(cluster)
        return plan

    def distance(self, rdd_id: int) -> float:
        """Current reference distance (the CacheMonitors' lookup)."""
        return self.table.distance(rdd_id)

    # ------------------------------------------------------------------
    # order selection
    # ------------------------------------------------------------------
    def _select_purges(self) -> list[int]:
        purges = [
            rdd_id
            for rdd_id in self.table.dead_rdds()
            if rdd_id in self._materialized and rdd_id not in self._purged
        ]
        self._purged.update(purges)
        return purges

    def current_threshold(self, cluster: Cluster) -> float:
        """Effective prefetch threshold (fixed, or controller-driven)."""
        if self.threshold_controller is None:
            return self.config.prefetch_threshold
        stats = cluster.master.total_stats()
        return self.threshold_controller.update(
            stats.prefetches_issued, stats.prefetches_used
        )

    def _select_prefetches(self, cluster: Cluster) -> list[Block]:
        cfg = self.config
        if cfg.max_prefetch_per_node == 0:
            return []
        threshold = self.current_threshold(cluster)
        master = cluster.master
        rdd_by_id = self.dag.app.rdd_by_id
        live_nodes = master.live_nodes()
        capacity = {n.node_id: n.memory.capacity_mb for n in live_nodes}
        # Free memory starts from each node's *reported* status when one
        # has been delivered (the paper's reportCacheStatus loop) and
        # falls back to live state for nodes that never reported.  Block
        # residency and the worst-resident distance below stay live — a
        # modelling simplification documented in docs/architecture.md.
        free = {
            n.node_id: (
                self.status_view[n.node_id].free_mb
                if n.node_id in self.status_view
                else n.memory.free_mb
            )
            for n in live_nodes
        }
        issued = {n.node_id: 0 for n in live_nodes}
        # Worst (largest) resident distance per node, for the guarded
        # forced-prefetch path; computed once per stage boundary.
        worst_resident = {
            m.node.node_id: self._worst_cached_distance(m)
            for m in master.live_managers()
        }
        orders: list[Block] = []
        managers = master.managers
        place = master.placement.place
        per_node_cap = cfg.max_prefetch_per_node
        max_total = per_node_cap * len(live_nodes)
        issued_total = 0
        for dist, rdd_id in self.table.candidates_by_distance():
            if issued_total >= max_total:
                # Every live node is at its per-node cap (the total only
                # reaches live_count * cap when each node contributed
                # exactly cap): no later candidate can be issued.
                break
            if rdd_id not in self._materialized:
                continue
            rdd = rdd_by_id(rdd_id)
            size_mb = rdd.partition_size_mb
            rdd_name = rdd.name
            for p in range(rdd.num_partitions):
                node_id = place(p)
                if issued[node_id] >= per_node_cap:
                    continue
                bid = BlockId(rdd_id, p)
                mgr = managers[node_id]
                if bid in mgr.node.memory or bid in mgr.inflight_prefetch:
                    continue
                if bid not in mgr.node.disk:
                    continue
                fits = size_mb <= free[node_id]
                cap = capacity[node_id]
                above_threshold = cap > 0 and free[node_id] / cap >= threshold
                if not fits:
                    if above_threshold:
                        # Paper's aggressive path: free memory beyond the
                        # threshold, prefetch even if it forces evictions
                        # (unguarded unless configured otherwise).
                        if cfg.guarded_prefetch and worst_resident[node_id] <= dist:
                            continue
                    else:
                        # Below the threshold: forced prefetch is allowed
                        # only when the incoming block is strictly more
                        # urgent than the worst resident block — the
                        # CacheMonitor's local memory-pressure decision.
                        if worst_resident[node_id] <= dist:
                            continue
                orders.append(Block(id=bid, size_mb=size_mb, rdd_name=rdd_name))
                issued[node_id] += 1
                issued_total += 1
                free[node_id] = max(0.0, free[node_id] - size_mb)
        return orders

    def _worst_cached_distance(self, mgr) -> float:
        known = self._known_rdds
        return self.table.worst_distance(
            r for r in mgr.node.memory.resident_rdd_ids() if r in known
        )

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Application finished: let the profiler persist its profile."""
        self.profiler.finalize()
