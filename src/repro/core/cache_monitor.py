"""CacheMonitor: MRD's per-worker eviction logic.

Deployed on every node, the monitor holds a copy of the
reference-distance profile — refreshed by the driver's per-boundary
:class:`~repro.control.messages.StageBoundary` table broadcast, with a
fall-through to the shared :class:`MrdManager` for monitors that were
never wired through a control plane (unit tests, direct construction) —
and picks eviction victims locally: the block with the *greatest*
reference distance goes first, infinite-distance blocks leading, ties
broken by least recent use.  It also reports cache status back to the
manager (``reportCacheStatus`` in the paper's API table).

Under the ``rpc`` control plane the broadcast arrives late, so the
monitor evicts against the *previous* boundary's distances until the
new snapshot lands — the worker-side staleness the distributed design
has to live with.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, insort
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.block import Block, BlockId
from repro.core.manager import MrdManager
from repro.core.mrd_table import INFINITE
from repro.policies.base import BATCH_UNSUPPORTED, BatchUnsupported, EvictionPolicy
from repro.policies.vectorized import select_block_victims

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.memory_store import MemoryStore


@dataclass(frozen=True)
class CacheStatus:
    """Periodic node report consumed by the MRDmanager.

    ``hit_ratio`` is ``None`` for a node that has served no cached
    reads yet (``BlockManagerStats.hit_ratio`` reports idle nodes as
    ``None`` rather than dragging cluster averages to zero).
    """

    node_id: int
    used_mb: float
    free_mb: float
    hit_ratio: float | None
    num_blocks: int


class MrdTableView:
    """Worker-local view of the driver's MRD_Table.

    Distance lookups go through the last delivered table broadcast when
    one exists; before any broadcast (or outside an engine run) they
    fall back to the live shared manager — which is exactly what an
    instantly-delivered snapshot would answer, since the table only
    changes at stage boundaries.
    """

    #: Last delivered snapshot (shared, read-only) and its boundary seq.
    _distances: Mapping[int, float] | None = None
    _view_seq: int = -1

    def on_table_update(self, seq: int, distances: Mapping[int, float]) -> bool:
        """Replace the local view; refuse snapshots older than held."""
        if seq < self._view_seq:
            return False
        self._view_seq = seq
        self._distances = distances
        return True

    def lookup_distance(self, rdd_id: int) -> float:
        view = self._distances
        if view is not None:
            return view.get(rdd_id, INFINITE)
        return self._live_distance(rdd_id)

    def _live_distance(self, rdd_id: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


#: Tie-breaking rules for blocks with equal reference distance.  The
#: paper leaves tie prioritization as future work (§3.3); every rule
#: here is *stable* (no recency), which is the property that prevents
#: cyclic-scan thrash within an RDD:
#:
#: * ``"partition"`` — evict the highest partition index first (default;
#:   keeps a fixed low-index subset resident).
#: * ``"size"``      — evict the largest block first (frees the most
#:   space per eviction, keeps more distinct blocks resident).
#: * ``"creation"``  — evict the youngest RDD first (favours long-lived
#:   data like graph edges over per-iteration temporaries).
TIE_BREAKERS = ("partition", "size", "creation")


class CacheMonitor(MrdTableView, EvictionPolicy):
    """Greatest-reference-distance eviction for one node."""

    name = "MRD-CacheMonitor"

    def __init__(
        self, node_id: int, manager: MrdManager, tie_breaker: str = "partition"
    ) -> None:
        if tie_breaker not in TIE_BREAKERS:
            raise ValueError(
                f"tie_breaker must be one of {TIE_BREAKERS}, got {tie_breaker!r}"
            )
        self.node_id = node_id
        self.manager = manager
        self.tie_breaker = tie_breaker
        self._touch = itertools.count()
        self._last_touch: dict[BlockId, int] = {}
        #: Block sizes observed at insertion (for the "size" rule).
        self._sizes: dict[BlockId, float] = {}
        #: Key column lags the distance view until the first batch
        #: selection (and again after each accepted broadcast) refreshes
        #: it — per-insert key writes only resume once a refresh proved
        #: the column is actually consulted.
        self._keys_dirty = True
        #: Incrementally maintained eviction order: ``(evict_key, id)``
        #: tuples, sorted, covering exactly the blocks this monitor
        #: manages.  ``_evict_key`` contains *no recency term*, so the
        #: order only changes on insert/remove (maintained by binary
        #: insertion/deletion) and on an accepted table broadcast (full
        #: invalidation) — selections walk it in O(victims) instead of
        #: re-sorting the store.  ``None`` = rebuild on next selection.
        self._order: list[tuple[tuple[float, float, int, int], BlockId]] | None = None

    def _live_distance(self, rdd_id: int) -> float:
        return self.manager.distance(rdd_id)

    def on_insert(self, block: Block) -> None:
        self._last_touch[block.id] = next(self._touch)
        self._sizes[block.id] = block.size_mb
        if self._store is not None and not self._keys_dirty:
            self._store.set_key(block.id, -self.lookup_distance(block.id.rdd_id))
        if self._order is not None:
            insort(self._order, (self._evict_key(block.id), block.id))

    def on_access(self, block: Block) -> None:
        self._last_touch[block.id] = next(self._touch)

    def on_table_update(self, seq: int, distances: Mapping[int, float]) -> bool:
        applied = super().on_table_update(seq, distances)
        if applied:
            self._keys_dirty = True
            self._order = None
        return applied

    def _refresh_keys(self) -> None:
        """Rewrite this monitor's key-column entries from the held view.

        Iterates only the blocks this monitor manages (``_sizes``), so
        co-tenant rows on a shared columnar store are never touched.
        """
        store = self._store
        assert store is not None
        self._keys_dirty = False
        keys: dict[int, float] = {}
        for bid in self._sizes:
            key = keys.get(bid.rdd_id)
            if key is None:
                key = -self.lookup_distance(bid.rdd_id)
                keys[bid.rdd_id] = key
            store.set_key(bid, key)

    def on_remove(self, block_id: BlockId) -> None:
        order = self._order
        if order is not None:
            # Key recomputation is exact: the held view cannot have
            # changed since the entry was inserted (an accepted update
            # clears the order) and ``_sizes`` is popped only below.
            entry = (self._evict_key(block_id), block_id)
            i = bisect_left(order, entry)
            if i < len(order) and order[i] == entry:
                del order[i]
            else:  # pragma: no cover - defensive: untracked removal
                self._order = None
        self._last_touch.pop(block_id, None)
        self._sizes.pop(block_id, None)

    def eviction_order(self, store: MemoryStore) -> Iterator[BlockId]:
        # Largest distance first (inf ahead of any finite value).  Ties
        # — all blocks of one RDD share a distance — break on
        # *descending partition index*: a stable rule that keeps a fixed
        # subset of a partially-cached RDD resident instead of cycling
        # through it (LRU tie-breaking degenerates to zero hits on
        # cyclic scans of a working set larger than the cache).
        return iter(sorted(store.block_ids(), key=self._evict_key))

    def admit_over(self, block: Block, victims: list[BlockId], store: MemoryStore) -> bool:
        """Only displace blocks that are strictly worse than the newcomer.

        A block whose eviction key ranks at-or-before every victim's
        would itself be the next thing evicted — caching it would churn
        a more valuable resident block for no benefit.
        """
        incoming = self._evict_key(block.id)
        return all(incoming > self._evict_key(v) for v in victims)

    def _evict_key(self, bid: BlockId) -> tuple[float, float, int, int]:
        dist = self.lookup_distance(bid.rdd_id)
        if self.tie_breaker == "size":
            tie = -self._sizes.get(bid, 0.0)
        elif self.tie_breaker == "creation":
            tie = -float(bid.rdd_id)
        else:  # "partition"
            tie = 0.0
        return (-dist, tie, -bid.partition, -bid.rdd_id)

    def select_victims(
        self,
        store: MemoryStore,
        needed_mb: float,
        protect: frozenset[BlockId] = frozenset(),
        for_prefetch: bool = False,
    ) -> list[BlockId] | None:
        """Walk the incrementally maintained order instead of sorting.

        Engages only with a bound columnar store *and* a delivered table
        snapshot (live manager distances can drift without notice), and
        only when the maintained order covers exactly the blocks of the
        store being asked about — anything else falls back to the base
        batch-then-reference path.  Prefetch selections share the demand
        order (this policy defines no separate prefetch order).
        """
        if self._store is None or self._distances is None:
            return super().select_victims(store, needed_mb, protect, for_prefetch)
        order = self._order
        if order is None:
            order = self._order = sorted(
                (self._evict_key(bid), bid) for bid in self._sizes
            )
        if len(order) != len(store):
            return super().select_victims(store, needed_mb, protect, for_prefetch)
        victims: list[BlockId] = []
        freed = 0.0
        is_pinned = store.is_pinned
        block = store.block
        for _, bid in order:
            if freed >= needed_mb:
                break
            if bid in protect or is_pinned(bid):
                continue
            victims.append(bid)
            freed += block(bid).size_mb
        if freed >= needed_mb:
            return victims
        return None

    def select_victims_batch(
        self,
        store: MemoryStore,
        needed_mb: float,
        protect: frozenset[BlockId] = frozenset(),
        for_prefetch: bool = False,
    ) -> list[BlockId] | None | BatchUnsupported:
        st = self._store
        if st is None or st is not store or self._distances is None:
            # No delivered table snapshot: distances come live from the
            # shared manager and can drift without a broadcast to dirty
            # the key column, so only the object walk is safe.
            return BATCH_UNSUPPORTED
        st.ensure_columns()
        if self._keys_dirty:
            self._refresh_keys()
        cols = st.columns()
        # Primary: negated distance (largest distance first).  Tie
        # columns mirror ``_evict_key``'s tail, ending in the id
        # columns so the composite order is total.
        ties: tuple
        if self.tie_breaker == "size":
            ties = (-cols.rdd, -cols.part, -cols.size)
        elif self.tie_breaker == "creation":
            ties = (-cols.part, -cols.rdd)
        else:  # "partition"
            ties = (-cols.rdd, -cols.part)
        return select_block_victims(st, cols, needed_mb, protect, cols.key, ties)

    def report_cache_status(
        self, store: MemoryStore, hit_ratio: float | None
    ) -> CacheStatus:
        """Build the periodic status report for the MRDmanager.

        ``hit_ratio`` may be ``None`` for a node that has served no
        cached reads yet; the report forwards it untouched and the
        manager's consumers treat such nodes as idle.
        """
        return CacheStatus(
            node_id=self.node_id,
            used_mb=store.used_mb,
            free_mb=store.free_mb,
            hit_ratio=hit_ratio,
            num_blocks=len(store),
        )
