"""CacheMonitor: MRD's per-worker eviction logic.

Deployed on every node, the monitor holds a (conceptual) copy of the
reference-distance profile — here a handle to the shared
:class:`MrdManager`, since a deterministic simulator needs no message
passing — and picks eviction victims locally: the block with the
*greatest* reference distance goes first, infinite-distance blocks
leading, ties broken by least recent use.  It also reports cache status
back to the manager (``reportCacheStatus`` in the paper's API table).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.cluster.block import Block, BlockId
from repro.core.manager import MrdManager
from repro.policies.base import EvictionPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.memory_store import MemoryStore


@dataclass(frozen=True)
class CacheStatus:
    """Periodic node report consumed by the MRDmanager."""

    node_id: int
    used_mb: float
    free_mb: float
    hit_ratio: float
    num_blocks: int


#: Tie-breaking rules for blocks with equal reference distance.  The
#: paper leaves tie prioritization as future work (§3.3); every rule
#: here is *stable* (no recency), which is the property that prevents
#: cyclic-scan thrash within an RDD:
#:
#: * ``"partition"`` — evict the highest partition index first (default;
#:   keeps a fixed low-index subset resident).
#: * ``"size"``      — evict the largest block first (frees the most
#:   space per eviction, keeps more distinct blocks resident).
#: * ``"creation"``  — evict the youngest RDD first (favours long-lived
#:   data like graph edges over per-iteration temporaries).
TIE_BREAKERS = ("partition", "size", "creation")


class CacheMonitor(EvictionPolicy):
    """Greatest-reference-distance eviction for one node."""

    name = "MRD-CacheMonitor"

    def __init__(
        self, node_id: int, manager: MrdManager, tie_breaker: str = "partition"
    ) -> None:
        if tie_breaker not in TIE_BREAKERS:
            raise ValueError(
                f"tie_breaker must be one of {TIE_BREAKERS}, got {tie_breaker!r}"
            )
        self.node_id = node_id
        self.manager = manager
        self.tie_breaker = tie_breaker
        self._touch = itertools.count()
        self._last_touch: dict[BlockId, int] = {}
        #: Block sizes observed at insertion (for the "size" rule).
        self._sizes: dict[BlockId, float] = {}

    def on_insert(self, block: Block) -> None:
        self._last_touch[block.id] = next(self._touch)
        self._sizes[block.id] = block.size_mb

    def on_access(self, block: Block) -> None:
        self._last_touch[block.id] = next(self._touch)

    def on_remove(self, block_id: BlockId) -> None:
        self._last_touch.pop(block_id, None)
        self._sizes.pop(block_id, None)

    def eviction_order(self, store: "MemoryStore") -> Iterator[BlockId]:
        # Largest distance first (inf ahead of any finite value).  Ties
        # — all blocks of one RDD share a distance — break on
        # *descending partition index*: a stable rule that keeps a fixed
        # subset of a partially-cached RDD resident instead of cycling
        # through it (LRU tie-breaking degenerates to zero hits on
        # cyclic scans of a working set larger than the cache).
        return iter(sorted(store.block_ids(), key=self._evict_key))

    def admit_over(self, block: Block, victims: list[BlockId], store: "MemoryStore") -> bool:
        """Only displace blocks that are strictly worse than the newcomer.

        A block whose eviction key ranks at-or-before every victim's
        would itself be the next thing evicted — caching it would churn
        a more valuable resident block for no benefit.
        """
        incoming = self._evict_key(block.id)
        return all(incoming > self._evict_key(v) for v in victims)

    def _evict_key(self, bid: BlockId) -> tuple[float, float, int, int]:
        dist = self.manager.distance(bid.rdd_id)
        if self.tie_breaker == "size":
            tie = -self._sizes.get(bid, 0.0)
        elif self.tie_breaker == "creation":
            tie = -float(bid.rdd_id)
        else:  # "partition"
            tie = 0.0
        return (-dist, tie, -bid.partition, -bid.rdd_id)

    def report_cache_status(self, store: "MemoryStore", hit_ratio: float) -> CacheStatus:
        """Build the periodic status report for the MRDmanager."""
        return CacheStatus(
            node_id=self.node_id,
            used_mb=store.used_mb,
            free_mb=store.free_mb,
            hit_ratio=hit_ratio,
            num_blocks=len(store),
        )
