"""CacheMonitor: MRD's per-worker eviction logic.

Deployed on every node, the monitor holds a copy of the
reference-distance profile — refreshed by the driver's per-boundary
:class:`~repro.control.messages.StageBoundary` table broadcast, with a
fall-through to the shared :class:`MrdManager` for monitors that were
never wired through a control plane (unit tests, direct construction) —
and picks eviction victims locally: the block with the *greatest*
reference distance goes first, infinite-distance blocks leading, ties
broken by least recent use.  It also reports cache status back to the
manager (``reportCacheStatus`` in the paper's API table).

Under the ``rpc`` control plane the broadcast arrives late, so the
monitor evicts against the *previous* boundary's distances until the
new snapshot lands — the worker-side staleness the distributed design
has to live with.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.block import Block, BlockId
from repro.core.manager import MrdManager
from repro.core.mrd_table import INFINITE
from repro.policies.base import EvictionPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.memory_store import MemoryStore


@dataclass(frozen=True)
class CacheStatus:
    """Periodic node report consumed by the MRDmanager.

    ``hit_ratio`` is ``None`` for a node that has served no cached
    reads yet (``BlockManagerStats.hit_ratio`` reports idle nodes as
    ``None`` rather than dragging cluster averages to zero).
    """

    node_id: int
    used_mb: float
    free_mb: float
    hit_ratio: float | None
    num_blocks: int


class MrdTableView:
    """Worker-local view of the driver's MRD_Table.

    Distance lookups go through the last delivered table broadcast when
    one exists; before any broadcast (or outside an engine run) they
    fall back to the live shared manager — which is exactly what an
    instantly-delivered snapshot would answer, since the table only
    changes at stage boundaries.
    """

    #: Last delivered snapshot (shared, read-only) and its boundary seq.
    _distances: Mapping[int, float] | None = None
    _view_seq: int = -1

    def on_table_update(self, seq: int, distances: Mapping[int, float]) -> bool:
        """Replace the local view; refuse snapshots older than held."""
        if seq < self._view_seq:
            return False
        self._view_seq = seq
        self._distances = distances
        return True

    def lookup_distance(self, rdd_id: int) -> float:
        view = self._distances
        if view is not None:
            return view.get(rdd_id, INFINITE)
        return self._live_distance(rdd_id)

    def _live_distance(self, rdd_id: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


#: Tie-breaking rules for blocks with equal reference distance.  The
#: paper leaves tie prioritization as future work (§3.3); every rule
#: here is *stable* (no recency), which is the property that prevents
#: cyclic-scan thrash within an RDD:
#:
#: * ``"partition"`` — evict the highest partition index first (default;
#:   keeps a fixed low-index subset resident).
#: * ``"size"``      — evict the largest block first (frees the most
#:   space per eviction, keeps more distinct blocks resident).
#: * ``"creation"``  — evict the youngest RDD first (favours long-lived
#:   data like graph edges over per-iteration temporaries).
TIE_BREAKERS = ("partition", "size", "creation")


class CacheMonitor(MrdTableView, EvictionPolicy):
    """Greatest-reference-distance eviction for one node."""

    name = "MRD-CacheMonitor"

    def __init__(
        self, node_id: int, manager: MrdManager, tie_breaker: str = "partition"
    ) -> None:
        if tie_breaker not in TIE_BREAKERS:
            raise ValueError(
                f"tie_breaker must be one of {TIE_BREAKERS}, got {tie_breaker!r}"
            )
        self.node_id = node_id
        self.manager = manager
        self.tie_breaker = tie_breaker
        self._touch = itertools.count()
        self._last_touch: dict[BlockId, int] = {}
        #: Block sizes observed at insertion (for the "size" rule).
        self._sizes: dict[BlockId, float] = {}

    def _live_distance(self, rdd_id: int) -> float:
        return self.manager.distance(rdd_id)

    def on_insert(self, block: Block) -> None:
        self._last_touch[block.id] = next(self._touch)
        self._sizes[block.id] = block.size_mb

    def on_access(self, block: Block) -> None:
        self._last_touch[block.id] = next(self._touch)

    def on_remove(self, block_id: BlockId) -> None:
        self._last_touch.pop(block_id, None)
        self._sizes.pop(block_id, None)

    def eviction_order(self, store: MemoryStore) -> Iterator[BlockId]:
        # Largest distance first (inf ahead of any finite value).  Ties
        # — all blocks of one RDD share a distance — break on
        # *descending partition index*: a stable rule that keeps a fixed
        # subset of a partially-cached RDD resident instead of cycling
        # through it (LRU tie-breaking degenerates to zero hits on
        # cyclic scans of a working set larger than the cache).
        return iter(sorted(store.block_ids(), key=self._evict_key))

    def admit_over(self, block: Block, victims: list[BlockId], store: MemoryStore) -> bool:
        """Only displace blocks that are strictly worse than the newcomer.

        A block whose eviction key ranks at-or-before every victim's
        would itself be the next thing evicted — caching it would churn
        a more valuable resident block for no benefit.
        """
        incoming = self._evict_key(block.id)
        return all(incoming > self._evict_key(v) for v in victims)

    def _evict_key(self, bid: BlockId) -> tuple[float, float, int, int]:
        dist = self.lookup_distance(bid.rdd_id)
        if self.tie_breaker == "size":
            tie = -self._sizes.get(bid, 0.0)
        elif self.tie_breaker == "creation":
            tie = -float(bid.rdd_id)
        else:  # "partition"
            tie = 0.0
        return (-dist, tie, -bid.partition, -bid.rdd_id)

    def report_cache_status(
        self, store: MemoryStore, hit_ratio: float | None
    ) -> CacheStatus:
        """Build the periodic status report for the MRDmanager.

        ``hit_ratio`` may be ``None`` for a node that has served no
        cached reads yet; the report forwards it untouched and the
        manager's consumers treat such nodes as idle.
        """
        return CacheStatus(
            node_id=self.node_id,
            used_mb=store.used_mb,
            free_mb=store.free_mb,
            hit_ratio=hit_ratio,
            num_blocks=len(store),
        )
