"""AppProfiler: builds and stores reference-distance profiles.

Two modi operandi (paper §4.1):

* **ad-hoc** — the application has never been profiled.  Each time the
  DAGScheduler submits a job, the profiler parses that job's DAG and
  hands the new references to the MRDmanager.  References in future
  jobs are unknown until those jobs are submitted.
* **recurring** — a complete profile from a previous run exists in the
  :class:`ProfileStore`; the profiler sends the entire application's
  references to the manager up front.

The profile store persists profiles across runs (JSON on disk when a
path is given), covering the paper's fault-tolerance note that a
partially profiled application resumes profiling on its next run.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path

logger = logging.getLogger(__name__)

from repro.core.reference_distance import (
    Reference,
    cached_rdds_created_in_job,
    parse_application_references,
    parse_job_references,
)
from repro.dag.dag_builder import ApplicationDAG


@dataclass
class ApplicationProfile:
    """Stored reference-distance profile of one application signature."""

    signature: str
    references: list[Reference] = field(default_factory=list)
    num_jobs_profiled: int = 0
    complete: bool = False

    def to_json(self) -> dict:
        return {
            "signature": self.signature,
            "references": [[r.seq, r.job_id, r.rdd_id] for r in self.references],
            "num_jobs_profiled": self.num_jobs_profiled,
            "complete": self.complete,
        }

    @classmethod
    def from_json(cls, data: dict) -> ApplicationProfile:
        return cls(
            signature=data["signature"],
            references=[Reference(seq=s, job_id=j, rdd_id=r) for s, j, r in data["references"]],
            num_jobs_profiled=data["num_jobs_profiled"],
            complete=data["complete"],
        )


class ProfileStore:
    """Profiles keyed by application signature, optionally file-backed."""

    def __init__(self, path: Path | None = None) -> None:
        self.path = Path(path) if path else None
        self._profiles: dict[str, ApplicationProfile] = {}
        if self.path and self.path.exists():
            self._load()

    def get(self, signature: str) -> ApplicationProfile | None:
        return self._profiles.get(signature)

    def put(self, profile: ApplicationProfile) -> None:
        self._profiles[profile.signature] = profile
        if self.path:
            self._save()

    def _save(self) -> None:
        assert self.path is not None
        payload = {sig: p.to_json() for sig, p in self._profiles.items()}
        self.path.write_text(json.dumps(payload))

    def _load(self) -> None:
        """Load profiles from disk, ignoring corrupted or truncated files.

        A damaged profile store must never take the application down —
        it is treated as empty (first-run behaviour: the profiler works
        without stored references) and a fresh profile overwrites the
        bad file on the next ``put``.
        """
        assert self.path is not None
        try:
            payload = json.loads(self.path.read_text())
            self._profiles = {
                sig: ApplicationProfile.from_json(data)
                for sig, data in payload.items()
            }
        except (OSError, ValueError, KeyError, TypeError, AttributeError) as exc:
            logger.warning(
                "ignoring unreadable profile store %s (%s: %s); "
                "falling back to first-run (ad-hoc) profiling behaviour",
                self.path, type(exc).__name__, exc,
            )
            self._profiles = {}


class AppProfiler:
    """Parses job DAGs into references and maintains the stored profile."""

    def __init__(
        self,
        dag: ApplicationDAG,
        mode: str = "recurring",
        store: ProfileStore | None = None,
    ) -> None:
        if mode not in ("adhoc", "recurring"):
            raise ValueError(f"mode must be 'adhoc' or 'recurring', got {mode!r}")
        self.dag = dag
        self.store = store or ProfileStore()
        self.signature = dag.app.signature
        self._building = ApplicationProfile(signature=self.signature)
        stored = self.store.get(self.signature)
        #: Effective mode: a recurring request degrades to ad-hoc when no
        #: complete stored profile exists yet (first run of the app).
        if mode == "recurring" and stored is not None and not stored.complete:
            mode = "adhoc"
        self.mode = mode

    # ------------------------------------------------------------------
    def initial_references(self) -> list[Reference]:
        """References known before the first job runs.

        Recurring mode sends the whole application DAG's profile to the
        MRDmanager immediately (paper: "the AppProfiler instead can send
        the entire application DAG").
        """
        if self.mode == "recurring":
            stored = self.store.get(self.signature)
            if stored is not None and stored.complete:
                return list(stored.references)
            # No stored profile: derive it from the full DAG (equivalent
            # to having profiled an identical earlier run).
            return parse_application_references(self.dag)
        return []

    def on_job_submit(self, job_id: int) -> tuple[list[Reference], list[int]]:
        """New references and newly created cached RDDs for ``job_id``.

        In recurring mode everything was delivered up front, so job
        submissions only confirm (no discrepancy handling is needed in
        a deterministic simulation).  In ad-hoc mode this is the only
        source of information; it also appends to the profile being
        built for future runs.
        """
        created = cached_rdds_created_in_job(self.dag, job_id)
        if self.mode == "recurring":
            return [], created
        refs = parse_job_references(self.dag, job_id)
        self._building.references.extend(refs)
        self._building.num_jobs_profiled = job_id + 1
        return refs, created

    def finalize(self) -> None:
        """Application finished: persist the (now complete) profile."""
        if self.mode == "adhoc":
            self._building.complete = self._building.num_jobs_profiled >= self.dag.num_jobs
            self.store.put(self._building)
