"""Figure 8 — stage distance vs job distance as the MRD metric.

LabelPropagation has a high ratio of active stages to jobs, so the
coarse job-distance metric (all references within a job tie at 0)
degrades MRD badly; K-Means has ≈1 stage per job so the two metrics are
nearly equivalent.  Reports normalized JCT (vs LRU) and hit ratio for
MRD-stage and MRD-job on both workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import format_table, sweep_workload
from repro.simulator.config import MAIN_CLUSTER
from repro.sweep.schemes import SchemeSpec

FIG8_WORKLOADS: tuple[str, ...] = ("LP", "KM")
FIG8_FRACTIONS: tuple[float, ...] = (0.25, 0.35, 0.5)


@dataclass(frozen=True)
class Fig8Row:
    workload: str
    active_stages_per_job: float
    stage_metric_jct: float
    job_metric_jct: float
    stage_metric_hit: float
    job_metric_hit: float


def run(
    workloads: tuple[str, ...] = FIG8_WORKLOADS,
    cache_fractions=FIG8_FRACTIONS,
    jobs: int = 1,
    store=None,
    external: bool = False,
) -> list[Fig8Row]:
    schemes = {
        "LRU": SchemeSpec("LRU"),
        "MRD-stage": SchemeSpec("MRD", metric="stage"),
        "MRD-job": SchemeSpec("MRD", metric="job"),
    }
    rows: list[Fig8Row] = []
    for name in workloads:
        sweep = sweep_workload(
            name, schemes=schemes, cluster=MAIN_CLUSTER,
            cache_fractions=cache_fractions, jobs=jobs, store=store, external=external,
        )
        best = min(
            sweep.fractions(), key=lambda f: sweep.normalized_jct("MRD-stage", f)
        )
        dag = sweep.dag
        rows.append(
            Fig8Row(
                workload=name,
                active_stages_per_job=dag.num_active_stages / dag.num_jobs,
                stage_metric_jct=sweep.normalized_jct("MRD-stage", best),
                job_metric_jct=sweep.normalized_jct("MRD-job", best),
                stage_metric_hit=sweep.get("MRD-stage", best).hit_ratio,
                job_metric_hit=sweep.get("MRD-job", best).hit_ratio,
            )
        )
    return rows


def render(rows: list[Fig8Row]) -> str:
    table = [
        (
            r.workload, round(r.active_stages_per_job, 2),
            r.stage_metric_jct, r.job_metric_jct,
            f"{r.stage_metric_hit * 100:.0f}%", f"{r.job_metric_hit * 100:.0f}%",
        )
        for r in rows
    ]
    return format_table(
        ["Workload", "ActiveStages/Job", "MRD-stage JCT", "MRD-job JCT",
         "stage hit", "job hit"],
        table,
        title="Figure 8: stage-distance vs job-distance metric (JCT normalized to LRU)",
    )
