"""Shared experiment harness.

Every figure/table driver follows the same pattern: build a workload
DAG once, size the cluster cache as a fraction of the workload's peak
live cached footprint (the paper's ``spark.executor.memory`` sweeps),
run it under several cache-management schemes, and normalize Job
Completion Times against the LRU baseline.  This module provides those
building blocks plus plain-text table rendering used by the benchmark
scripts and EXPERIMENTS.md.

:func:`sweep_workload` executes its grid through the parallel sweep
runner (``repro.sweep``) whenever it can: pass ``jobs=N`` to fan cells
out across worker processes and ``store=`` to make the sweep resumable
and cached.  Results are bit-identical at any job count.  Scheme dicts
may map labels to :class:`~repro.sweep.schemes.SchemeSpec` values (the
standard line-ups do), registry names, or — for ad-hoc experiments —
arbitrary zero-argument factories, which still run on the in-process
serial path since they cannot cross a process boundary.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.cluster.cluster import ClusterConfig
from repro.dag.analysis import peak_live_cached_mb
from repro.dag.dag_builder import ApplicationDAG, build_dag
from repro.policies.scheme import CacheScheme
from repro.simulator.config import CLUSTERS, MAIN_CLUSTER
from repro.simulator.engine import simulate
from repro.simulator.metrics import RunMetrics
from repro.sweep.schemes import SchemeSpec, maybe_resolve_scheme
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import get_workload

SchemeFactory = Callable[[], CacheScheme]
SchemeLike = SchemeFactory | SchemeSpec | str

#: The scheme line-up most experiments compare (fresh instance per run;
#: every entry is a picklable SchemeSpec, so sweeps parallelize).
STANDARD_SCHEMES: dict[str, SchemeLike] = {
    "LRU": SchemeSpec("LRU"),
    "LRC": SchemeSpec("LRC"),
    "MemTune": SchemeSpec("MemTune"),
    "MRD-evict": SchemeSpec("MRD", prefetch=False),
    "MRD-prefetch": SchemeSpec("MRD", evict=False),
    "MRD": SchemeSpec("MRD"),
    "Belady-MIN": SchemeSpec("Belady"),
}

#: Cache sizes swept per workload, as fractions of peak live cached MB.
DEFAULT_CACHE_FRACTIONS: tuple[float, ...] = (0.08, 0.15, 0.25, 0.35, 0.5, 0.7)

#: Minimum per-node cache so a single block always fits.
MIN_CACHE_MB = 8.0


@dataclass(frozen=True)
class WorkloadRun:
    """One (workload, cache size, scheme) simulation result."""

    workload: str
    scheme: str
    cache_fraction: float
    cache_mb_per_node: float
    metrics: RunMetrics

    @property
    def jct(self) -> float:
        return self.metrics.jct

    @property
    def hit_ratio(self) -> float:
        return self.metrics.hit_ratio


@dataclass
class SweepResult:
    """All runs of one workload across cache fractions and schemes."""

    workload: str
    dag: ApplicationDAG
    peak_live_mb: float
    runs: list[WorkloadRun] = field(default_factory=list)

    def get(self, scheme: str, fraction: float) -> WorkloadRun:
        for run in self.runs:
            if run.scheme == scheme and run.cache_fraction == fraction:
                return run
        raise KeyError(f"no run for {scheme} @ {fraction}")

    def fractions(self) -> list[float]:
        return sorted({r.cache_fraction for r in self.runs})

    def schemes(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.runs:
            seen.setdefault(r.scheme, None)
        return list(seen)

    def normalized_jct(self, scheme: str, fraction: float, baseline: str = "LRU") -> float:
        return self.get(scheme, fraction).jct / self.get(baseline, fraction).jct

    def best_fraction(self, scheme: str = "MRD", baseline: str = "LRU") -> float:
        """Cache fraction with the best scheme-vs-baseline ratio.

        Figure 4 reports "the best overall performance gain for each
        workload-cache combination" — this is that selection rule.
        """
        return min(
            self.fractions(),
            key=lambda f: self.normalized_jct(scheme, f, baseline),
        )


def cache_mb_for(dag: ApplicationDAG, fraction: float, cluster: ClusterConfig) -> float:
    """Per-node cache size for a given fraction of the peak live set."""
    peak = peak_live_cached_mb(dag)
    return max(peak * fraction / cluster.num_nodes, MIN_CACHE_MB)


def build_workload_dag(
    workload: str,
    scale: float = 1.0,
    iterations: int | None = None,
    partitions: int | None = None,
) -> ApplicationDAG:
    """Compile one benchmark workload into its application DAG."""
    params = WorkloadParams(
        scale=scale,
        iterations=iterations,
        partitions=partitions if partitions is not None else WorkloadParams().partitions,
    )
    return build_dag(get_workload(workload).build(params))


def _preset_name(cluster: ClusterConfig) -> str | None:
    """Registry name of ``cluster`` if it *is* a preset, else ``None``."""
    preset = CLUSTERS.get(cluster.name)
    return cluster.name if preset == cluster else None


def sweep_workload(
    workload: str,
    schemes: dict[str, SchemeLike] | None = None,
    cluster: ClusterConfig = MAIN_CLUSTER,
    cache_fractions: Sequence[float] = DEFAULT_CACHE_FRACTIONS,
    dag: ApplicationDAG | None = None,
    jobs: int = 1,
    store=None,
    resume: bool = True,
    external: bool = False,
    **build_kwargs,
) -> SweepResult:
    """Run one workload under every scheme at every cache fraction.

    With ``jobs > 1`` or a result ``store``, the grid executes through
    the parallel sweep runner (one process-shippable cell per
    scheme × fraction, served from the store when unchanged); results
    are bit-identical to the serial path.  The serial in-process path
    is used when any scheme is a live factory, when a prebuilt ``dag``
    is supplied, or when ``cluster`` is not a named preset — those
    cannot be described to a worker process.

    ``external=True`` is the distributed path: nothing computes in this
    process — the grid is published into the (mandatory) ``store`` and
    the call waits for ``repro sweep --worker`` processes to settle
    every cell (see ``docs/distributed-sweeps.md``).
    """
    schemes = schemes or STANDARD_SCHEMES
    resolved = {name: maybe_resolve_scheme(value) for name, value in schemes.items()}
    preset = _preset_name(cluster)
    use_runner = (
        (jobs > 1 or store is not None or external)
        and dag is None
        and preset is not None
        and all(spec is not None for spec in resolved.values())
    )
    if external and not use_runner:
        raise ValueError(
            "external workers need store-describable cells: no prebuilt "
            "DAGs, no live scheme factories, and a named cluster preset"
        )
    if use_runner:
        from repro.sweep.runner import run_cells
        from repro.sweep.spec import CellSpec

        params = WorkloadParams(
            scale=build_kwargs.get("scale", 1.0),
            iterations=build_kwargs.get("iterations"),
            partitions=build_kwargs.get("partitions") or WorkloadParams().partitions,
        )
        cells = [
            CellSpec(
                workload=workload,
                scheme=name,
                scheme_spec=spec,
                cluster=preset,
                cache_fraction=fraction,
                scale=params.scale,
                iterations=params.iterations,
                partitions=params.partitions,
            )
            for fraction in cache_fractions
            for name, spec in resolved.items()
        ]
        outcome = run_cells(
            cells, jobs=jobs, store=store, resume=resume, external=external
        )
        outcome.raise_on_error()
        dag = build_workload_dag(workload, **build_kwargs)
        result = SweepResult(
            workload=workload, dag=dag, peak_live_mb=peak_live_cached_mb(dag)
        )
        for cell in cells:
            metrics = outcome.metrics_for(cell)
            result.runs.append(
                WorkloadRun(
                    workload=workload,
                    scheme=cell.scheme,
                    cache_fraction=cell.cache_fraction or 0.0,
                    cache_mb_per_node=metrics.cache_mb_per_node,
                    metrics=metrics,
                )
            )
        return result

    dag = dag if dag is not None else build_workload_dag(workload, **build_kwargs)
    result = SweepResult(
        workload=workload, dag=dag, peak_live_mb=peak_live_cached_mb(dag)
    )
    for fraction in cache_fractions:
        cache_mb = cache_mb_for(dag, fraction, cluster)
        config = cluster.with_cache(cache_mb)
        for name, value in schemes.items():
            spec = resolved[name]
            scheme = spec.build() if spec is not None else value()  # type: ignore[operator]
            metrics = simulate(dag, config, scheme)
            metrics.scheme = name
            result.runs.append(
                WorkloadRun(
                    workload=workload,
                    scheme=name,
                    cache_fraction=fraction,
                    cache_mb_per_node=cache_mb,
                    metrics=metrics,
                )
            )
    return result


# ----------------------------------------------------------------------
# plain-text rendering
# ----------------------------------------------------------------------
def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table (monospace, benchmark output)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
