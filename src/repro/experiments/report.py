"""Full evaluation report: run every experiment and render markdown.

``python -m repro report [-o FILE]`` regenerates the complete
evaluation section — all tables and figures plus the headline summary —
from scratch.  Runtime is a couple of minutes (the Figure 4 sweep
dominates); everything is deterministic, so two invocations produce
identical reports.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.experiments import (
    fig2,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11_12,
    table1,
    table3,
)


def generate_report(
    out: Path | None = None,
    progress: bool = False,
    jobs: int = 1,
    store=None,
    external: bool = False,
) -> str:
    """Run the full evaluation; returns (and optionally writes) markdown.

    ``jobs``/``store`` are forwarded to every sweep-backed driver: the
    figures fan out across worker processes and, with a store, a rerun
    after an interrupt (or a tweak to one figure) recomputes only the
    missing cells.  Output is bit-identical at any job count.
    ``external=True`` forwards to the same drivers so every figure's
    grid is published into ``store`` and drained by external
    ``repro sweep --worker`` processes instead of this one.
    """
    buf = io.StringIO()

    def say(msg: str) -> None:
        if progress:
            print(msg, flush=True)

    def section(title: str, body: str) -> None:
        buf.write(f"\n## {title}\n\n```\n{body}\n```\n")

    buf.write("# MRD reproduction — regenerated evaluation\n")
    buf.write(
        "\nEvery block below is produced by `repro.experiments.*` "
        "drivers; see EXPERIMENTS.md for the paper-vs-measured "
        "discussion.\n"
    )

    say("table 1 ...")
    section("Table 1 — reference distances", table1.render(table1.run()))
    say("table 3 ...")
    section("Table 3 — workload characteristics", table3.render(table3.run()))

    say("figure 2 ...")
    trace = fig2.run("CC", max_rdds=8)
    section(
        "Figure 2 — policy metric traces (CC)",
        "\n\n".join(fig2.render(trace, p) for p in ("lru", "lrc", "mrd")),
    )

    say("figure 4 (the long sweep) ...")
    rows4 = fig4.run(jobs=jobs, store=store, external=external)
    section("Figure 4 — overall performance", fig4.render(rows4))

    say("figure 5 ...")
    section("Figure 5 — vs LRC", fig5.render(fig5.run(jobs=jobs, store=store, external=external)))
    say("figure 6 ...")
    section(
        "Figure 6 — vs MemTune",
        fig6.render(fig6.run(jobs=jobs, store=store, external=external)),
    )
    say("figure 7 ...")
    section(
        "Figure 7 — cache-size sweep (SVD++)",
        fig7.render(fig7.run(jobs=jobs, store=store, external=external)),
    )
    say("figure 8 ...")
    section(
        "Figure 8 — stage vs job distance",
        fig8.render(fig8.run(jobs=jobs, store=store, external=external)),
    )
    say("figure 9 ...")
    section(
        "Figure 9 — ad-hoc vs recurring",
        fig9.render(fig9.run(jobs=jobs, store=store, external=external)),
    )
    say("figure 10 ...")
    section(
        "Figure 10 — iteration scaling",
        fig10.render(fig10.run(jobs=jobs, store=store, external=external)),
    )
    say("figures 11-12 ...")
    section(
        "Figures 11-12 — benefit predictors",
        fig11_12.render(fig11_12.run(rows4)),
    )

    avg = fig4.averages(rows4)
    buf.write(
        "\n## Headline summary\n\n"
        f"- full MRD average normalized JCT: **{avg['full']:.2f}** "
        "(paper: 0.53)\n"
        f"- eviction-only: **{avg['evict_only']:.2f}** (paper: 0.62); "
        f"prefetch-only: **{avg['prefetch_only']:.2f}** (paper: 0.67)\n"
        f"- average hit ratio: LRU **{avg['lru_hit'] * 100:.0f}%** → "
        f"MRD **{avg['mrd_hit'] * 100:.0f}%**\n"
    )

    text = buf.getvalue()
    if out is not None:
        Path(out).write_text(text)
    return text
