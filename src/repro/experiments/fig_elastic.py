"""Elastic membership — cache management under cluster churn.

The paper's clusters are static; real deployments autoscale.  This
experiment injects random membership churn (seeded joins and
decommissions at stage boundaries, sticky rendezvous placement so a
join never reshuffles existing homes) and asks two questions: how much
of each scheme's performance survives churn, and whether
reference-distance-aware rebalancing — migrating a retiring node's
lowest-distance (most urgent) blocks instead of dropping its cache —
closes the gap.  Every (scheme, rebalance) pair at a given churn rate
replays the *same* membership history (the churn seed is pinned), so
differences are attributable to cache management alone; each cell is
normalized against the same scheme's churn-free run.  LRU migrates
blindly (it tracks no distances), so the MRD-vs-LRU delta under
``migrate`` shows the value of choosing *what* to carry, not just
carrying something.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.harness import format_table
from repro.simulator.config import MAIN_CLUSTER
from repro.sweep.runner import run_cells
from repro.sweep.schemes import SchemeSpec
from repro.sweep.spec import CellSpec

ELASTIC_WORKLOADS: tuple[str, ...] = ("KM", "PR")
#: Per-stage-boundary probability of a membership event.
CHURN_RATES: tuple[float, ...] = (0.0, 0.4, 0.8)
REBALANCE_POLICIES: tuple[str, ...] = ("drop", "migrate")
CACHE_FRACTION = 0.4
#: Pinned so every scheme/rebalance cell at one churn rate replays the
#: identical membership history.
CHURN_SEED = 0

_SCHEMES = {"LRU": SchemeSpec("LRU"), "MRD": SchemeSpec("MRD")}


@dataclass(frozen=True)
class ElasticRow:
    workload: str
    scheme: str
    churn_rate: float
    rebalance: str
    jct: float
    #: JCT relative to the same scheme with static membership.
    norm_jct: float
    hit_ratio: float
    nodes_joined: int
    nodes_decommissioned: int
    rebalanced_blocks: int
    rebalanced_mb: float
    dropped_blocks: int


def run(
    workloads: tuple[str, ...] = ELASTIC_WORKLOADS,
    churn_rates: tuple[float, ...] = CHURN_RATES,
    rebalances: tuple[str, ...] = REBALANCE_POLICIES,
    cache_fraction: float = CACHE_FRACTION,
    jobs: int = 1,
    store=None,
    external: bool = False,
) -> list[ElasticRow]:
    plan: list[tuple[CellSpec, CellSpec]] = []  # (static baseline, churn cell)
    for name in workloads:
        for scheme_name, spec in _SCHEMES.items():
            baseline = CellSpec(
                workload=name,
                scheme=scheme_name,
                scheme_spec=spec,
                cluster=MAIN_CLUSTER.name,
                cache_fraction=cache_fraction,
                placement="rendezvous",
            )
            for rate in churn_rates:
                if rate == 0:
                    plan.append((baseline, baseline))
                    continue
                for rebalance in rebalances:
                    churned = replace(
                        baseline,
                        churn_rate=rate,
                        churn_seed=CHURN_SEED,
                        rebalance=rebalance,
                    )
                    plan.append((baseline, churned))
    cells = [cell for pair in plan for cell in pair]  # dedup is run_cells' job
    outcome = run_cells(cells, jobs=jobs, store=store, external=external)
    outcome.raise_on_error()

    rows: list[ElasticRow] = []
    for baseline_cell, churn_cell in plan:
        baseline = outcome.metrics_for(baseline_cell)
        m = outcome.metrics_for(churn_cell)
        rows.append(
            ElasticRow(
                workload=churn_cell.workload,
                scheme=churn_cell.scheme,
                churn_rate=churn_cell.churn_rate,
                rebalance=churn_cell.rebalance if churn_cell.churn_rate else "-",
                jct=m.jct,
                norm_jct=m.normalized_jct(baseline),
                hit_ratio=m.hit_ratio,
                nodes_joined=m.nodes_joined,
                nodes_decommissioned=m.nodes_decommissioned,
                rebalanced_blocks=m.rebalanced_blocks,
                rebalanced_mb=m.rebalanced_mb,
                dropped_blocks=m.decommission_dropped_blocks,
            )
        )
    return rows


def render(rows: list[ElasticRow]) -> str:
    table = [
        (
            r.workload, r.scheme, r.churn_rate, r.rebalance,
            round(r.jct, 2), round(r.norm_jct, 3),
            f"{r.hit_ratio * 100:.0f}%",
            f"+{r.nodes_joined}/-{r.nodes_decommissioned}",
            r.rebalanced_blocks, round(r.rebalanced_mb, 1), r.dropped_blocks,
        )
        for r in rows
    ]
    return format_table(
        ["Workload", "Scheme", "Churn", "Rebalance", "JCT", "vs static",
         "Hit", "Nodes", "Migrated", "MB", "Dropped"],
        table,
        title="Elastic membership (churn rate x rebalance policy, per scheme)",
    )
