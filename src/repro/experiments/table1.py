"""Table 1 — reference-distance characteristics of all benchmark workloads.

Reproduces the paper's preliminary study: average and maximum job/stage
reference distances for the fourteen SparkBench and six HiBench
workloads, demonstrating why HiBench (near-zero distances) was dropped
from the main experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.analysis import DistanceStats, distance_stats
from repro.dag.dag_builder import build_dag
from repro.workloads.registry import ALL_WORKLOADS

#: Paper's Table 1 values: (avg_jd, max_jd, avg_sd, max_sd) per workload.
PAPER_TABLE1: dict[str, tuple[float, int, float, int]] = {
    "KM": (5.15, 16, 5.34, 19),
    "LinR": (1.24, 5, 1.76, 8),
    "LogR": (1.53, 6, 2.00, 9),
    "SVM": (1.48, 6, 1.96, 10),
    "DT": (2.71, 9, 4.38, 15),
    "MF": (1.56, 7, 3.31, 18),
    "PR": (1.74, 5, 6.08, 19),
    "TC": (0.07, 1, 1.23, 6),
    "SP": (0.19, 1, 1.19, 4),
    "LP": (7.19, 22, 28.37, 85),
    "SVD++": (3.51, 11, 6.82, 23),
    "CC": (1.30, 4, 5.31, 16),
    "SCC": (7.77, 24, 29.96, 90),
    "PO": (1.28, 4, 5.45, 16),
    "Sort": (0.00, 0, 0.00, 0),
    "WordCount": (0.00, 0, 0.00, 0),
    "TeraSort": (0.22, 1, 0.22, 1),
    "HiPageRank": (0.00, 0, 0.09, 2),
    "Bayes": (2.09, 7, 3.23, 9),
    "HiKMeans": (6.08, 19, 6.60, 25),
}


@dataclass(frozen=True)
class Table1Row:
    measured: DistanceStats
    paper: tuple[float, int, float, int] | None


def run() -> list[Table1Row]:
    """Measure reference-distance stats for every registered workload."""
    rows: list[Table1Row] = []
    for spec in ALL_WORKLOADS:
        dag = build_dag(spec.build())
        stats = distance_stats(dag, spec.name)
        rows.append(Table1Row(measured=stats, paper=PAPER_TABLE1.get(spec.name)))
    return rows


def render(rows: list[Table1Row]) -> str:
    from repro.experiments.harness import format_table

    table = []
    for row in rows:
        m = row.measured
        p = row.paper or ("-", "-", "-", "-")
        table.append(
            (
                m.workload,
                round(m.avg_job_distance, 2), m.max_job_distance,
                round(m.avg_stage_distance, 2), m.max_stage_distance,
                p[0], p[1], p[2], p[3],
            )
        )
    return format_table(
        ["Workload", "AvgJD", "MaxJD", "AvgSD", "MaxSD",
         "paper-AvgJD", "paper-MaxJD", "paper-AvgSD", "paper-MaxSD"],
        table,
        title="Table 1: reference distance characteristics (measured vs paper)",
    )
