"""Figure 2 — per-stage cache-priority evolution for ConnectedComponents.

The paper's motivating figure colours each (cached RDD, stage) cell by
how likely the policy is to keep/evict the RDD at that point.  We
regenerate the underlying numbers: for every active stage of CC and
every cached RDD, the LRU metric (stages since last touch), the LRC
metric (remaining reference count) and the MRD metric (stage distance
to next reference, ``inf`` when never referenced again).  High LRU
values, low LRC values and high MRD values mean "next to be evicted"
under the respective policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dag.dag_builder import ApplicationDAG
from repro.experiments.harness import build_workload_dag


@dataclass
class PolicyTrace:
    """Metric matrices: rdd_id -> [value per active stage]."""

    workload: str
    dag: ApplicationDAG
    rdd_ids: list[int] = field(default_factory=list)
    rdd_names: dict[int, str] = field(default_factory=dict)
    lru: dict[int, list[float]] = field(default_factory=dict)
    lrc: dict[int, list[float]] = field(default_factory=dict)
    mrd: dict[int, list[float]] = field(default_factory=dict)


def run(workload: str = "CC", max_rdds: int = 12) -> PolicyTrace:
    """Compute the Fig. 2 metric matrices for ``workload``.

    Only the ``max_rdds`` most-referenced cached RDDs are included
    (the paper's figure likewise shows the RDDs the application
    caches, not every intermediate).
    """
    dag = build_workload_dag(workload)
    trace = PolicyTrace(workload=workload, dag=dag)
    profiles = sorted(
        dag.profiles.values(), key=lambda p: -p.reference_count
    )[:max_rdds]
    profiles.sort(key=lambda p: p.created_seq)
    num_stages = dag.num_active_stages
    for prof in profiles:
        rid = prof.rdd.id
        trace.rdd_ids.append(rid)
        trace.rdd_names[rid] = prof.rdd.name
        touches = sorted({prof.created_seq, *prof.read_seqs})
        reads = sorted(prof.read_seqs)
        lru_row: list[float] = []
        lrc_row: list[float] = []
        mrd_row: list[float] = []
        for seq in range(num_stages):
            if seq < prof.created_seq:
                lru_row.append(math.nan)
                lrc_row.append(math.nan)
                mrd_row.append(math.nan)
                continue
            last_touch = max((t for t in touches if t <= seq), default=prof.created_seq)
            lru_row.append(float(seq - last_touch))
            lrc_row.append(float(sum(1 for r in reads if r >= seq)))
            future = [r for r in reads if r >= seq]
            mrd_row.append(float(future[0] - seq) if future else math.inf)
        trace.lru[rid] = lru_row
        trace.lrc[rid] = lrc_row
        trace.mrd[rid] = mrd_row
    return trace


def render(trace: PolicyTrace, policy: str = "mrd") -> str:
    """Plain-text heatmap of one policy's metric (Fig. 2 panel)."""
    matrix = getattr(trace, policy)
    lines = [f"Figure 2 ({policy.upper()} metric) — {trace.workload}, "
             f"rows = cached RDDs, cols = active stages"]
    header = "  ".join(f"{s:>4d}" for s in range(trace.dag.num_active_stages))
    lines.append(f"{'RDD':>18s}  {header}")
    for rid in trace.rdd_ids:
        cells = []
        for v in matrix[rid]:
            if math.isnan(v):
                cells.append("   .")
            elif math.isinf(v):
                cells.append("   ∞")
            else:
                cells.append(f"{int(v):>4d}")
        lines.append(f"{trace.rdd_names[rid][:18]:>18s}  " + "  ".join(cells))
    return "\n".join(lines)
