"""Figure 4 — overall performance of MRD vs LRU on the main cluster.

For each of the fourteen SparkBench workloads: sweep cache sizes, pick
the best workload-cache combination (as the paper does), and report the
normalized JCT of MRD eviction-only, MRD prefetch-only and full MRD
against the LRU baseline, plus the LRU and full-MRD cache hit ratios.

Paper headline numbers this reproduces in shape:
  eviction-only avg 62 % of LRU, prefetch-only avg 67 %, full avg 53 %,
  best case SCC ≈ 20 %, worst case DT ≈ 88-100 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import (
    DEFAULT_CACHE_FRACTIONS,
    SweepResult,
    format_table,
    sweep_workload,
)
from repro.simulator.config import MAIN_CLUSTER
from repro.sweep.schemes import SchemeSpec
from repro.workloads.registry import SPARKBENCH_WORKLOADS

FIG4_SCHEMES = {
    "LRU": SchemeSpec("LRU"),
    "MRD-evict": SchemeSpec("MRD", prefetch=False),
    "MRD-prefetch": SchemeSpec("MRD", evict=False),
    "MRD": SchemeSpec("MRD"),
}

#: Paper's approximate normalized-JCT readings for full MRD (Fig. 4).
PAPER_FULL_MRD: dict[str, float] = {
    "KM": 0.45, "LinR": 0.80, "LogR": 0.72, "SVM": 0.80, "DT": 0.88,
    "MF": 0.60, "PR": 0.35, "TC": 0.75, "SP": 0.70, "LP": 0.30,
    "SVD++": 0.40, "CC": 0.38, "SCC": 0.20, "PO": 0.35,
}


@dataclass(frozen=True)
class Fig4Row:
    workload: str
    best_fraction: float
    evict_only: float
    prefetch_only: float
    full: float
    lru_hit: float
    mrd_hit: float
    paper_full: float | None


def run(
    workloads: tuple[str, ...] = tuple(s.name for s in SPARKBENCH_WORKLOADS),
    cache_fractions=DEFAULT_CACHE_FRACTIONS,
    scale: float = 1.0,
    jobs: int = 1,
    store=None,
    external: bool = False,
) -> list[Fig4Row]:
    rows: list[Fig4Row] = []
    for name in workloads:
        sweep = sweep_workload(
            name,
            schemes=FIG4_SCHEMES,
            cluster=MAIN_CLUSTER,
            cache_fractions=cache_fractions,
            scale=scale,
            jobs=jobs,
            store=store,
            external=external,
        )
        rows.append(summarize(sweep))
    return rows


def summarize(sweep: SweepResult) -> Fig4Row:
    best = sweep.best_fraction("MRD", "LRU")
    return Fig4Row(
        workload=sweep.workload,
        best_fraction=best,
        evict_only=sweep.normalized_jct("MRD-evict", best),
        prefetch_only=sweep.normalized_jct("MRD-prefetch", best),
        full=sweep.normalized_jct("MRD", best),
        lru_hit=sweep.get("LRU", best).hit_ratio,
        mrd_hit=sweep.get("MRD", best).hit_ratio,
        paper_full=PAPER_FULL_MRD.get(sweep.workload),
    )


def averages(rows: list[Fig4Row]) -> dict[str, float]:
    n = len(rows)
    return {
        "evict_only": sum(r.evict_only for r in rows) / n,
        "prefetch_only": sum(r.prefetch_only for r in rows) / n,
        "full": sum(r.full for r in rows) / n,
        "lru_hit": sum(r.lru_hit for r in rows) / n,
        "mrd_hit": sum(r.mrd_hit for r in rows) / n,
    }


def render(rows: list[Fig4Row]) -> str:
    table = [
        (
            r.workload, r.best_fraction,
            r.evict_only, r.prefetch_only, r.full,
            f"{r.lru_hit * 100:.0f}%", f"{r.mrd_hit * 100:.0f}%",
            r.paper_full if r.paper_full is not None else "-",
        )
        for r in rows
    ]
    avg = averages(rows)
    table.append(
        ("AVERAGE", "", avg["evict_only"], avg["prefetch_only"], avg["full"],
         f"{avg['lru_hit'] * 100:.0f}%", f"{avg['mrd_hit'] * 100:.0f}%", "0.53")
    )
    return format_table(
        ["Workload", "BestCacheFrac", "Evict-only", "Prefetch-only", "Full-MRD",
         "LRU-hit", "MRD-hit", "paper-Full"],
        table,
        title="Figure 4: normalized JCT vs LRU (lower is better) + hit ratios",
    )
