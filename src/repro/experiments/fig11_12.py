"""Figures 11 and 12 — what predicts MRD's benefit?

Scatter of per-workload JCT reduction (1 − best full-MRD/LRU) against
(Fig. 11) the workload's average stage reference distance and (Fig. 12)
its average references per stage, with least-squares trendlines.  The
paper reports R² = 0.46 for stage distance and R² = 0.71 for references
per stage — refs/stage is the stronger predictor, and we check the same
ordering holds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.analysis import distance_stats, workload_characteristics
from repro.experiments import fig4
from repro.experiments.harness import format_table


@dataclass(frozen=True)
class CorrelationResult:
    workloads: list[str]
    jct_reduction_pct: list[float]
    avg_stage_distance: list[float]
    refs_per_stage: list[float]
    r2_stage_distance: float
    r2_refs_per_stage: float
    slope_stage_distance: float
    slope_refs_per_stage: float


def _linfit_r2(x: list[float], y: list[float]) -> tuple[float, float]:
    """Least-squares slope and R² of y against x."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if len(xa) < 2 or np.allclose(xa, xa[0]):
        return 0.0, 0.0
    slope, intercept = np.polyfit(xa, ya, 1)
    pred = slope * xa + intercept
    ss_res = float(np.sum((ya - pred) ** 2))
    ss_tot = float(np.sum((ya - ya.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    return float(slope), r2


def run(fig4_rows: list[fig4.Fig4Row] | None = None) -> CorrelationResult:
    """Compute both correlations from Fig. 4's per-workload results."""
    from repro.experiments.harness import build_workload_dag

    rows = fig4_rows if fig4_rows is not None else fig4.run()
    names, reductions, sds, rps = [], [], [], []
    for row in rows:
        dag = build_workload_dag(row.workload)
        names.append(row.workload)
        reductions.append((1 - row.full) * 100)
        sds.append(distance_stats(dag).avg_stage_distance)
        rps.append(workload_characteristics(dag).refs_per_stage)
    slope_sd, r2_sd = _linfit_r2(sds, reductions)
    slope_rp, r2_rp = _linfit_r2(rps, reductions)
    return CorrelationResult(
        workloads=names,
        jct_reduction_pct=reductions,
        avg_stage_distance=sds,
        refs_per_stage=rps,
        r2_stage_distance=r2_sd,
        r2_refs_per_stage=r2_rp,
        slope_stage_distance=slope_sd,
        slope_refs_per_stage=slope_rp,
    )


def render(result: CorrelationResult) -> str:
    table = [
        (w, f"{red:.0f}%", round(sd, 2), round(rp, 2))
        for w, red, sd, rp in zip(
            result.workloads,
            result.jct_reduction_pct,
            result.avg_stage_distance,
            result.refs_per_stage,
        )
    ]
    text = format_table(
        ["Workload", "JCT reduction", "AvgStageDist", "Refs/Stage"],
        table,
        title="Figures 11-12: JCT reduction vs workload characteristics",
    )
    text += (
        f"\nFig.11 trendline: slope={result.slope_stage_distance:.2f}, "
        f"R²={result.r2_stage_distance:.2f} (paper: 0.46)"
        f"\nFig.12 trendline: slope={result.slope_refs_per_stage:.2f}, "
        f"R²={result.r2_refs_per_stage:.2f} (paper: 0.71)"
    )
    return text
