"""Offered-load sweep on a shared multi-tenant cluster.

The paper evaluates one application at a time; a production cluster
runs many concurrently, and cache pressure then depends on *offered
load* — how fast applications arrive relative to how fast they drain.
This experiment streams a fixed mix of applications into one shared
cluster with seeded Poisson arrivals and sweeps the arrival rate, for
every combination of per-application scheme (all-LRU vs all-MRD) and
cross-application arbitration policy (static shares, weighted max-min
fairness, global reference distance).  Reported per cell: the
cluster-wide aggregate hit ratio, the p50/p99 application sojourn
(JCT measured from each application's arrival), and the makespan.

At low rates the cluster is effectively single-tenant and the schemes
match their standalone behaviour; as the rate grows, applications
overlap, tenants squeeze one another and the arbitration policy starts
to matter — which is exactly the regime ``global-mrd`` (evict the
block whose own application needs it furthest in the future,
cluster-wide) is designed for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import cache_mb_for, format_table
from repro.simulator.config import MAIN_CLUSTER
from repro.tenancy.arbitration import ARBITRATIONS
from repro.tenancy.arrivals import PoissonArrivals
from repro.tenancy.engine import AppSpec, MultiTenantSimulator
from repro.workloads.base import WorkloadParams
from repro.workloads.registry import build_workload

#: Application mix cycled over the submitted applications.
LOAD_WORKLOADS: tuple[str, ...] = ("KM", "PR")
#: Poisson arrival rates swept (applications per simulated second).
LOAD_RATES: tuple[float, ...] = (0.01, 0.05, 0.25)
#: Per-application cache schemes compared (every app runs the same one).
LOAD_SCHEMES: tuple[str, ...] = ("LRU", "MRD")
#: Arbitration policies compared at every (rate, scheme) cell.
LOAD_ARBITRATIONS: tuple[str, ...] = tuple(ARBITRATIONS)
NUM_APPS = 6
PARTITIONS = 8
#: Deliberately tighter than the single-app experiments' 0.4: the cache
#: is sized for ONE application, so overlap creates real pressure.
CACHE_FRACTION = 0.25


@dataclass(frozen=True)
class LoadRow:
    """One (rate, scheme, arbitration) cell of the load sweep."""

    rate: float
    scheme: str
    arbitration: str
    num_apps: int
    hit_ratio: float
    jct_p50: float
    jct_p99: float
    mean_jct: float
    makespan: float
    evictions: int


def _cache_mb(workloads: tuple[str, ...], fraction: float) -> float:
    """Per-node cache sized for the largest application in the mix."""
    from repro.dag.dag_builder import build_dag

    sizes = []
    for name in workloads:
        dag = build_dag(build_workload(name, WorkloadParams(partitions=PARTITIONS)))
        sizes.append(cache_mb_for(dag, fraction, MAIN_CLUSTER))
    return max(sizes)


def run(
    rates: tuple[float, ...] = LOAD_RATES,
    schemes: tuple[str, ...] = LOAD_SCHEMES,
    arbitrations: tuple[str, ...] = LOAD_ARBITRATIONS,
    workloads: tuple[str, ...] = LOAD_WORKLOADS,
    num_apps: int = NUM_APPS,
    cache_fraction: float = CACHE_FRACTION,
    seed: int = 0,
) -> list[LoadRow]:
    """Sweep offered load × scheme × arbitration on one shared cluster."""
    config = MAIN_CLUSTER.with_cache(_cache_mb(workloads, cache_fraction))
    rows: list[LoadRow] = []
    for rate in rates:
        for scheme in schemes:
            apps = [
                AppSpec(
                    workload=workloads[i % len(workloads)],
                    scheme=scheme,
                    partitions=PARTITIONS,
                    seed=i,
                )
                for i in range(num_apps)
            ]
            for arbitration in arbitrations:
                metrics = MultiTenantSimulator(
                    apps,
                    config,
                    arrivals=PoissonArrivals(rate=rate, seed=seed),
                    arbitration=arbitration,
                ).run()
                rows.append(
                    LoadRow(
                        rate=rate,
                        scheme=scheme,
                        arbitration=arbitration,
                        num_apps=num_apps,
                        hit_ratio=metrics.aggregate_hit_ratio,
                        jct_p50=metrics.jct_p50,
                        jct_p99=metrics.jct_p99,
                        mean_jct=metrics.mean_jct,
                        makespan=metrics.makespan,
                        evictions=metrics.total_evictions,
                    )
                )
    return rows


def render(rows: list[LoadRow]) -> str:
    table = [
        (
            r.rate, r.scheme, r.arbitration, r.num_apps,
            f"{r.hit_ratio * 100:.1f}%",
            round(r.jct_p50, 2), round(r.jct_p99, 2),
            round(r.mean_jct, 2), round(r.makespan, 2), r.evictions,
        )
        for r in rows
    ]
    return format_table(
        ["Rate", "Scheme", "Arbitration", "Apps", "Hit",
         "JCT p50", "JCT p99", "Mean JCT", "Makespan", "Evictions"],
        table,
        title="Offered load vs cache performance (multi-tenant shared cluster)",
    )
