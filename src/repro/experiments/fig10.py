"""Figure 10 — effect of tripling workload iterations.

More iterations mean more jobs, stages and cache references, giving MRD
more opportunities (paper: average JCT improves from 62 % to 54 % of
LRU, hit ratio from 94 % to 96 %; DT is the called-out exception whose
DAG does not depend on the iteration knob).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import format_table, sweep_workload
from repro.simulator.config import MAIN_CLUSTER
from repro.sweep.schemes import SchemeSpec
from repro.workloads.registry import get_workload

#: Iterable workloads the paper tripled (DT included to show no effect).
FIG10_WORKLOADS: tuple[str, ...] = ("KM", "LogR", "SVM", "PR", "CC", "SVD++", "DT")
FIG10_FRACTIONS: tuple[float, ...] = (0.25, 0.35, 0.5)


@dataclass(frozen=True)
class Fig10Row:
    workload: str
    jobs_1x: int
    jobs_3x: int
    stages_1x: int
    stages_3x: int
    mrd_jct_1x: float
    mrd_jct_3x: float
    hit_1x: float
    hit_3x: float


def run(
    workloads: tuple[str, ...] = FIG10_WORKLOADS,
    cache_fractions=FIG10_FRACTIONS,
    jobs: int = 1,
    store=None,
    external: bool = False,
) -> list[Fig10Row]:
    schemes = {"LRU": SchemeSpec("LRU"), "MRD": SchemeSpec("MRD")}
    rows: list[Fig10Row] = []
    for name in workloads:
        spec = get_workload(name)
        base_iters = spec.default_iterations
        sweep1 = sweep_workload(
            name, schemes=schemes, cluster=MAIN_CLUSTER,
            cache_fractions=cache_fractions, jobs=jobs, store=store,
            external=external,
        )
        sweep3 = sweep_workload(
            name, schemes=schemes, cluster=MAIN_CLUSTER,
            cache_fractions=cache_fractions,
            iterations=base_iters * 3 if spec.iterations_effective else base_iters,
            jobs=jobs, store=store, external=external,
        )
        b1 = sweep1.best_fraction("MRD")
        b3 = sweep3.best_fraction("MRD")
        rows.append(
            Fig10Row(
                workload=name,
                jobs_1x=sweep1.dag.num_jobs,
                jobs_3x=sweep3.dag.num_jobs,
                stages_1x=sweep1.dag.num_stages,
                stages_3x=sweep3.dag.num_stages,
                mrd_jct_1x=sweep1.normalized_jct("MRD", b1),
                mrd_jct_3x=sweep3.normalized_jct("MRD", b3),
                hit_1x=sweep1.get("MRD", b1).hit_ratio,
                hit_3x=sweep3.get("MRD", b3).hit_ratio,
            )
        )
    return rows


def render(rows: list[Fig10Row]) -> str:
    table = [
        (
            r.workload,
            f"{r.jobs_1x}->{r.jobs_3x}", f"{r.stages_1x}->{r.stages_3x}",
            r.mrd_jct_1x, r.mrd_jct_3x,
            f"{r.hit_1x * 100:.0f}%", f"{r.hit_3x * 100:.0f}%",
        )
        for r in rows
    ]
    avg1 = sum(r.mrd_jct_1x for r in rows) / len(rows)
    avg3 = sum(r.mrd_jct_3x for r in rows) / len(rows)
    table.append(("AVERAGE", "", "", avg1, avg3, "", ""))
    return format_table(
        ["Workload", "Jobs 1x->3x", "Stages 1x->3x", "MRD JCT 1x", "MRD JCT 3x",
         "hit 1x", "hit 3x"],
        table,
        title="Figure 10: tripling iterations (JCT normalized to LRU at same iterations)",
    )
