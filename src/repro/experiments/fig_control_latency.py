"""Control-latency sensitivity — how coordination delay erodes MRD.

MRD is a *centralized* design: purge and prefetch orders, distance-table
broadcasts and cache-status reports all cross the driver↔worker control
plane.  The paper runs on a LAN where that latency is negligible; this
experiment asks how much of MRD's advantage survives when it is not.
Each workload×scheme cell is simulated under the ``rpc`` control plane
at increasing one-way latency and normalized against the same scheme on
the ``instant`` plane (latency 0).  LRU exchanges no distance state —
its orders-free control traffic cannot change eviction decisions — so
its row stays flat at 1.0 and acts as the control group, while MRD
degrades as purges land late, prefetches miss their stage and workers
evict against stale distance views.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.plane import RpcConfig
from repro.core.policy import MrdScheme
from repro.experiments.harness import build_workload_dag, cache_mb_for, format_table
from repro.policies.scheme import LruScheme
from repro.simulator.config import MAIN_CLUSTER
from repro.simulator.engine import simulate

CONTROL_WORKLOADS: tuple[str, ...] = ("KM", "PR")
#: One-way control-message latencies (seconds of simulated time).
CONTROL_LATENCIES: tuple[float, ...] = (0.0, 0.5, 2.0, 8.0)
CACHE_FRACTION = 0.4

_SCHEMES = {"LRU": LruScheme, "MRD": MrdScheme}


@dataclass(frozen=True)
class ControlLatencyRow:
    workload: str
    scheme: str
    latency_s: float
    jct: float
    #: JCT relative to the same scheme under the instant plane.
    norm_jct: float
    hit_ratio: float
    msgs_sent: int
    msgs_delivered: int
    stale_orders: int
    mean_order_delay: float


def run(
    workloads: tuple[str, ...] = CONTROL_WORKLOADS,
    latencies: tuple[float, ...] = CONTROL_LATENCIES,
    cache_fraction: float = CACHE_FRACTION,
) -> list[ControlLatencyRow]:
    rows: list[ControlLatencyRow] = []
    for name in workloads:
        dag = build_workload_dag(name)
        cluster = MAIN_CLUSTER.with_cache(
            cache_mb_for(dag, cache_fraction, MAIN_CLUSTER)
        )
        for scheme_name, factory in _SCHEMES.items():
            baseline = simulate(dag, cluster, factory())
            for latency in latencies:
                m = simulate(
                    dag, cluster, factory(),
                    control_plane="rpc",
                    control_config=RpcConfig(latency_s=latency),
                )
                rows.append(
                    ControlLatencyRow(
                        workload=name,
                        scheme=scheme_name,
                        latency_s=latency,
                        jct=m.jct,
                        norm_jct=m.normalized_jct(baseline),
                        hit_ratio=m.hit_ratio,
                        msgs_sent=m.control.sent,
                        msgs_delivered=m.control.delivered,
                        stale_orders=m.control.stale_orders,
                        mean_order_delay=m.control.mean_order_delay,
                    )
                )
    return rows


def render(rows: list[ControlLatencyRow]) -> str:
    table = [
        (
            r.workload, r.scheme, r.latency_s,
            round(r.jct, 2), round(r.norm_jct, 3),
            f"{r.hit_ratio * 100:.0f}%",
            f"{r.msgs_delivered}/{r.msgs_sent}",
            r.stale_orders, round(r.mean_order_delay, 2),
        )
        for r in rows
    ]
    return format_table(
        ["Workload", "Scheme", "Latency", "JCT", "vs instant", "Hit",
         "Msgs", "Stale", "OrderDelay"],
        table,
        title="Control-plane latency sensitivity (rpc vs instant, per scheme)",
    )
