"""Control-latency sensitivity — how coordination delay erodes MRD.

MRD is a *centralized* design: purge and prefetch orders, distance-table
broadcasts and cache-status reports all cross the driver↔worker control
plane.  The paper runs on a LAN where that latency is negligible; this
experiment asks how much of MRD's advantage survives when it is not.
Each workload×scheme cell is simulated under the ``rpc`` control plane
at increasing one-way latency and normalized against the same scheme on
the ``instant`` plane (latency 0).  LRU exchanges no distance state —
its orders-free control traffic cannot change eviction decisions — so
its row stays flat at 1.0 and acts as the control group, while MRD
degrades as purges land late, prefetches miss their stage and workers
evict against stale distance views.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.harness import format_table
from repro.simulator.config import MAIN_CLUSTER
from repro.sweep.runner import run_cells
from repro.sweep.schemes import SchemeSpec
from repro.sweep.spec import CellSpec

CONTROL_WORKLOADS: tuple[str, ...] = ("KM", "PR")
#: One-way control-message latencies (seconds of simulated time).
CONTROL_LATENCIES: tuple[float, ...] = (0.0, 0.5, 2.0, 8.0)
CACHE_FRACTION = 0.4

_SCHEMES = {"LRU": SchemeSpec("LRU"), "MRD": SchemeSpec("MRD")}


@dataclass(frozen=True)
class ControlLatencyRow:
    workload: str
    scheme: str
    latency_s: float
    jct: float
    #: JCT relative to the same scheme under the instant plane.
    norm_jct: float
    hit_ratio: float
    msgs_sent: int
    msgs_delivered: int
    stale_orders: int
    mean_order_delay: float


def run(
    workloads: tuple[str, ...] = CONTROL_WORKLOADS,
    latencies: tuple[float, ...] = CONTROL_LATENCIES,
    cache_fraction: float = CACHE_FRACTION,
    jobs: int = 1,
    store=None,
    external: bool = False,
) -> list[ControlLatencyRow]:
    plan: list[tuple[CellSpec, CellSpec]] = []  # (instant baseline, rpc cell)
    for name in workloads:
        for scheme_name, spec in _SCHEMES.items():
            baseline = CellSpec(
                workload=name,
                scheme=scheme_name,
                scheme_spec=spec,
                cluster=MAIN_CLUSTER.name,
                cache_fraction=cache_fraction,
            )
            for latency in latencies:
                rpc = replace(
                    baseline, control_plane="rpc", control_latency=latency
                )
                plan.append((baseline, rpc))
    cells = [cell for pair in plan for cell in pair]  # dedup is run_cells' job
    outcome = run_cells(cells, jobs=jobs, store=store, external=external)
    outcome.raise_on_error()

    rows: list[ControlLatencyRow] = []
    for baseline_cell, rpc_cell in plan:
        baseline = outcome.metrics_for(baseline_cell)
        m = outcome.metrics_for(rpc_cell)
        rows.append(
            ControlLatencyRow(
                workload=rpc_cell.workload,
                scheme=rpc_cell.scheme,
                latency_s=rpc_cell.control_latency or 0.0,
                jct=m.jct,
                norm_jct=m.normalized_jct(baseline),
                hit_ratio=m.hit_ratio,
                msgs_sent=m.control.sent,
                msgs_delivered=m.control.delivered,
                stale_orders=m.control.stale_orders,
                mean_order_delay=m.control.mean_order_delay,
            )
        )
    return rows


def render(rows: list[ControlLatencyRow]) -> str:
    table = [
        (
            r.workload, r.scheme, r.latency_s,
            round(r.jct, 2), round(r.norm_jct, 3),
            f"{r.hit_ratio * 100:.0f}%",
            f"{r.msgs_delivered}/{r.msgs_sent}",
            r.stale_orders, round(r.mean_order_delay, 2),
        )
        for r in rows
    ]
    return format_table(
        ["Workload", "Scheme", "Latency", "JCT", "vs instant", "Hit",
         "Msgs", "Stale", "OrderDelay"],
        table,
        title="Control-plane latency sensitivity (rpc vs instant, per scheme)",
    )
