"""Table 3 — SparkBench workload characteristics.

Jobs / stages / active stages / RDD counts / references per RDD and per
stage, plus stage-input and shuffle volumes, for the fourteen
SparkBench workloads, compared against the paper's reported values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.analysis import WorkloadCharacteristics, workload_characteristics
from repro.dag.dag_builder import build_dag
from repro.workloads.registry import SPARKBENCH_WORKLOADS

#: Paper values: (jobs, stages, active, rdds, refs_per_rdd, refs_per_stage).
PAPER_TABLE3: dict[str, tuple[int, int, int, int, float, float]] = {
    "KM": (17, 20, 20, 37, 5.57, 1.95),
    "LinR": (6, 9, 9, 24, 5.00, 0.56),
    "LogR": (7, 10, 10, 25, 6.00, 0.60),
    "SVM": (10, 28, 17, 40, 3.50, 0.41),
    "DT": (10, 16, 16, 29, 4.00, 0.25),
    "MF": (8, 64, 22, 103, 3.11, 1.27),
    "PR": (7, 69, 21, 95, 2.27, 2.38),
    "TC": (2, 11, 11, 74, 0.80, 0.73),
    "SP": (3, 8, 7, 34, 1.33, 1.14),
    "LP": (23, 858, 87, 377, 4.09, 3.06),
    "SVD++": (14, 103, 27, 105, 3.32, 2.33),
    "CC": (6, 50, 19, 85, 2.87, 2.26),
    "SCC": (26, 839, 93, 560, 4.22, 3.54),
    "PO": (17, 467, 65, 283, 3.55, 3.25),
}

#: Paper job-type labels (used by Fig. 4's discussion of I/O intensity).
JOB_TYPES: dict[str, str] = {
    spec.name: spec.job_type for spec in SPARKBENCH_WORKLOADS
}


@dataclass(frozen=True)
class Table3Row:
    measured: WorkloadCharacteristics
    paper: tuple[int, int, int, int, float, float] | None
    job_type: str


def run() -> list[Table3Row]:
    rows: list[Table3Row] = []
    for spec in SPARKBENCH_WORKLOADS:
        dag = build_dag(spec.build())
        chars = workload_characteristics(dag, spec.name)
        rows.append(
            Table3Row(
                measured=chars,
                paper=PAPER_TABLE3.get(spec.name),
                job_type=spec.job_type,
            )
        )
    return rows


def render(rows: list[Table3Row]) -> str:
    from repro.experiments.harness import format_table

    table = []
    for row in rows:
        m = row.measured
        p = row.paper or ("-",) * 6
        table.append(
            (
                m.workload, row.job_type,
                m.num_jobs, m.num_stages, m.num_active_stages, m.num_rdds,
                round(m.refs_per_rdd, 2), round(m.refs_per_stage, 2),
                f"{p[0]}/{p[1]}/{p[2]}/{p[3]}", p[4], p[5],
            )
        )
    return format_table(
        ["Workload", "JobType", "Jobs", "Stages", "Active", "RDDs",
         "Refs/RDD", "Refs/Stage", "paper-J/S/A/R", "paper-R/RDD", "paper-R/Stg"],
        table,
        title="Table 3: SparkBench workload characteristics (measured vs paper)",
    )
