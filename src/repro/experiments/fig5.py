"""Figure 5 — comparison to the LRC policy on the emulated LRC cluster.

Runs each workload on the 20-node EC2-m4.large-like cluster (Table 4)
under LRC and full MRD, taking the best cache size for each policy
("taking the best values from their experiments and ours"), and reports
MRD's JCT relative to LRC's.  Paper: MRD better by up to 45 % (CC),
30 % on average.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import (
    DEFAULT_CACHE_FRACTIONS,
    format_table,
    sweep_workload,
)
from repro.simulator.config import LRC_CLUSTER
from repro.sweep.schemes import SchemeSpec

#: Workloads shown in the paper's Fig. 5 comparison (dependency-rich set).
FIG5_WORKLOADS: tuple[str, ...] = ("KM", "PR", "SVD++", "CC", "SCC", "PO", "LP", "MF")


@dataclass(frozen=True)
class Fig5Row:
    workload: str
    lrc_vs_lru: float
    mrd_vs_lru: float
    mrd_vs_lrc: float
    improvement_pct: float  # (1 - mrd/lrc) * 100


def run(
    workloads: tuple[str, ...] = FIG5_WORKLOADS,
    cache_fractions=DEFAULT_CACHE_FRACTIONS,
    jobs: int = 1,
    store=None,
    external: bool = False,
) -> list[Fig5Row]:
    rows: list[Fig5Row] = []
    schemes = {
        "LRU": SchemeSpec("LRU"),
        "LRC": SchemeSpec("LRC"),
        "MRD": SchemeSpec("MRD"),
    }
    for name in workloads:
        sweep = sweep_workload(
            name, schemes=schemes, cluster=LRC_CLUSTER,
            cache_fractions=cache_fractions, jobs=jobs, store=store, external=external,
        )
        # "Taking the best values from their experiments and ours": the
        # best absolute JCT each policy achieves over the cache sweep.
        best_lrc = min(sweep.fractions(), key=lambda f: sweep.get("LRC", f).jct)
        best_mrd = min(sweep.fractions(), key=lambda f: sweep.get("MRD", f).jct)
        lrc_ratio = sweep.normalized_jct("LRC", best_lrc)
        mrd_ratio = sweep.normalized_jct("MRD", best_mrd)
        mrd_vs_lrc = (
            sweep.get("MRD", best_mrd).jct / sweep.get("LRC", best_lrc).jct
        )
        rows.append(
            Fig5Row(
                workload=name,
                lrc_vs_lru=lrc_ratio,
                mrd_vs_lru=mrd_ratio,
                mrd_vs_lrc=mrd_vs_lrc,
                improvement_pct=(1 - mrd_vs_lrc) * 100,
            )
        )
    return rows


def render(rows: list[Fig5Row]) -> str:
    table = [
        (r.workload, r.lrc_vs_lru, r.mrd_vs_lru, r.mrd_vs_lrc, f"{r.improvement_pct:.0f}%")
        for r in rows
    ]
    avg = sum(r.improvement_pct for r in rows) / len(rows)
    table.append(("AVERAGE", "", "", "", f"{avg:.0f}% (paper: 30%)"))
    return format_table(
        ["Workload", "LRC/LRU", "MRD/LRU", "MRD/LRC", "MRD gain vs LRC"],
        table,
        title="Figure 5: MRD vs LRC on the LRC cluster (paper: up to 45%, avg 30%)",
    )
