"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run()`` (returns structured results) and
``render()`` (plain-text table).  The benchmark suite under
``benchmarks/`` wraps these, and EXPERIMENTS.md records the measured
numbers against the paper's.
"""

from repro.experiments import (  # noqa: F401
    fig2,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11_12,
    fig_control_latency,
    fig_elastic,
    fig_load,
    table1,
    table3,
)
from repro.experiments.harness import (
    DEFAULT_CACHE_FRACTIONS,
    STANDARD_SCHEMES,
    SweepResult,
    WorkloadRun,
    build_workload_dag,
    cache_mb_for,
    format_table,
    sweep_workload,
)

__all__ = [
    "DEFAULT_CACHE_FRACTIONS",
    "STANDARD_SCHEMES",
    "SweepResult",
    "WorkloadRun",
    "build_workload_dag",
    "cache_mb_for",
    "fig10",
    "fig11_12",
    "fig2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig_control_latency",
    "fig_elastic",
    "fig_load",
    "format_table",
    "sweep_workload",
    "table1",
    "table3",
]
