"""Figure 6 — comparison to the MemTune policy on the emulated System G.

Runs each workload on the 6-node 1-Gbps cluster (Table 4) under
MemTune-style caching and full MRD.  Paper: MRD better by up to 68 %
(PR), 33 % on average, with LogR showing a slight regression (low
reference distances give MRD nothing to exploit while it still pays
for aggressive prefetching).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import (
    DEFAULT_CACHE_FRACTIONS,
    format_table,
    sweep_workload,
)
from repro.simulator.config import MEMTUNE_CLUSTER
from repro.sweep.schemes import SchemeSpec

#: Workloads shown in the paper's Fig. 6 comparison.
FIG6_WORKLOADS: tuple[str, ...] = ("PR", "LogR", "KM", "CC", "SVD++", "PO", "LP", "TC")


@dataclass(frozen=True)
class Fig6Row:
    workload: str
    memtune_vs_lru: float
    mrd_vs_lru: float
    mrd_vs_memtune: float
    improvement_pct: float


def run(
    workloads: tuple[str, ...] = FIG6_WORKLOADS,
    cache_fractions=DEFAULT_CACHE_FRACTIONS,
    jobs: int = 1,
    store=None,
    external: bool = False,
) -> list[Fig6Row]:
    rows: list[Fig6Row] = []
    schemes = {
        "LRU": SchemeSpec("LRU"),
        "MemTune": SchemeSpec("MemTune"),
        "MRD": SchemeSpec("MRD"),
    }
    for name in workloads:
        sweep = sweep_workload(
            name, schemes=schemes, cluster=MEMTUNE_CLUSTER,
            cache_fractions=cache_fractions, jobs=jobs, store=store, external=external,
        )
        # Best absolute JCT per policy over the sweep ("best values from
        # their experiments and ours").
        best_mt = min(sweep.fractions(), key=lambda f: sweep.get("MemTune", f).jct)
        best_mrd = min(sweep.fractions(), key=lambda f: sweep.get("MRD", f).jct)
        mrd_vs_mt = sweep.get("MRD", best_mrd).jct / sweep.get("MemTune", best_mt).jct
        rows.append(
            Fig6Row(
                workload=name,
                memtune_vs_lru=sweep.normalized_jct("MemTune", best_mt),
                mrd_vs_lru=sweep.normalized_jct("MRD", best_mrd),
                mrd_vs_memtune=mrd_vs_mt,
                improvement_pct=(1 - mrd_vs_mt) * 100,
            )
        )
    return rows


def render(rows: list[Fig6Row]) -> str:
    table = [
        (r.workload, r.memtune_vs_lru, r.mrd_vs_lru, r.mrd_vs_memtune, f"{r.improvement_pct:.0f}%")
        for r in rows
    ]
    avg = sum(r.improvement_pct for r in rows) / len(rows)
    table.append(("AVERAGE", "", "", "", f"{avg:.0f}% (paper: 33%)"))
    return format_table(
        ["Workload", "MemTune/LRU", "MRD/LRU", "MRD/MemTune", "MRD gain vs MemTune"],
        table,
        title="Figure 6: MRD vs MemTune on the MemTune cluster (paper: up to 68%, avg 33%)",
    )
