"""Figure 9 — ad-hoc vs recurring DAG availability.

K-Means spans 17 jobs with heavy cross-job reuse: without the
application-wide DAG (ad-hoc mode) MRD assumes infinite distances
across job boundaries and erroneously evicts/purges blocks that later
jobs need.  TriangleCount has only 2 jobs and 0.8 references per RDD,
so the two modes are indistinguishable.  Reports normalized JCT (vs
LRU) and hit ratios for recurring and ad-hoc MRD.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import format_table, sweep_workload
from repro.simulator.config import MAIN_CLUSTER
from repro.sweep.schemes import SchemeSpec

FIG9_WORKLOADS: tuple[str, ...] = ("KM", "TC")
FIG9_FRACTIONS: tuple[float, ...] = (0.35, 0.5, 0.7)


@dataclass(frozen=True)
class Fig9Row:
    workload: str
    num_jobs: int
    refs_per_rdd: float
    recurring_jct: float
    adhoc_jct: float
    recurring_hit: float
    adhoc_hit: float


def run(
    workloads: tuple[str, ...] = FIG9_WORKLOADS,
    cache_fractions=FIG9_FRACTIONS,
    jobs: int = 1,
    store=None,
    external: bool = False,
) -> list[Fig9Row]:
    schemes = {
        "LRU": SchemeSpec("LRU"),
        "MRD-recurring": SchemeSpec("MRD", mode="recurring"),
        "MRD-adhoc": SchemeSpec("MRD", mode="adhoc"),
    }
    rows: list[Fig9Row] = []
    for name in workloads:
        sweep = sweep_workload(
            name, schemes=schemes, cluster=MAIN_CLUSTER,
            cache_fractions=cache_fractions, jobs=jobs, store=store,
            external=external,
        )
        best = min(
            sweep.fractions(), key=lambda f: sweep.normalized_jct("MRD-recurring", f)
        )
        dag = sweep.dag
        total_reads = sum(p.reference_count for p in dag.profiles.values())
        rows.append(
            Fig9Row(
                workload=name,
                num_jobs=dag.num_jobs,
                refs_per_rdd=total_reads / max(len(dag.profiles), 1),
                recurring_jct=sweep.normalized_jct("MRD-recurring", best),
                adhoc_jct=sweep.normalized_jct("MRD-adhoc", best),
                recurring_hit=sweep.get("MRD-recurring", best).hit_ratio,
                adhoc_hit=sweep.get("MRD-adhoc", best).hit_ratio,
            )
        )
    return rows


def render(rows: list[Fig9Row]) -> str:
    table = [
        (
            r.workload, r.num_jobs, round(r.refs_per_rdd, 2),
            r.recurring_jct, r.adhoc_jct,
            f"{r.recurring_hit * 100:.0f}%", f"{r.adhoc_hit * 100:.0f}%",
        )
        for r in rows
    ]
    return format_table(
        ["Workload", "Jobs", "Refs/RDD", "Recurring JCT", "Ad-hoc JCT",
         "rec hit", "adhoc hit"],
        table,
        title="Figure 9: recurring (full DAG) vs ad-hoc (per-job DAG) MRD",
    )
