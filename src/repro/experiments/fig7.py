"""Figure 7 — effect of cache size on hit ratio and runtime (SVD++).

Sweeps the per-node cache across a wide range on the LRC cluster for
LRU, LRC and MRD, reporting hit ratio and runtime per size, plus the
cache-space-savings statistic the paper highlights: how much cache MRD
needs to match LRU's hit ratio at a target point (paper: 68 % hit ratio
reached with 0.33 GB instead of 0.88 GB — 63 % savings).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.harness import format_table, sweep_workload
from repro.simulator.config import LRC_CLUSTER
from repro.sweep.schemes import SchemeSpec

FIG7_FRACTIONS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0)


@dataclass
class Fig7Result:
    workload: str
    fractions: list[float] = field(default_factory=list)
    cache_mb: list[float] = field(default_factory=list)
    jct: dict[str, list[float]] = field(default_factory=dict)
    hit: dict[str, list[float]] = field(default_factory=dict)
    #: Cache needed by each scheme to reach the target hit ratio (MB/node).
    target_hit: float = 0.0
    cache_to_reach_target: dict[str, float | None] = field(default_factory=dict)


def run(
    workload: str = "SVD++",
    fractions=FIG7_FRACTIONS,
    target_hit: float = 0.6,
    jobs: int = 1,
    store=None,
    external: bool = False,
) -> Fig7Result:
    schemes = {
        "LRU": SchemeSpec("LRU"),
        "LRC": SchemeSpec("LRC"),
        "MRD": SchemeSpec("MRD"),
    }
    sweep = sweep_workload(
        workload, schemes=schemes, cluster=LRC_CLUSTER,
        cache_fractions=fractions, jobs=jobs, store=store, external=external,
    )
    result = Fig7Result(workload=workload, target_hit=target_hit)
    result.fractions = list(fractions)
    result.cache_mb = [sweep.get("LRU", f).cache_mb_per_node for f in fractions]
    for name in schemes:
        result.jct[name] = [sweep.get(name, f).jct for f in fractions]
        result.hit[name] = [sweep.get(name, f).hit_ratio for f in fractions]
        # Smallest cache size reaching the target hit ratio.
        reached = None
        for f, cache in zip(fractions, result.cache_mb):
            if sweep.get(name, f).hit_ratio >= target_hit:
                reached = cache
                break
        result.cache_to_reach_target[name] = reached
    return result


def cache_savings_pct(result: Fig7Result, better: str = "MRD", baseline: str = "LRU") -> float | None:
    """Cache-space savings of ``better`` vs ``baseline`` at the target hit."""
    b = result.cache_to_reach_target.get(better)
    base = result.cache_to_reach_target.get(baseline)
    if b is None or base is None or base == 0:
        return None
    return (1 - b / base) * 100


def render(result: Fig7Result) -> str:
    rows = []
    for i, f in enumerate(result.fractions):
        rows.append(
            (
                f, round(result.cache_mb[i], 1),
                result.jct["LRU"][i], result.jct["LRC"][i], result.jct["MRD"][i],
                f"{result.hit['LRU'][i] * 100:.0f}%",
                f"{result.hit['LRC'][i] * 100:.0f}%",
                f"{result.hit['MRD'][i] * 100:.0f}%",
            )
        )
    text = format_table(
        ["CacheFrac", "MB/node", "LRU-JCT", "LRC-JCT", "MRD-JCT",
         "LRU-hit", "LRC-hit", "MRD-hit"],
        rows,
        title=f"Figure 7: cache-size sweep for {result.workload} on the LRC cluster",
    )
    savings = cache_savings_pct(result)
    if savings is not None:
        text += (
            f"\ncache to reach {result.target_hit * 100:.0f}% hit ratio: "
            f"LRU {result.cache_to_reach_target['LRU']:.0f} MB vs "
            f"MRD {result.cache_to_reach_target['MRD']:.0f} MB "
            f"→ {savings:.0f}% savings (paper: 63%)"
        )
    return text
