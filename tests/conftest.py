"""Shared fixtures: miniature applications and clusters used across tests."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.network import DiskModel, NetworkModel
from repro.dag.context import SparkApplication, SparkContext
from repro.dag.dag_builder import ApplicationDAG, build_dag


def make_iterative_app(
    iterations: int = 3,
    input_mb: float = 96.0,
    partitions: int = 8,
    unpersist: bool = False,
    name: str = "mini-pagerank",
) -> SparkApplication:
    """PageRank-like miniature: cached links + per-iteration cached ranks."""
    ctx = SparkContext(name)
    links = ctx.text_file("links", size_mb=input_mb, num_partitions=partitions)
    links = links.map(name="parsed-links").cache()
    ranks = links.map(size_factor=0.25, name="ranks-0").cache()
    for i in range(iterations):
        contribs = links.zip_partitions(ranks, size_factor=0.2, name=f"contribs-{i}")
        new_ranks = contribs.reduce_by_key(size_factor=0.8, name=f"ranks-{i + 1}").cache()
        new_ranks.count()
        if unpersist:
            ctx.unpersist(ranks)
        ranks = new_ranks
    ranks.collect()
    return SparkApplication(ctx)


def make_linear_app(num_jobs: int = 4, name: str = "mini-gd") -> SparkApplication:
    """Gradient-descent-like miniature: one cached dataset, N single-stage jobs."""
    ctx = SparkContext(name)
    data = ctx.text_file("train", size_mb=64.0, num_partitions=8).map(name="points").cache()
    data.count()
    for i in range(num_jobs - 1):
        data.map_partitions(size_factor=0.05, name=f"grad-{i}").collect()
    return SparkApplication(ctx)


def make_diamond_app(name: str = "mini-diamond") -> SparkApplication:
    """Two branches off one cached RDD joined back together (one job)."""
    ctx = SparkContext(name)
    base = ctx.text_file("in", size_mb=32.0, num_partitions=4).map(name="base").cache()
    left = base.reduce_by_key(name="left")
    right = base.group_by_key(name="right")
    joined = left.join(right, name="joined")
    joined.collect()
    return SparkApplication(ctx)


@pytest.fixture
def iterative_app() -> SparkApplication:
    return make_iterative_app()


@pytest.fixture
def iterative_dag(iterative_app) -> ApplicationDAG:
    return build_dag(iterative_app)


@pytest.fixture
def linear_app() -> SparkApplication:
    return make_linear_app()


@pytest.fixture
def linear_dag(linear_app) -> ApplicationDAG:
    return build_dag(linear_app)


@pytest.fixture
def diamond_dag() -> ApplicationDAG:
    return build_dag(make_diamond_app())


@pytest.fixture
def small_cluster_config() -> ClusterConfig:
    return ClusterConfig(
        name="unit-test",
        num_nodes=2,
        slots_per_node=2,
        cache_mb_per_node=64.0,
        network=NetworkModel(bandwidth_mbps=800.0),
        disk=DiskModel(bandwidth_mb_per_s=100.0, seek_s=0.002),
    )
