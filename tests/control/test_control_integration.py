"""Engine-level control-plane behavior: staleness, loss, fault tolerance.

The transport-level contracts live in ``test_plane.py``; these tests
drive full simulations and assert the *consequences*: an rpc plane at
zero latency is invisible, nonzero latency degrades only schemes that
depend on driver state, outage windows drop traffic, and a replaced
worker gets the distance table re-issued (paper §4.4).
"""

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.control.plane import RpcConfig
from repro.core.policy import MrdScheme
from repro.dag.dag_builder import build_dag
from repro.policies.scheme import LruScheme
from repro.simulator.engine import SparkSimulator, simulate
from repro.simulator.failures import FailurePlan
from repro.trace.recorder import TraceRecorder
from tests.conftest import make_iterative_app


def config(cache_mb: float = 40.0) -> ClusterConfig:
    return ClusterConfig(num_nodes=2, slots_per_node=2, cache_mb_per_node=cache_mb)


def dag():
    return build_dag(make_iterative_app(iterations=4))


def fingerprint(m) -> tuple:
    return (
        m.jct, m.stats.accesses, m.stats.hits, m.stats.evictions,
        m.stats.purged, m.stats.prefetches_issued, m.stats.prefetches_used,
        tuple(m.per_node_hit_ratio),
        tuple((r.seq, r.start, r.end) for r in m.stage_records),
    )


class TestInstantPlane:
    def test_is_the_default_and_counts_traffic(self):
        m = simulate(dag(), config(), MrdScheme())
        assert m.control_plane == "instant"
        assert m.control.sent == m.control.delivered > 0
        assert m.control.dropped == 0
        assert m.control.mean_order_delay == 0.0

    def test_unknown_plane_rejected(self):
        with pytest.raises(ValueError, match="control_plane"):
            SparkSimulator(dag(), config(), MrdScheme(), control_plane="smoke-signals")


class TestRpcZeroEqualsInstant:
    @pytest.mark.parametrize("scheme_factory", [
        MrdScheme, LruScheme,
        lambda: MrdScheme(prefetch=False), lambda: MrdScheme(evict=False),
    ])
    def test_zero_latency_zero_loss_matches(self, scheme_factory):
        base = simulate(dag(), config(), scheme_factory())
        rpc = simulate(
            dag(), config(), scheme_factory(),
            control_plane="rpc", control_config=RpcConfig(latency_s=0.0),
        )
        assert fingerprint(base) == fingerprint(rpc)
        assert rpc.control_plane == "rpc"


class TestLatencyStaleness:
    def test_latency_leaves_lru_untouched(self):
        base = simulate(dag(), config(), LruScheme())
        slow = simulate(
            dag(), config(), LruScheme(),
            control_plane="rpc", control_config=RpcConfig(latency_s=3.0),
        )
        assert fingerprint(base) == fingerprint(slow)
        assert slow.control.stale_orders == 0

    def test_latency_degrades_mrd_and_counts_staleness(self):
        base = simulate(dag(), config(cache_mb=30.0), MrdScheme())
        slow = simulate(
            dag(), config(cache_mb=30.0), MrdScheme(),
            control_plane="rpc", control_config=RpcConfig(latency_s=3.0),
        )
        assert slow.control.stale_orders > 0
        assert slow.control.mean_order_delay == pytest.approx(3.0)
        # Orders land late, so the cache serves fewer of the reads the
        # driver planned for.
        assert slow.stats.hits <= base.stats.hits
        assert slow.jct >= base.jct

    def test_deliveries_are_deterministic_across_runs(self):
        cfg = RpcConfig(latency_s=0.4, jitter_s=0.3, loss_rate=0.1, seed=11)
        a = simulate(dag(), config(), MrdScheme(),
                     control_plane="rpc", control_config=cfg)
        b = simulate(dag(), config(), MrdScheme(),
                     control_plane="rpc", control_config=cfg)
        assert fingerprint(a) == fingerprint(b)
        assert a.control.dropped == b.control.dropped > 0


class TestOutages:
    def test_outage_window_drops_control_traffic(self):
        plan = FailurePlan().add_outage(from_seq=0, to_seq=99, loss_rate=1.0)
        m = simulate(
            dag(), config(), MrdScheme(), failure_plan=plan,
            control_plane="rpc", control_config=RpcConfig(latency_s=0.0),
        )
        # Bootstrap registration is send_local and survives; everything
        # else in the window is lost.
        assert m.control.dropped > 0
        assert m.stats.purged == 0 and m.stats.prefetches_issued == 0

    def test_outage_ignored_by_instant_plane(self):
        plan = FailurePlan().add_outage(from_seq=0, to_seq=99, loss_rate=1.0)
        base = simulate(dag(), config(), MrdScheme())
        m = simulate(dag(), config(), MrdScheme(), failure_plan=plan)
        assert fingerprint(m) == fingerprint(base)
        assert m.control.dropped == 0


class TestFaultTolerance:
    def test_failed_worker_reregisters_and_gets_table(self):
        plan = FailurePlan().add(at_seq=3, node_id=1)
        rec = TraceRecorder()
        m = simulate(
            dag(), config(), MrdScheme(), failure_plan=plan, recorder=rec,
            control_plane="rpc", control_config=RpcConfig(latency_s=0.01),
        )
        assert m.failure_lost_blocks > 0
        kinds = [(e.kind, getattr(e, "msg", None)) for e in rec.events]
        assert ("msg_send", "worker_register") in kinds
        # The driver answers the (re-)registration with a table snapshot.
        assert ("msg_send", "stage_boundary") in kinds

    def test_run_completes_under_failure_plus_latency(self):
        plan = FailurePlan().add(at_seq=2, node_id=0).add(at_seq=5, node_id=1)
        m = simulate(
            dag(), config(), MrdScheme(), failure_plan=plan,
            control_plane="rpc", control_config=RpcConfig(latency_s=1.0),
        )
        assert m.jct > 0
        assert m.control.sent == m.control.delivered + m.control.dropped


class TestMessageTrace:
    def test_rpc_records_message_events_instant_does_not(self):
        rec_i = TraceRecorder()
        simulate(dag(), config(), MrdScheme(), recorder=rec_i)
        assert not [e for e in rec_i.events if e.kind.startswith("msg_")]

        rec_r = TraceRecorder()
        simulate(
            dag(), config(), MrdScheme(), recorder=rec_r,
            control_plane="rpc", control_config=RpcConfig(latency_s=0.5),
        )
        sends = [e for e in rec_r.events if e.kind == "msg_send"]
        delivers = [e for e in rec_r.events if e.kind == "msg_deliver"]
        assert sends and delivers
        # Every networked delivery happens at its send's promised time;
        # only the bootstrap registrations (send_local, synchronous by
        # contract) bypass the modeled latency.
        for e in delivers:
            if e.msg == "worker_register":
                assert e.t == e.sent_at == 0.0
            else:
                assert e.t == e.sent_at + 0.5
