"""Unit tests for the control-plane message vocabulary."""

import dataclasses

import pytest

from repro.control.messages import (
    MESSAGE_TYPES,
    CacheStatusReport,
    ControlMessage,
    PrefetchOrder,
    PurgeOrder,
    StageBoundary,
    WorkerDeregister,
    WorkerRegister,
)


def test_registry_covers_every_concrete_message():
    assert set(MESSAGE_TYPES) == {
        "purge_order", "prefetch_order", "stage_boundary",
        "cache_status", "worker_register", "worker_deregister",
    }
    for kind, cls in MESSAGE_TYPES.items():
        assert cls.kind == kind
        assert issubclass(cls, ControlMessage)


def test_only_purge_and_prefetch_are_orders():
    orders = {kind for kind, cls in MESSAGE_TYPES.items() if cls.is_order}
    assert orders == {"purge_order", "prefetch_order"}


def test_messages_are_frozen():
    msg = PurgeOrder(sent_at=1.0, node_id=0, rdd_id=3, issued_seq=2)
    with pytest.raises(dataclasses.FrozenInstanceError):
        msg.rdd_id = 4


def test_prefetch_order_carries_block_identity_by_value():
    msg = PrefetchOrder(
        sent_at=0.5, node_id=1, rdd_id=7, partition=3,
        size_mb=16.0, rdd_name="edges", issued_seq=4,
    )
    assert (msg.rdd_id, msg.partition, msg.size_mb, msg.rdd_name) == (
        7, 3, 16.0, "edges"
    )


def test_stage_boundary_holds_distance_mapping():
    msg = StageBoundary(
        sent_at=2.0, node_id=0, seq=5, distances={1: 2.0, 2: float("inf")}
    )
    assert msg.distances[1] == 2.0


def test_cache_status_allows_idle_none_hit_ratio():
    msg = CacheStatusReport(
        sent_at=0.0, node_id=2, used_mb=0.0, free_mb=64.0,
        hit_ratio=None, num_blocks=0,
    )
    assert msg.hit_ratio is None


def test_register_default_reasons():
    assert WorkerRegister(sent_at=0.0, node_id=0).reason == "startup"
    assert WorkerDeregister(sent_at=0.0, node_id=0).reason == "failure"
