"""Unit tests for the instant and rpc control-plane transports."""

import math

import pytest

from repro.cluster.network import NetworkModel
from repro.control.messages import CacheStatusReport, PurgeOrder
from repro.control.plane import (
    CONTROL_PLANES,
    InstantControlPlane,
    RpcConfig,
    RpcControlPlane,
    build_control_plane,
)


def purge(sent_at: float, node_id: int = 0, rdd_id: int = 1) -> PurgeOrder:
    return PurgeOrder(sent_at=sent_at, node_id=node_id, rdd_id=rdd_id, issued_seq=0)


def status(sent_at: float, node_id: int = 0) -> CacheStatusReport:
    return CacheStatusReport(
        sent_at=sent_at, node_id=node_id, used_mb=1.0, free_mb=2.0,
        hit_ratio=0.5, num_blocks=1,
    )


class Sink:
    """Deliver callback recording (msg, at); configurable staleness."""

    def __init__(self, stale: bool = False) -> None:
        self.calls: list[tuple] = []
        self.stale = stale

    def __call__(self, msg, at):
        self.calls.append((msg, at))
        return self.stale


class TestInstantPlane:
    def test_delivers_synchronously_at_send_time(self):
        plane = InstantControlPlane()
        sink = Sink()
        plane.send(purge(3.5), sink)
        assert sink.calls == [(purge(3.5), 3.5)]
        assert plane.stats.sent == plane.stats.delivered == 1
        assert not plane.heap

    def test_order_accounting(self):
        plane = InstantControlPlane()
        plane.send(purge(1.0), Sink(stale=True))
        plane.send(status(1.0), Sink())
        st = plane.stats
        assert st.orders_applied == 1  # status reports are not orders
        assert st.stale_orders == 1
        assert st.mean_order_delay == 0.0

    def test_pump_is_a_noop(self):
        plane = InstantControlPlane()
        plane.pump(math.inf)  # nothing to deliver, nothing to raise


class TestRpcPlane:
    def test_delivery_delayed_by_latency(self):
        plane = RpcControlPlane(RpcConfig(latency_s=2.0))
        sink = Sink()
        plane.send(purge(1.0), sink)
        assert sink.calls == []
        plane.pump(2.9)
        assert sink.calls == []
        plane.pump(3.0)
        assert sink.calls == [(purge(1.0), 3.0)]
        assert plane.stats.mean_order_delay == pytest.approx(2.0)

    def test_default_latency_from_network_model(self):
        net = NetworkModel(latency_s=0.05)
        plane = RpcControlPlane(RpcConfig(message_kb=0.0), network=net)
        assert plane.latency_s == pytest.approx(0.05)

    def test_zero_knobs_consume_no_randomness(self):
        # Draw-for-draw determinism: with loss and jitter at zero the
        # RNG is untouched, so rpc(0,0,0) cannot diverge from instant.
        plane = RpcControlPlane(RpcConfig(latency_s=0.0))
        state = plane._rng.getstate()
        plane.send(purge(0.0), Sink())
        assert plane._rng.getstate() == state

    def test_total_loss_drops_everything(self):
        plane = RpcControlPlane(RpcConfig(latency_s=0.0, loss_rate=1.0))
        sink = Sink()
        for i in range(10):
            plane.send(purge(float(i)), sink)
        plane.pump(math.inf)
        assert sink.calls == []
        assert plane.stats.dropped == plane.stats.sent == 10
        assert plane.stats.delivered == 0

    def test_loss_is_seed_deterministic(self):
        def dropped(seed):
            plane = RpcControlPlane(RpcConfig(latency_s=0.0, loss_rate=0.5, seed=seed))
            for i in range(50):
                plane.send(purge(float(i)), Sink())
            return plane.stats.dropped

        assert dropped(1) == dropped(1)
        assert 0 < dropped(1) < 50

    def test_jitter_can_reorder_but_ties_break_by_send_seq(self):
        plane = RpcControlPlane(RpcConfig(latency_s=1.0))
        sink = Sink()
        plane.send(purge(0.0, rdd_id=1), sink)
        plane.send(purge(0.0, rdd_id=2), sink)
        plane.pump(math.inf)
        assert [m.rdd_id for m, _ in sink.calls] == [1, 2]  # FIFO without jitter

    def test_outage_hook_boosts_loss(self):
        plane = RpcControlPlane(RpcConfig(latency_s=0.0))
        plane.outage_loss = lambda msg: 1.0 if msg.node_id == 1 else 0.0
        hit, dead = Sink(), Sink()
        plane.send(purge(0.0, node_id=0), hit)
        plane.send(purge(0.0, node_id=1), dead)
        plane.pump(math.inf)
        assert len(hit.calls) == 1
        assert dead.calls == []
        assert plane.stats.dropped == 1

    def test_reset_restores_rng_and_heap(self):
        plane = RpcControlPlane(RpcConfig(latency_s=5.0, loss_rate=0.5, seed=7))
        for i in range(20):
            plane.send(purge(float(i)), Sink())
        first = (plane.stats.sent, plane.stats.dropped)
        plane.reset()
        assert not plane.heap and plane.stats.sent == 0
        for i in range(20):
            plane.send(purge(float(i)), Sink())
        assert (plane.stats.sent, plane.stats.dropped) == first

    def test_send_local_bypasses_the_network(self):
        plane = RpcControlPlane(RpcConfig(latency_s=10.0, loss_rate=1.0))
        sink = Sink()
        plane.send_local(purge(0.0), sink)
        assert sink.calls == [(purge(0.0), 0.0)]


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"latency_s": -1.0},
        {"jitter_s": -0.1},
        {"loss_rate": -0.1},
        {"loss_rate": 1.5},
        {"message_kb": -1.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RpcConfig(**kwargs)


def test_build_control_plane():
    assert isinstance(build_control_plane("instant"), InstantControlPlane)
    assert isinstance(build_control_plane("rpc"), RpcControlPlane)
    assert set(CONTROL_PLANES) == {"instant", "rpc"}
    with pytest.raises(ValueError):
        build_control_plane("carrier-pigeon")
