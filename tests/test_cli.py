"""Tests for the command-line interface."""

import pytest

from repro.cli import SCHEME_FACTORIES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "PR"])
        assert args.scheme == "MRD"
        assert args.cluster == "main"
        assert args.cache_fraction == 0.5
        assert args.control_plane == "instant"
        assert args.control_latency is None

    def test_control_plane_choices_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "PR", "--control-plane", "telepathy"])

    def test_elastic_defaults(self):
        args = build_parser().parse_args(["run", "PR"])
        assert args.placement == "stride"
        assert args.churn_rate == 0.0
        assert args.churn_seed == 0
        assert args.rebalance == "drop"

    def test_elastic_choices_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "PR", "--placement", "consistent"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "PR", "--rebalance", "replicate"])


class TestCommands:
    def test_workloads_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("KM", "SCC", "Sort", "HiKMeans"):
            assert name in out

    def test_run_prints_summary(self, capsys):
        assert main(["run", "SP", "--scheme", "LRU", "--partitions", "16"]) == 0
        out = capsys.readouterr().out
        assert "LRU" in out and "JCT" in out

    def test_run_verbose_prints_stages(self, capsys):
        assert main(["run", "SP", "--scheme", "MRD", "--partitions", "16", "-v"]) == 0
        assert "stage seq=" in capsys.readouterr().out

    def test_run_absolute_cache(self, capsys):
        assert main(["run", "SP", "--cache-mb", "16", "--partitions", "16"]) == 0
        assert "cache=16.0 MB/node" in capsys.readouterr().out

    def test_run_adhoc_mode(self, capsys):
        assert main(["run", "SP", "--mode", "adhoc", "--partitions", "16"]) == 0
        assert "MRD-adhoc" in capsys.readouterr().out

    def test_run_job_metric(self, capsys):
        assert main(["run", "SP", "--metric", "job", "--partitions", "16"]) == 0
        assert "MRD-jobdist" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main([
            "sweep", "SP", "--schemes", "LRU,MRD", "--fractions", "0.3,0.6",
        ]) == 0
        out = capsys.readouterr().out
        assert "Sweep: SP" in out
        assert out.count("MRD") >= 2

    def test_sweep_parallel_with_store_caches(self, tmp_path, capsys):
        args = [
            "sweep", "SP", "--schemes", "LRU,MRD", "--fractions", "0.3,0.6",
            "--partitions", "8", "--jobs", "2", "--store", str(tmp_path),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "4 computed, 0 cached" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 computed, 4 cached" in second
        # The tables themselves must be identical run-to-run.
        assert first.split("cells:")[0] == second.split("cells:")[0]

    def test_sweep_progress_goes_to_stderr(self, tmp_path, capsys):
        assert main([
            "sweep", "SP", "--schemes", "LRU", "--fractions", "0.5",
            "--partitions", "8", "--store", str(tmp_path),
        ]) == 0
        captured = capsys.readouterr()
        assert "[1/1]" in captured.err
        assert "[1/1]" not in captured.out

    def test_sweep_multiple_workloads(self, capsys):
        assert main([
            "sweep", "SP", "TC", "--schemes", "LRU", "--fractions", "0.5",
            "--partitions", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "Sweep: SP on main" in out and "Sweep: TC on main" in out

    def test_sweep_scheduler_equivalence(self, capsys):
        assert main([
            "sweep", "SP", "--schemes", "LRU,MRD", "--fractions", "0.4",
            "--partitions", "8", "--schedulers", "event,reference",
        ]) == 0
        out = capsys.readouterr().out
        assert "scheduler equivalence" in out and "agree" in out

    def test_sweep_error_cell_exits_nonzero(self, capsys):
        assert main([
            "sweep", "SP", "--schemes", "LRU", "--fractions", "0.5",
            "--partitions", "8", "--scale", "-1",
        ]) == 1
        out = capsys.readouterr().out
        assert "ERROR" in out and "FAILED" in out

    def test_sweep_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "grid.json"
        spec.write_text(
            '{"workloads": ["SP"], "schemes": ["LRU", "MRD"], '
            '"fractions": [0.4], "partitions": 8}'
        )
        assert main(["sweep", "--spec", str(spec)]) == 0
        assert "Sweep: SP" in capsys.readouterr().out

    def test_sweep_bad_spec_exits(self, tmp_path):
        spec = tmp_path / "grid.json"
        spec.write_text('{"workloads": ["SP"], "warp": 9}')
        with pytest.raises(SystemExit, match="sweep failed"):
            main(["sweep", "--spec", str(spec)])

    def test_sweep_unknown_scheme_exits(self):
        with pytest.raises(SystemExit, match="unknown scheme"):
            main(["sweep", "SP", "--schemes", "MAGIC"])

    def test_sweep_unknown_workload_exits(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["sweep", "NOPE", "--schemes", "LRU"])

    def test_sweep_without_workloads_exits(self):
        with pytest.raises(SystemExit, match="workload names"):
            main(["sweep"])

    def test_experiment_store_rejected_for_tables(self, tmp_path):
        with pytest.raises(SystemExit, match="does not use a result store"):
            main(["experiment", "table1", "--store", str(tmp_path)])

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_unknown_scheme_exits(self):
        with pytest.raises(SystemExit, match="unknown scheme"):
            main(["run", "SP", "--scheme", "MAGIC"])

    def test_unknown_cluster_exits(self):
        with pytest.raises(SystemExit, match="unknown cluster"):
            main(["run", "SP", "--cluster", "moon"])

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["experiment", "fig99"])

    def test_bench_writes_payload_and_passes_own_baseline(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        args = ["bench", "--tasks", "200", "--nodes", "4", "--repeats", "1"]
        assert main(args + ["-o", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "metrics identical across schedulers: yes" in out
        # A payload always passes a check against itself: -o writes the
        # payload, then --check-baseline compares that same payload to
        # the file just written.  (Re-running the bench against the
        # first run's file would be a coin flip at this micro size —
        # sub-millisecond legs make the speedup pure timer noise.)
        assert main(args + ["-o", str(out_file),
                            "--check-baseline", str(out_file)]) == 0
        assert "baseline check passed" in capsys.readouterr().out

    def test_bench_no_reference_skips_comparison(self, capsys):
        assert main(["bench", "--tasks", "200", "--nodes", "4",
                     "--repeats", "1", "--no-reference"]) == 0
        out = capsys.readouterr().out
        assert "reference" not in out and "speedup" not in out

    def test_bench_invalid_tasks_exits(self):
        with pytest.raises(SystemExit, match="bench failed"):
            main(["bench", "--tasks", "0"])

    def test_bench_unreadable_baseline_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read baseline"):
            main(["bench", "--tasks", "200", "--nodes", "4", "--repeats", "1",
                  "--check-baseline", str(tmp_path / "missing.json")])

    def test_dot_lineage(self, capsys):
        assert main(["dot", "SP", "--view", "lineage"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph lineage")

    def test_dot_stages_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "pr.dot"
        assert main(["dot", "SP", "--view", "stages", "-o", str(out_file)]) == 0
        assert out_file.read_text().startswith("digraph stages")
        assert "written" in capsys.readouterr().out

    def test_dot_no_skipped(self, capsys):
        assert main(["dot", "CC", "--no-skipped"]) == 0
        assert "(skipped)" not in capsys.readouterr().out

    def test_run_rpc_control_plane_prints_counters(self, capsys):
        assert main([
            "run", "SP", "--partitions", "16",
            "--control-plane", "rpc", "--control-latency", "2.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "control[rpc]" in out and "delivered" in out

    def test_run_instant_plane_hides_control_line(self, capsys):
        assert main(["run", "SP", "--partitions", "16"]) == 0
        assert "control[" not in capsys.readouterr().out

    def test_run_bad_control_config_exits(self):
        with pytest.raises(SystemExit, match="bad control-plane config"):
            main(["run", "SP", "--control-plane", "rpc",
                  "--control-loss", "1.5"])

    def test_run_with_churn_prints_membership_line(self, capsys):
        assert main([
            "run", "KM", "--partitions", "8",
            "--placement", "rendezvous",
            "--churn-rate", "0.4", "--rebalance", "migrate",
        ]) == 0
        out = capsys.readouterr().out
        assert "membership" in out and "migrated=" in out

    def test_run_static_hides_membership_line(self, capsys):
        assert main(["run", "SP", "--partitions", "16"]) == 0
        assert "membership" not in capsys.readouterr().out

    def test_run_bad_churn_config_exits(self):
        with pytest.raises(SystemExit, match="bad churn config"):
            main(["run", "SP", "--churn-rate", "1.5"])

    def test_experiment_control_latency_registered(self, capsys):
        assert main(["experiment", "fig_control_latency"]) == 0
        assert "Control-plane latency" in capsys.readouterr().out

    def test_every_scheme_name_runs(self, capsys):
        for name in SCHEME_FACTORIES:
            assert main([
                "run", "SP", "--scheme", name, "--partitions", "8",
                "--cache-fraction", "0.4",
            ]) == 0


class TestLintCommand:
    """``repro lint``: the determinism-contract analyzer as a subcommand."""

    BAD = "import random\nx = random.random()\n"
    OK = '"""Clean module."""\n\nX = 1\n'

    @staticmethod
    def _file(tmp_path, source):
        path = tmp_path / "mod.py"
        path.write_text(source)
        return str(path)

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        assert main(["lint", self._file(tmp_path, self.OK)]) == 0
        assert "0 finding(s) in 1 file" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        assert main(["lint", self._file(tmp_path, self.BAD)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "mod.py:2:" in out

    def test_json_format(self, tmp_path, capsys):
        import json

        assert main([
            "lint", self._file(tmp_path, self.BAD), "--format", "json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "DET001"

    def test_select_and_ignore(self, tmp_path):
        bad = self._file(tmp_path, self.BAD)
        assert main(["lint", bad, "--select", "MUT001"]) == 0
        assert main(["lint", bad, "--ignore", "DET001"]) == 0
        assert main(["lint", bad, "--select", "DET001,MUT001"]) == 1

    def test_unknown_rule_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown rule"):
            main(["lint", self._file(tmp_path, self.OK), "--select", "NOPE"])

    def test_baseline_gates_only_new_findings(self, tmp_path, capsys):
        bad = self._file(tmp_path, self.BAD)
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", bad, "--baseline", baseline,
                     "--write-baseline"]) == 0
        assert "baseline written" in capsys.readouterr().out
        # Grandfathered findings no longer fail...
        assert main(["lint", bad, "--baseline", baseline]) == 0
        assert "(baseline)" in capsys.readouterr().out
        # ...but a new finding beyond the baseline does.
        (tmp_path / "mod.py").write_text(self.BAD + "y = random.randint(1, 6)\n")
        assert main(["lint", bad, "--baseline", baseline]) == 1

    def test_write_baseline_requires_path(self, tmp_path):
        with pytest.raises(SystemExit, match="--write-baseline"):
            main(["lint", self._file(tmp_path, self.OK), "--write-baseline"])

    def test_malformed_baseline_exits(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("not json")
        with pytest.raises(SystemExit, match="lint failed"):
            main(["lint", self._file(tmp_path, self.OK),
                  "--baseline", str(baseline)])

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "DET004", "MUT001"):
            assert rule_id in out

    def test_missing_path_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="lint failed"):
            main(["lint", str(tmp_path / "absent.py")])

    def test_module_entry_point_matches_subcommand(self, tmp_path):
        from repro.analysis.cli import main as lint_main

        assert lint_main([self._file(tmp_path, self.BAD)]) == 1
        assert lint_main([self._file(tmp_path, self.OK)]) == 0


class TestDistributedSweep:
    """``repro sweep --worker`` / ``--serve``: the distributed service CLI."""

    GRID = ["SP", "--schemes", "LRU,MRD", "--fractions", "0.3,0.6",
            "--partitions", "8"]

    def test_worker_drains_a_small_grid(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["sweep", *self.GRID, "--store", store, "--worker",
                     "--worker-id", "w1", "--poll", "0.01"]) == 0
        captured = capsys.readouterr()
        assert "worker w1: 4 executed (0 errors)" in captured.out
        assert "store drained: every cell is settled" in captured.out
        assert captured.err.count("ok") == 4  # per-cell progress on stderr

    def test_worker_store_matches_serial_run(self, tmp_path, capsys):
        from repro.sweep import ResultStore

        serial, shared = str(tmp_path / "serial"), str(tmp_path / "shared")
        assert main(["sweep", *self.GRID, "--jobs", "1",
                     "--store", serial]) == 0
        assert main(["sweep", *self.GRID, "--store", shared, "--worker",
                     "--poll", "0.01"]) == 0
        assert (
            ResultStore(serial).content_digest()
            == ResultStore(shared).content_digest()
        )

    def test_worker_resumes_from_published_manifest(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["sweep", *self.GRID, "--store", store, "--worker",
                     "--max-cells", "1", "--poll", "0.01"]) == 0
        capsys.readouterr()
        # Second worker gets the grid from grid.json — no workload flags.
        assert main(["sweep", "--store", store, "--worker",
                     "--worker-id", "w2", "--poll", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "worker w2: 3 executed" in out
        assert "store drained" in out

    def test_worker_exits_nonzero_on_error_cells(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["sweep", "SP", "--schemes", "LRU", "--fractions", "0.5",
                     "--partitions", "8", "--scale", "-1",
                     "--store", store, "--worker", "--poll", "0.01"]) == 1
        assert "1 error" in capsys.readouterr().out

    def test_worker_requires_store(self):
        with pytest.raises(SystemExit, match="--store"):
            main(["sweep", "SP", "--worker"])

    def test_worker_without_any_grid_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no grid"):
            main(["sweep", "--store", str(tmp_path), "--worker"])

    def test_worker_and_serve_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["sweep", "--store", str(tmp_path), "--worker", "--serve"])

    def test_serve_once_writes_json_and_html(self, tmp_path, capsys):
        import json as json_mod

        from repro.sweep import DASHBOARD_SCHEMA_VERSION

        store = tmp_path / "store"
        assert main(["sweep", *self.GRID, "--store", str(store),
                     "--worker", "--poll", "0.01"]) == 0
        capsys.readouterr()
        assert main(["sweep", "--store", str(store), "--serve",
                     "--once"]) == 0
        assert "dashboard written to" in capsys.readouterr().out
        payload = json_mod.loads((store / "dashboard.json").read_text())
        assert payload["schema"] == DASHBOARD_SCHEMA_VERSION
        assert payload["progress"]["done"] == 4
        html = (store / "dashboard.html").read_text()
        assert html.startswith("<!doctype html>")
        assert "Sweep dashboard" in html

    def test_serve_once_honors_out_dir(self, tmp_path, capsys):
        store, out = tmp_path / "store", tmp_path / "www"
        assert main(["sweep", "SP", "--schemes", "LRU", "--fractions", "0.5",
                     "--partitions", "8", "--store", str(store),
                     "--worker", "--poll", "0.01"]) == 0
        capsys.readouterr()
        assert main(["sweep", "--store", str(store), "--serve", "--once",
                     "--out", str(out)]) == 0
        assert (out / "dashboard.json").exists()
        assert (out / "dashboard.html").exists()

    def test_serve_requires_store(self):
        with pytest.raises(SystemExit, match="--store"):
            main(["sweep", "--serve", "--once"])

    def test_external_requires_store(self):
        with pytest.raises(SystemExit, match="--store"):
            main(["sweep", "SP", "--workers-external"])

    def test_external_times_out_without_workers(self, tmp_path):
        with pytest.raises(SystemExit, match="external workers"):
            main(["sweep", "SP", "--schemes", "LRU", "--fractions", "0.5",
                  "--partitions", "8", "--store", str(tmp_path),
                  "--workers-external", "--external-timeout", "0.1"])

    def test_external_serves_settled_store(self, tmp_path, capsys):
        """A drained store satisfies the coordinator with no workers."""
        store = str(tmp_path / "store")
        assert main(["sweep", *self.GRID, "--store", store]) == 0
        capsys.readouterr()
        assert main(["sweep", *self.GRID, "--store", store,
                     "--workers-external", "--external-timeout", "5"]) == 0
        assert "4 cached" in capsys.readouterr().out
