"""Fixture-based tests: one positive and one negative file per rule.

Each rule must (a) fire on every construct its ``*_bad.py`` fixture
stages and (b) stay silent on the ``*_ok.py`` twin, which shows the
sanctioned way to write the same thing.  Rules are exercised through
:func:`lint_file` with scoping off, so path-scoped rules (DET002,
DET003) still see the fixture files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import get_rule
from repro.analysis.runner import lint_file

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id → number of findings its positive fixture stages.
EXPECTED_POSITIVES = {
    "DET001": 4,
    "DET002": 5,
    "DET003": 4,
    "DET004": 3,
    "MUT001": 4,
}


def _lint(rule_id: str, name: str):
    return lint_file(FIXTURES / name, [get_rule(rule_id)], scoped=False)


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_POSITIVES))
def test_positive_fixture_fires(rule_id):
    findings = _lint(rule_id, f"{rule_id.lower()}_bad.py")
    assert len(findings) == EXPECTED_POSITIVES[rule_id], [
        f.render() for f in findings
    ]
    assert all(f.rule == rule_id for f in findings)


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_POSITIVES))
def test_negative_fixture_is_clean(rule_id):
    findings = _lint(rule_id, f"{rule_id.lower()}_ok.py")
    assert findings == [], [f.render() for f in findings]


def test_findings_carry_locations():
    findings = _lint("DET001", "det001_bad.py")
    assert all(f.line > 0 and f.col > 0 for f in findings)
    assert all(f.path.endswith("det001_bad.py") for f in findings)
    rendered = findings[0].render()
    assert ":" in rendered and "DET001" in rendered


def test_det001_names_the_draw_function():
    findings = _lint("DET001", "det001_bad.py")
    messages = " ".join(f.message for f in findings)
    assert "random.seed()" in messages
    assert "random.Random" in messages  # every message points at the fix


def test_det002_scope_covers_the_simulated_world():
    rule = get_rule("DET002")
    assert rule.in_scope("src/repro/simulator/engine.py")
    assert rule.in_scope("src/repro/core/mrd_table.py")
    assert rule.in_scope("src/repro/policies/lru.py")
    assert rule.in_scope("src/repro/control/plane.py")
    # The sweep runner and bench harness legitimately time things.
    assert not rule.in_scope("src/repro/sweep/runner.py")
    assert not rule.in_scope("src/repro/bench/engine_bench.py")


def test_det001_exempts_bench():
    rule = get_rule("DET001")
    assert rule.in_scope("src/repro/cluster/cluster.py")
    assert not rule.in_scope("src/repro/bench/engine_bench.py")
    assert not rule.in_scope("tests/workloads/test_synthetic.py")


def test_unknown_rule_id_raises():
    with pytest.raises(KeyError, match="DET001"):
        get_rule("NOPE999")
