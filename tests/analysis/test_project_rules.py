"""Whole-program rule tests over the multi-file fixture packages.

Each new cross-module rule (RNG1xx, IO2xx, EVT301) has a ``*_bad``
fixture *package* staging its findings across several modules and an
``*_ok`` twin showing the sanctioned idiom, which must lint silent.
Packages are linted through :func:`lint_paths` with scoping off so the
IO2xx rules (scoped to ``repro/sweep`` and ``repro/trace`` in the real
tree) still see the fixtures.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.analysis import get_rule, lint_paths
from repro.analysis.runner import LintConfig

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: rule id → number of findings its positive fixture package stages.
EXPECTED_POSITIVES = {
    "RNG101": 3,
    "RNG102": 2,
    "RNG103": 1,
    "IO201": 2,
    "IO202": 1,
    "IO203": 1,
    "EVT301": 2,
}


def _lint(rule_id: str, package: str):
    config = LintConfig(select=[rule_id], scoped=False)
    return lint_paths([FIXTURES / package], config).findings


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_POSITIVES))
def test_positive_package_fires(rule_id):
    findings = _lint(rule_id, f"{rule_id.lower()}_bad")
    assert len(findings) == EXPECTED_POSITIVES[rule_id], [
        f.render() for f in findings
    ]
    assert all(f.rule == rule_id for f in findings)


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_POSITIVES))
def test_negative_package_is_clean(rule_id):
    findings = _lint(rule_id, f"{rule_id.lower()}_ok")
    assert findings == [], [f.render() for f in findings]


# ---------------------------------------------------------------- RNG


def test_rng101_names_each_constructor():
    messages = " ".join(f.message for f in _lint("RNG101", "rng101_bad"))
    assert "random.Random" in messages
    assert "default_rng" in messages
    assert "RandomState" in messages


def test_rng102_fires_in_the_rng_taking_function():
    findings = _lint("RNG102", "rng102_bad")
    assert all(f.path.endswith("api.py") for f in findings), [
        f.render() for f in findings
    ]
    by_func = " ".join(f.message for f in findings)
    # One direct draw, one reached through a cross-module callee.
    assert "pick" in by_func and "sample" in by_func
    assert "jitter" in by_func  # the transitive finding names the callee


def test_rng103_points_at_the_dispatch_site():
    (finding,) = _lint("RNG103", "rng103_bad")
    assert finding.path.endswith("pool.py")
    assert "run_cell" in finding.message
    assert "GEN" in finding.message


# ----------------------------------------------------------------- IO


def test_io201_names_the_clobbered_path():
    findings = _lint("IO201", "io201_bad")
    assert all("os.replace" in f.message for f in findings)


def test_io202_mentions_exclusive_create():
    (finding,) = _lint("IO202", "io202_bad")
    assert "O_EXCL" in finding.message
    assert finding.path.endswith("leases.py")


def test_io203_fires_once_per_read_modify_write():
    (finding,) = _lint("IO203", "io203_bad")
    assert finding.path.endswith("merge.py")
    assert "read" in finding.message.lower()


def test_io_rules_are_scoped_to_sweep_and_trace():
    for rule_id in ("IO201", "IO202", "IO203"):
        rule = get_rule(rule_id)
        assert rule.in_scope("src/repro/sweep/store.py")
        assert rule.in_scope("src/repro/trace/recorder.py")
        assert not rule.in_scope("src/repro/simulator/engine.py")
        assert not rule.in_scope("tests/sweep/test_store.py")


# ---------------------------------------------------------------- EVT


def test_evt301_reports_missing_and_unknown_kinds():
    findings = _lint("EVT301", "evt301_bad")
    messages = " ".join(f.message for f in findings)
    assert "evict" in messages  # the hole in GROUPS
    assert "purge" in messages  # the ghost key in STALE


def test_evt301_goes_live_when_a_real_handler_is_deleted(tmp_path):
    """Deleting one replay handler from a sandbox copy of the real
    trace package must produce exactly one EVT301 finding."""
    sandbox = tmp_path / "trace"
    sandbox.mkdir()
    trace_src = REPO_SRC / "repro" / "trace"
    for name in ("__init__.py", "events.py", "replay.py"):
        shutil.copy(trace_src / name, sandbox / name)
    replay = sandbox / "replay.py"
    text = replay.read_text()
    doomed = '    "prefetch_cancel": "prefetch",\n'
    assert doomed in text, "sandbox setup: expected handler entry missing"
    replay.write_text(text.replace(doomed, ""))

    config = LintConfig(select=["EVT301"], scoped=False)
    baseline_clean = lint_paths([sandbox], config)
    # Restore check: the unmodified package already lints clean
    # (asserted repo-wide by test_self_lint), so the single finding
    # below is attributable to the deletion alone.
    (finding,) = baseline_clean.findings
    assert finding.rule == "EVT301"
    assert "prefetch_cancel" in finding.message
    assert finding.path.endswith("replay.py")
